//! # serverless-bft
//!
//! Facade crate for the ServerlessBFT reproduction ("Reliable Transactions
//! in Serverless-Edge Architecture", ICDE 2023): re-exports the workspace
//! crates under one roof so examples, integration tests and downstream
//! users can depend on a single package.
//!
//! * [`types`] — shared identifiers, transactions, configuration.
//! * [`crypto`] — SHA-256, HMAC, simulated signatures, certificates.
//! * [`storage`] — the on-premise versioned key-value store and YCSB table.
//! * [`durability`] — the write-ahead log, featherweight snapshots and the
//!   `recover()` path for crash-restarted replicas (see `RECOVERY.md`).
//! * [`consensus`] — PBFT, the CFT baseline and the NoShim baseline.
//! * [`serverless`] — the simulated serverless cloud, executors and billing.
//! * [`core`] — the ServerlessBFT protocol roles (client, shim, verifier),
//!   conflict handling, attacks and the system builder.
//! * [`sharding`] — the sharded execution subsystem (shard router,
//!   per-shard state, sharded committer and worker-pool scheduler).
//! * [`sim`] — the discrete-event evaluation harness.
//! * [`runtime`] — the thread-based local emulation.
//! * [`workloads`] — YCSB workload generation.
//! * [`telemetry`] — batch lifecycle tracing, the metrics registry and
//!   latency histograms (see `OBSERVABILITY.md`).
//!
//! ## Quick start
//!
//! ```
//! use serverless_bft::core::SystemBuilder;
//! use serverless_bft::sim::{SimHarness, SimParams};
//! use serverless_bft::types::{SimDuration, SystemConfig};
//!
//! // A small 4-node shim with 3 executors per batch.
//! let mut config = SystemConfig::with_shim_size(4);
//! config.workload.num_records = 1_000;
//! config.workload.batch_size = 10;
//!
//! let system = SystemBuilder::new(config).clients(20).build();
//! let params = SimParams {
//!     duration: SimDuration::from_millis(200),
//!     warmup: SimDuration::from_millis(50),
//!     num_clients: 20,
//!     ..SimParams::default()
//! };
//! let metrics = SimHarness::new(system, params).run();
//! assert!(metrics.committed_txns > 0);
//! ```
//!
//! ## Sharded execution
//!
//! The verifier's commit path — the concurrency-control check (`ccheck`)
//! and write application for every validated batch — is partitioned over
//! `N` execution shards by [`sharding::ShardRouter`], removing the single
//! verifier/storage funnel that capped the paper's deployment. Shard
//! count is configured per deployment and defaults to 1 (the paper's
//! original single-funnel behaviour):
//!
//! ```
//! use serverless_bft::core::SystemBuilder;
//! use serverless_bft::sim::{SimHarness, SimParams};
//! use serverless_bft::types::{ShardingConfig, SystemConfig};
//!
//! let mut config = SystemConfig::with_shim_size(4);
//! config.workload.num_records = 1_000;
//! // Partition the commit path over 4 shards.
//! config.sharding = ShardingConfig::with_shards(4);
//!
//! let system = SystemBuilder::new(config).clients(10).build();
//! let metrics = SimHarness::new(system, SimParams::default()).run();
//! assert!(metrics.committed_txns > 0);
//! ```
//!
//! Transactions whose read-write sets stay within one shard validate and
//! apply fully in parallel with other shards; cross-shard transactions
//! take a two-phase, lock-ordered path (or are rejected, per
//! [`types::CrossShardPolicy`]) so OCC semantics match the unsharded
//! verifier exactly. `cargo run --release -p sbft-bench --bin
//! fig6_shards` sweeps shard counts and shows committed-transaction
//! throughput scaling with shards on a conflict-free uniform YCSB
//! workload.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use sbft_consensus as consensus;
pub use sbft_core as core;
pub use sbft_crypto as crypto;
pub use sbft_durability as durability;
pub use sbft_runtime as runtime;
pub use sbft_serverless as serverless;
pub use sbft_sharding as sharding;
pub use sbft_sim as sim;
pub use sbft_storage as storage;
pub use sbft_telemetry as telemetry;
pub use sbft_types as types;
pub use sbft_workloads as workloads;
