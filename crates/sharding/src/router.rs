//! Deterministic partitioning of the key space into shards.
//!
//! The router is a pure function of `(key, num_shards)`: it uses the same
//! Fibonacci multiplicative hash as the store's internal lock striping, so
//! dense YCSB keys spread evenly, and the mapping is identical across
//! runs, threads and processes — a requirement for the verifier, the
//! simulator and the thread runtime to agree on where a transaction
//! executes.
//!
//! # Ordering-time vs. apply-time routing
//!
//! The same `key → shard` map is consulted at two very different points
//! of a batch's life:
//!
//! * **Ordering time** (the shard-aware planner): the primary classifies
//!   each transaction's *declared* read-write set with [`ShardRouter::plan_keys`]
//!   and steers single-home transactions into per-shard batching lanes,
//!   so whole batches arrive at the verifier already conflict-free per
//!   shard, tagged with the resulting [`ShardPlan`].
//! * **Apply time** (trust-but-verify): the verifier *re-derives* the
//!   plan from the read-write sets the executors actually observed
//!   before honouring the tag ([`ShardRouter::all_on`] /
//!   [`ShardRouter::plan_of`]). A mismatch — only a byzantine primary or
//!   a mis-declared read-write set can cause one — deterministically
//!   falls back to the unplanned routing path, so a lying tag can cost
//!   the fast path but never corrupt state.

use sbft_types::{Key, ReadWriteSet, ShardPlan};
use std::collections::BTreeSet;

pub use sbft_types::ShardId;

/// Deterministically maps keys to shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardRouter {
    num_shards: u32,
}

impl ShardRouter {
    /// Creates a router over `num_shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(num_shards: usize) -> Self {
        ShardRouter {
            num_shards: num_shards.max(1) as u32,
        }
    }

    /// Number of shards this router partitions into.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// The shard owning `key`. Pure and stable: the same key always maps
    /// to the same shard for a given shard count. Delegates to the one
    /// canonical [`ShardId::of_key`] the geo-partitioned storage view
    /// also uses, so routing and placement can never disagree.
    #[must_use]
    pub fn shard_of(&self, key: Key) -> ShardId {
        ShardId::of_key(key, self.num_shards as usize)
    }

    /// The set of shards a transaction's observed read-write set touches.
    #[must_use]
    pub fn shards_of(&self, rwset: &ReadWriteSet) -> BTreeSet<ShardId> {
        self.shards_of_keys(
            rwset
                .reads
                .iter()
                .map(|(k, _)| *k)
                .chain(rwset.writes.iter().map(|(k, _)| *k)),
        )
    }

    /// The set of shards touched by an arbitrary key collection.
    #[must_use]
    pub fn shards_of_keys<I: IntoIterator<Item = Key>>(&self, keys: I) -> BTreeSet<ShardId> {
        keys.into_iter().map(|k| self.shard_of(k)).collect()
    }

    /// Whether a read-write set stays within a single shard.
    #[must_use]
    pub fn is_single_shard(&self, rwset: &ReadWriteSet) -> bool {
        self.shards_of(rwset).len() <= 1
    }

    /// Classifies an arbitrary key collection at ordering time: no keys
    /// is [`ShardPlan::Unplanned`], all keys on one shard is
    /// [`ShardPlan::SingleHome`], anything else is
    /// [`ShardPlan::CrossHome`]. No allocation — a fold over the hash.
    #[must_use]
    pub fn plan_keys<I: IntoIterator<Item = Key>>(&self, keys: I) -> ShardPlan {
        keys.into_iter().fold(ShardPlan::Unplanned, |plan, key| {
            plan.merge_shard(self.shard_of(key))
        })
    }

    /// Re-derives the plan of an *observed* read-write set at apply time
    /// (the trust-but-verify side of [`Self::plan_keys`]).
    #[must_use]
    pub fn plan_of(&self, rwset: &ReadWriteSet) -> ShardPlan {
        self.plan_keys(
            rwset
                .reads
                .iter()
                .map(|(k, _)| *k)
                .chain(rwset.writes.iter().map(|(k, _)| *k)),
        )
    }

    /// Whether every key of the collection maps to `home` — the cheap
    /// single-pass check the verifier runs before honouring a
    /// `SingleHome` tag (no sets, no allocation, early exit on the
    /// first foreign key).
    #[must_use]
    pub fn all_on<I: IntoIterator<Item = Key>>(&self, home: ShardId, keys: I) -> bool {
        keys.into_iter().all(|k| self.shard_of(k) == home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Value, Version};

    #[test]
    fn same_key_same_shard_across_router_instances() {
        let a = ShardRouter::new(8);
        let b = ShardRouter::new(8);
        for k in 0..10_000u64 {
            assert_eq!(a.shard_of(Key(k)), b.shard_of(Key(k)));
        }
    }

    #[test]
    fn shards_are_in_range_and_all_used() {
        let router = ShardRouter::new(8);
        let mut seen = BTreeSet::new();
        for k in 0..10_000u64 {
            let s = router.shard_of(Key(k));
            assert!(s.0 < 8);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 8, "dense keys must spread over every shard");
    }

    #[test]
    fn single_shard_router_maps_everything_to_shard_zero() {
        let router = ShardRouter::new(1);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(router.shard_of(Key(k)), ShardId(0));
        }
        assert_eq!(ShardRouter::new(0).num_shards(), 1);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for k in 0..100_000u64 {
            counts[router.shard_of(Key(k)).0 as usize] += 1;
        }
        for c in counts {
            assert!((20_000..30_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn plan_keys_classifies_empty_single_and_cross() {
        let router = ShardRouter::new(8);
        assert_eq!(router.plan_keys([]), sbft_types::ShardPlan::Unplanned);
        let k = Key(7);
        let home = router.shard_of(k);
        assert_eq!(
            router.plan_keys([k, k]),
            sbft_types::ShardPlan::SingleHome(home)
        );
        let foreign = (8..)
            .map(Key)
            .find(|x| router.shard_of(*x) != home)
            .unwrap();
        assert_eq!(
            router.plan_keys([k, foreign]),
            sbft_types::ShardPlan::CrossHome
        );
    }

    #[test]
    fn plan_of_matches_plan_keys_and_all_on_agrees() {
        let router = ShardRouter::new(16);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(3), Version(1));
        rw.record_write(Key(3), Value::new(1));
        let home = router.shard_of(Key(3));
        assert_eq!(router.plan_of(&rw), sbft_types::ShardPlan::SingleHome(home));
        assert!(router.all_on(home, [Key(3)]));
        let foreign = (4..)
            .map(Key)
            .find(|x| router.shard_of(*x) != home)
            .unwrap();
        assert!(!router.all_on(home, [Key(3), foreign]));
        rw.record_write(foreign, Value::new(2));
        assert_eq!(router.plan_of(&rw), sbft_types::ShardPlan::CrossHome);
    }

    #[test]
    fn rwset_shard_set_unions_reads_and_writes() {
        let router = ShardRouter::new(1024);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_write(Key(2), Value::new(9));
        let shards = router.shards_of(&rw);
        assert!(shards.contains(&router.shard_of(Key(1))));
        assert!(shards.contains(&router.shard_of(Key(2))));
        // With 1024 shards two random small keys land apart.
        assert!(!router.is_single_shard(&rw));
        let mut single = ReadWriteSet::new();
        single.record_write(Key(7), Value::new(1));
        assert!(router.is_single_shard(&single));
    }
}
