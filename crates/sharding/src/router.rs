//! Deterministic partitioning of the key space into shards.
//!
//! The router is a pure function of `(key, num_shards)`: it uses the same
//! Fibonacci multiplicative hash as the store's internal lock striping, so
//! dense YCSB keys spread evenly, and the mapping is identical across
//! runs, threads and processes — a requirement for the verifier, the
//! simulator and the thread runtime to agree on where a transaction
//! executes.

use sbft_types::{Key, ReadWriteSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of one execution shard.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Deterministically maps keys to shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardRouter {
    num_shards: u32,
}

impl ShardRouter {
    /// Creates a router over `num_shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(num_shards: usize) -> Self {
        ShardRouter {
            num_shards: num_shards.max(1) as u32,
        }
    }

    /// Number of shards this router partitions into.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards as usize
    }

    /// The shard owning `key`. Pure and stable: the same key always maps
    /// to the same shard for a given shard count.
    #[must_use]
    pub fn shard_of(&self, key: Key) -> ShardId {
        // Fibonacci hashing: multiply by 2^64/φ and take the top bits,
        // scaled into [0, num_shards) without modulo bias.
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ShardId(((u128::from(h) * u128::from(self.num_shards)) >> 64) as u32)
    }

    /// The set of shards a transaction's observed read-write set touches.
    #[must_use]
    pub fn shards_of(&self, rwset: &ReadWriteSet) -> BTreeSet<ShardId> {
        self.shards_of_keys(
            rwset
                .reads
                .iter()
                .map(|(k, _)| *k)
                .chain(rwset.writes.iter().map(|(k, _)| *k)),
        )
    }

    /// The set of shards touched by an arbitrary key collection.
    #[must_use]
    pub fn shards_of_keys<I: IntoIterator<Item = Key>>(&self, keys: I) -> BTreeSet<ShardId> {
        keys.into_iter().map(|k| self.shard_of(k)).collect()
    }

    /// Whether a read-write set stays within a single shard.
    #[must_use]
    pub fn is_single_shard(&self, rwset: &ReadWriteSet) -> bool {
        self.shards_of(rwset).len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Value, Version};

    #[test]
    fn same_key_same_shard_across_router_instances() {
        let a = ShardRouter::new(8);
        let b = ShardRouter::new(8);
        for k in 0..10_000u64 {
            assert_eq!(a.shard_of(Key(k)), b.shard_of(Key(k)));
        }
    }

    #[test]
    fn shards_are_in_range_and_all_used() {
        let router = ShardRouter::new(8);
        let mut seen = BTreeSet::new();
        for k in 0..10_000u64 {
            let s = router.shard_of(Key(k));
            assert!(s.0 < 8);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 8, "dense keys must spread over every shard");
    }

    #[test]
    fn single_shard_router_maps_everything_to_shard_zero() {
        let router = ShardRouter::new(1);
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(router.shard_of(Key(k)), ShardId(0));
        }
        assert_eq!(ShardRouter::new(0).num_shards(), 1);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for k in 0..100_000u64 {
            counts[router.shard_of(Key(k)).0 as usize] += 1;
        }
        for c in counts {
            assert!((20_000..30_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn rwset_shard_set_unions_reads_and_writes() {
        let router = ShardRouter::new(1024);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_write(Key(2), Value::new(9));
        let shards = router.shards_of(&rw);
        assert!(shards.contains(&router.shard_of(Key(1))));
        assert!(shards.contains(&router.shard_of(Key(2))));
        // With 1024 shards two random small keys land apart.
        assert!(!router.is_single_shard(&rw));
        let mut single = ReadWriteSet::new();
        single.record_write(Key(7), Value::new(1));
        assert!(router.is_single_shard(&single));
    }
}
