//! # sbft-sharding
//!
//! The sharded execution subsystem: removes the single verifier/storage
//! funnel that capped the paper's deployment at ~21 parallel executors by
//! partitioning the concurrency-control and apply path of committed
//! batches across `N` independent shards (in the style of execution
//! sharding: per-shard isolated state, pending queue and scheduler).
//!
//! * [`router`] — [`ShardRouter`]: deterministic partitioning of the YCSB
//!   key space into shards. The same key maps to the same shard on every
//!   run and every process, so the verifier, the simulator and the thread
//!   runtime always agree on placement.
//! * [`state`] — [`ShardState`]: one shard's isolated slice of the world —
//!   its [`view`](state::ShardStoreView) of the versioned store, its
//!   pending-batch queue, its OCC counters and the atomic
//!   `Idle → Pending → Running` lifecycle that prevents double-scheduling.
//! * [`committer`] — [`ShardedCommitter`]: the synchronous engine the
//!   trusted verifier drives. Single-shard transactions check-and-apply
//!   under their shard's execution lock only; cross-shard transactions
//!   take a two-phase, lock-ordered path (acquire every involved shard's
//!   execution lock in ascending shard order, validate all reads, apply
//!   all writes, release) so OCC semantics are exactly those of the
//!   unsharded `ccheck` of Figure 3.
//! * [`scheduler`] — [`ShardScheduler`]: a worker pool sized to the
//!   configured cores that drains shard queues in parallel, used by the
//!   thread runtime and the raw-scaling benchmarks.
//!
//! The physical [`sbft_storage::VersionedStore`] stays shared (it is
//! internally lock-striped); what the shards isolate is the *work* — the
//! OCC validation and write application — which is the serial bottleneck
//! this subsystem parallelises. Equivalence of sharded and unsharded
//! execution is property-tested in `tests/properties.rs` of the facade
//! crate and in [`committer`]'s own tests.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod committer;
pub mod router;
pub mod scheduler;
pub mod state;

pub use committer::{CommitOutcome, ShardedCommitter};
pub use router::{ShardId, ShardRouter};
pub use scheduler::{ApplyTicket, ShardScheduler};
pub use state::{ShardPhase, ShardState, ShardStoreView, ShardTask, TaskWork};
