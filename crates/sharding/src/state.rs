//! Per-shard isolated state and the atomic scheduling lifecycle.
//!
//! A shard owns a contiguous-by-hash slice of the key space. It carries:
//!
//! * a [`ShardStoreView`] — its window onto the versioned store, policing
//!   that only keys the router assigns to this shard are touched through
//!   it,
//! * a **pending-batch queue** of [`ShardTask`]s waiting for a worker,
//! * the OCC counters (committed / aborted / cross-shard),
//! * the atomic lifecycle `Idle → Pending → Running → Idle`. Transitions
//!   are compare-and-swap, so only one `Idle → Pending` can succeed at a
//!   time: a shard is never enqueued twice and never run by two workers
//!   concurrently, which is what makes a shard a serialisation domain.

use crate::router::{ShardId, ShardRouter};
use parking_lot::{Mutex, MutexGuard};
use sbft_storage::VersionedStore;
use sbft_types::{Key, ReadWriteSet, Value, Version};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Where a shard is in its scheduling lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardPhase {
    /// No pending work and not enqueued; the only schedulable state.
    Idle,
    /// Enqueued in the scheduler's work queue, not yet picked up.
    Pending,
    /// A worker is actively executing this shard's queue.
    Running,
}

const IDLE: u8 = 0;
const PENDING: u8 = 1;
const RUNNING: u8 = 2;

/// A unit of queued work: the read-write sets of one committed batch (or
/// batch slice) destined for this shard.
#[derive(Clone, Debug, Default)]
pub struct ShardTask {
    /// Sequence number of the originating batch (for tracing).
    pub seq: u64,
    /// The work itself: owned read-write sets (fire-and-forget) or a
    /// shared slice of a tracked batch.
    pub work: TaskWork,
}

/// How a [`ShardTask`] carries its transactions.
#[derive(Clone, Debug)]
pub enum TaskWork {
    /// Read-write sets owned by the task; outcomes are discarded
    /// (the [`crate::scheduler::ShardScheduler::submit`] path).
    Owned(Vec<ReadWriteSet>),
    /// Indices into a batch allocation shared with the submitter's
    /// [`crate::scheduler::ApplyTicket`]: the worker applies
    /// `txns[indices].rwset` and records each outcome on the ticket.
    /// Sharing the submitter's `Arc` keeps the hand-off zero-copy — the
    /// verifier passes the `VERIFY` message's own result allocation
    /// straight through, and no per-transaction read-write sets are
    /// cloned into the queue.
    Tracked {
        /// The whole batch's results, shared with the submitter
        /// (refcount bump of the `VerifyMessage` allocation).
        txns: std::sync::Arc<[sbft_types::TxnResult]>,
        /// Which transactions of the batch live on this shard.
        indices: Vec<u32>,
        /// Where the per-transaction outcomes are recorded.
        ticket: std::sync::Arc<crate::scheduler::TicketState>,
    },
}

impl Default for TaskWork {
    fn default() -> Self {
        TaskWork::Owned(Vec::new())
    }
}

/// A shard's window onto the shared versioned store.
///
/// The physical store is shared (and internally lock-striped); the view
/// enforces — with debug assertions — that a shard only ever reads or
/// writes keys the router assigns to it, which is the isolation invariant
/// the cross-shard lock ordering relies on.
#[derive(Clone)]
pub struct ShardStoreView {
    store: Arc<VersionedStore>,
    router: ShardRouter,
    shard: ShardId,
}

impl ShardStoreView {
    /// Creates a view of `store` restricted to `shard`.
    #[must_use]
    pub fn new(store: Arc<VersionedStore>, router: ShardRouter, shard: ShardId) -> Self {
        ShardStoreView {
            store,
            router,
            shard,
        }
    }

    /// Whether this shard owns `key`.
    #[must_use]
    pub fn owns(&self, key: Key) -> bool {
        self.router.shard_of(key) == self.shard
    }

    /// Current version of an owned key.
    #[must_use]
    pub fn version_of(&self, key: Key) -> Version {
        debug_assert!(self.owns(key), "{key} is not owned by {}", self.shard);
        self.store.version_of(key)
    }

    /// Writes an owned key, bumping its version.
    pub fn put(&self, key: Key, value: Value) -> Version {
        debug_assert!(self.owns(key), "{key} is not owned by {}", self.shard);
        self.store.put(key, value)
    }

    /// The underlying shared store (for cross-shard coordination paths).
    #[must_use]
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }
}

/// One execution shard: store view, pending queue, lifecycle and counters.
pub struct ShardState {
    id: ShardId,
    view: ShardStoreView,
    phase: AtomicU8,
    queue: Mutex<VecDeque<ShardTask>>,
    exec_lock: Mutex<()>,
    committed: AtomicU64,
    aborted: AtomicU64,
    cross_shard: AtomicU64,
}

impl ShardState {
    /// Creates the state for shard `id` over the shared store.
    #[must_use]
    pub fn new(id: ShardId, store: Arc<VersionedStore>, router: ShardRouter) -> Self {
        ShardState {
            id,
            view: ShardStoreView::new(store, router, id),
            phase: AtomicU8::new(IDLE),
            queue: Mutex::new(VecDeque::new()),
            exec_lock: Mutex::new(()),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            cross_shard: AtomicU64::new(0),
        }
    }

    /// This shard's identifier.
    #[must_use]
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// This shard's store view.
    #[must_use]
    pub fn view(&self) -> &ShardStoreView {
        &self.view
    }

    /// Current lifecycle phase (racy by nature; for tests and metrics).
    #[must_use]
    pub fn phase(&self) -> ShardPhase {
        match self.phase.load(Ordering::Acquire) {
            IDLE => ShardPhase::Idle,
            PENDING => ShardPhase::Pending,
            _ => ShardPhase::Running,
        }
    }

    /// Appends a task to the pending queue. Returns `true` if the caller
    /// won the `Idle → Pending` transition and must hand the shard to the
    /// scheduler's work queue (exactly one concurrent caller wins).
    pub fn enqueue(&self, task: ShardTask) -> bool {
        self.queue.lock().push_back(task);
        self.try_mark_pending()
    }

    /// Attempts the atomic `Idle → Pending` transition.
    pub fn try_mark_pending(&self) -> bool {
        self.phase
            .compare_exchange(IDLE, PENDING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the shard `Running` when a worker picks it up.
    ///
    /// # Panics
    /// Panics if the shard was not `Pending` — that would mean the work
    /// queue handed the same shard to two workers.
    pub fn begin_run(&self) {
        let prev = self.phase.swap(RUNNING, Ordering::AcqRel);
        assert_eq!(prev, PENDING, "shard {} double-scheduled", self.id);
    }

    /// Marks the shard `Idle` after a worker drained it. Returns `true` if
    /// new work raced in behind the drain and the shard must be scheduled
    /// again (the caller re-enqueues it).
    pub fn finish_run(&self) -> bool {
        self.phase.store(IDLE, Ordering::Release);
        // A submitter that enqueued between our last `pop_task` and the
        // store above lost the Idle→Pending race to nobody: re-check.
        if self.queue.lock().is_empty() {
            false
        } else {
            self.try_mark_pending()
        }
    }

    /// Pops the oldest pending task.
    #[must_use]
    pub fn pop_task(&self) -> Option<ShardTask> {
        self.queue.lock().pop_front()
    }

    /// Number of tasks waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.lock().len()
    }

    /// The shard's execution lock. Single-shard work locks only its own
    /// shard; cross-shard work locks every involved shard in ascending
    /// [`ShardId`] order — the global order that makes the two-phase path
    /// deadlock-free.
    pub fn exec_lock(&self) -> MutexGuard<'_, ()> {
        self.exec_lock.lock()
    }

    /// Records a committed transaction.
    pub fn record_commit(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an aborted transaction.
    pub fn record_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records participation in a cross-shard transaction.
    pub fn record_cross_shard(&self) {
        self.cross_shard.fetch_add(1, Ordering::Relaxed);
    }

    /// Transactions committed on this shard.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Transactions aborted on this shard.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Cross-shard transactions this shard participated in.
    #[must_use]
    pub fn cross_shard(&self) -> u64 {
        self.cross_shard.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> ShardState {
        ShardState::new(
            ShardId(0),
            Arc::new(VersionedStore::new()),
            ShardRouter::new(1),
        )
    }

    #[test]
    fn lifecycle_idle_pending_running_idle() {
        let s = shard();
        assert_eq!(s.phase(), ShardPhase::Idle);
        assert!(s.try_mark_pending());
        assert_eq!(s.phase(), ShardPhase::Pending);
        assert!(!s.try_mark_pending(), "only one Idle→Pending can win");
        s.begin_run();
        assert_eq!(s.phase(), ShardPhase::Running);
        assert!(!s.finish_run(), "no queued work, stays idle");
        assert_eq!(s.phase(), ShardPhase::Idle);
    }

    #[test]
    fn enqueue_wins_scheduling_exactly_once() {
        let s = shard();
        assert!(s.enqueue(ShardTask::default()), "first enqueue schedules");
        assert!(!s.enqueue(ShardTask::default()), "second one piggy-backs");
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn finish_run_reschedules_raced_work() {
        let s = shard();
        assert!(s.enqueue(ShardTask::default()));
        s.begin_run();
        let _ = s.pop_task();
        // Work arrives while the worker is still marked Running: the
        // submitter cannot win Idle→Pending …
        assert!(!s.enqueue(ShardTask::default()));
        // … so the worker must pick it up when it finishes.
        assert!(s.finish_run(), "raced-in work must reschedule the shard");
        assert_eq!(s.phase(), ShardPhase::Pending);
    }

    #[test]
    #[should_panic(expected = "double-scheduled")]
    fn begin_run_from_idle_panics() {
        shard().begin_run();
    }

    #[test]
    fn concurrent_enqueues_schedule_exactly_once() {
        let s = Arc::new(shard());
        let wins: Vec<bool> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || s.enqueue(ShardTask::default()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(wins.iter().filter(|w| **w).count(), 1);
        assert_eq!(s.queue_len(), 8);
    }

    #[test]
    fn view_polices_ownership() {
        let store = Arc::new(VersionedStore::new());
        let router = ShardRouter::new(4);
        let s = ShardState::new(ShardId(2), Arc::clone(&store), router);
        // Find a key owned by shard 2 and one that is not.
        let owned = (0..)
            .map(Key)
            .find(|k| router.shard_of(*k) == ShardId(2))
            .unwrap();
        assert!(s.view().owns(owned));
        let v = s.view().put(owned, Value::new(1));
        assert_eq!(v, Version(1));
        assert_eq!(s.view().version_of(owned), Version(1));
        let foreign = (0..)
            .map(Key)
            .find(|k| router.shard_of(*k) != ShardId(2))
            .unwrap();
        assert!(!s.view().owns(foreign));
    }
}
