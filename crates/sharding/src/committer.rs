//! The sharded commit engine the trusted verifier drives.
//!
//! [`ShardedCommitter::commit`] is the sharded replacement for the global
//! `ccheck` path (Figure 3, lines 30–35). Placement is decided by the
//! [`ShardRouter`]; execution takes one of two paths:
//!
//! * **Single-shard** (the common case on uniform YCSB): the transaction
//!   validates and applies under its own shard's execution lock only, so
//!   disjoint shards proceed fully in parallel.
//! * **Cross-shard**: a two-phase, lock-ordered path — acquire the
//!   execution lock of every involved shard in ascending [`ShardId`]
//!   order (phase one), validate *all* reads and apply *all* writes while
//!   holding them (phase two), then release. The global acquisition order
//!   makes the path deadlock-free, and holding every involved lock across
//!   validate-and-apply makes the check atomic with respect to the
//!   single-shard fast path — so the observable OCC outcomes are exactly
//!   those of an unsharded verifier applying the same sequence.
//!
//! The [`sbft_types::CrossShardPolicy`] chooses between that locked path
//! and a strict isolation mode that rejects cross-shard transactions
//! outright (useful to measure how much coordination costs).
//!
//! With the ordering-time shard planner, batches usually arrive tagged
//! [`sbft_types::ShardPlan::SingleHome`]: after the verifier re-derives
//! the tag (trust-but-verify, see [`crate::router`]), every transaction
//! of such a batch takes the single-shard fast path below with a
//! pre-computed involved-set of one — no per-transaction routing and no
//! cross-shard locks on the hot path. Cross-home batches were tagged
//! for the lock-ordered path at batching time instead of being
//! discovered here.

use crate::router::{ShardId, ShardRouter};
use crate::state::ShardState;
use sbft_storage::{ConcurrencyChecker, OccOutcome, VersionedStore};
use sbft_types::{CrossShardPolicy, Key, ReadWriteSet, ShardingConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The outcome of a sharded commit attempt.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CommitOutcome {
    /// All reads were current; the writes were applied.
    Applied,
    /// At least one read was stale; nothing was written.
    StaleReads(Vec<Key>),
    /// The transaction spans shards and the policy forbids coordination.
    CrossShardRejected,
}

impl CommitOutcome {
    /// Whether the transaction's writes were applied.
    #[must_use]
    pub fn is_applied(&self) -> bool {
        matches!(self, CommitOutcome::Applied)
    }
}

/// Routes committed transactions to shards and runs the sharded `ccheck`.
pub struct ShardedCommitter {
    router: ShardRouter,
    shards: Vec<Arc<ShardState>>,
    policy: CrossShardPolicy,
    cross_shard_commits: AtomicU64,
    cross_shard_rejections: AtomicU64,
}

impl ShardedCommitter {
    /// Creates a committer over the shared store, with one
    /// [`ShardState`] per configured shard.
    #[must_use]
    pub fn new(store: Arc<VersionedStore>, config: &ShardingConfig) -> Self {
        let router = ShardRouter::new(config.num_shards);
        let shards = (0..router.num_shards() as u32)
            .map(|i| Arc::new(ShardState::new(ShardId(i), Arc::clone(&store), router)))
            .collect();
        ShardedCommitter {
            router,
            shards,
            policy: config.cross_shard_policy,
            cross_shard_commits: AtomicU64::new(0),
            cross_shard_rejections: AtomicU64::new(0),
        }
    }

    /// The router deciding key placement.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The per-shard states (for schedulers, metrics and tests).
    #[must_use]
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// The shards a transaction touches.
    #[must_use]
    pub fn shards_of(&self, rwset: &ReadWriteSet) -> BTreeSet<ShardId> {
        self.router.shards_of(rwset)
    }

    /// Cross-shard transactions committed through the locked path.
    #[must_use]
    pub fn cross_shard_commits(&self) -> u64 {
        self.cross_shard_commits.load(Ordering::Relaxed)
    }

    /// Cross-shard transactions rejected by the isolation policy.
    #[must_use]
    pub fn cross_shard_rejections(&self) -> u64 {
        self.cross_shard_rejections.load(Ordering::Relaxed)
    }

    /// Transactions committed across all shards.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.shards.iter().map(|s| s.committed()).sum()
    }

    /// Transactions aborted across all shards.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.shards.iter().map(|s| s.aborted()).sum()
    }

    /// Runs the sharded check-then-apply for one transaction.
    ///
    /// When `validate_reads` is false (non-conflicting workloads) the
    /// read-set comparison is skipped, exactly as in the unsharded
    /// [`ConcurrencyChecker::check_and_apply`].
    pub fn commit(&self, rwset: &ReadWriteSet, validate_reads: bool) -> CommitOutcome {
        self.commit_routed(rwset, validate_reads, &self.shards_of(rwset))
    }

    /// Like [`commit`](Self::commit), but with the routing decision
    /// already made — callers that computed `shards_of` for their own
    /// bookkeeping (the verifier does, for `ShardCcheck` accounting) pass
    /// it in instead of paying for the key hashing twice.
    pub fn commit_routed(
        &self,
        rwset: &ReadWriteSet,
        validate_reads: bool,
        involved: &BTreeSet<ShardId>,
    ) -> CommitOutcome {
        match involved.len() {
            0 => CommitOutcome::Applied, // touches no data; nothing to do
            1 => {
                let shard = &self.shards[involved.first().unwrap().0 as usize];
                let _guard = shard.exec_lock();
                Self::commit_single_shard(shard, rwset, validate_reads)
            }
            _ => self.commit_cross_shard(rwset, validate_reads, involved),
        }
    }

    /// The single-shard fast path: every key is owned by `shard`, so the
    /// whole validate-and-apply goes through the shard's store view (whose
    /// debug assertions police exactly that ownership invariant).
    fn commit_single_shard(
        shard: &Arc<ShardState>,
        rwset: &ReadWriteSet,
        validate_reads: bool,
    ) -> CommitOutcome {
        let view = shard.view();
        if validate_reads {
            let stale: Vec<Key> = rwset
                .reads
                .iter()
                .filter(|(key, version)| view.version_of(*key) != *version)
                .map(|(key, _)| *key)
                .collect();
            if !stale.is_empty() {
                view.store().stats().record_stale_read_rejection();
                shard.record_abort();
                return CommitOutcome::StaleReads(stale);
            }
        }
        for (key, value) in &rwset.writes {
            view.put(*key, *value);
        }
        shard.record_commit();
        CommitOutcome::Applied
    }

    /// The two-phase, lock-ordered cross-shard path. Keys span shards, so
    /// the work runs against the shared store through the unsharded
    /// [`ConcurrencyChecker`] — the shard views' per-shard ownership checks
    /// do not apply here; atomicity comes from holding every involved
    /// execution lock instead.
    fn commit_cross_shard(
        &self,
        rwset: &ReadWriteSet,
        validate_reads: bool,
        involved: &BTreeSet<ShardId>,
    ) -> CommitOutcome {
        let shards: Vec<&Arc<ShardState>> = involved
            .iter()
            .map(|id| &self.shards[id.0 as usize])
            .collect();
        for shard in &shards {
            shard.record_cross_shard();
        }
        if self.policy == CrossShardPolicy::Abort {
            self.cross_shard_rejections.fetch_add(1, Ordering::Relaxed);
            shards[0].record_abort();
            return CommitOutcome::CrossShardRejected;
        }
        // Phase one: acquire every involved execution lock in ascending
        // ShardId order (the BTreeSet iteration order).
        let guards: Vec<_> = shards.iter().map(|s| s.exec_lock()).collect();
        // Phase two: validate and apply while holding all of them, through
        // the same `ccheck` the unsharded verifier ran.
        let store = self.shards[0].view().store();
        let outcome = match ConcurrencyChecker::check_and_apply(store, rwset, validate_reads) {
            OccOutcome::Applied => {
                self.cross_shard_commits.fetch_add(1, Ordering::Relaxed);
                shards[0].record_commit();
                CommitOutcome::Applied
            }
            OccOutcome::StaleReads(stale) => {
                shards[0].record_abort();
                CommitOutcome::StaleReads(stale)
            }
        };
        drop(guards);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Value, Version};

    fn store_with(n: u64) -> Arc<VersionedStore> {
        let store = Arc::new(VersionedStore::new());
        store.load((0..n).map(|i| (Key(i), Value::new(i))));
        store
    }

    fn committer(num_shards: usize, store: &Arc<VersionedStore>) -> ShardedCommitter {
        ShardedCommitter::new(
            Arc::clone(store),
            &ShardingConfig {
                num_shards,
                workers: 1,
                cross_shard_policy: CrossShardPolicy::LockOrdered,
                ..ShardingConfig::default()
            },
        )
    }

    /// Two keys guaranteed to live on different shards of an 8-way router.
    fn split_keys(router: &ShardRouter) -> (Key, Key) {
        let a = Key(0);
        let b = (1..)
            .map(Key)
            .find(|k| router.shard_of(*k) != router.shard_of(a))
            .unwrap();
        (a, b)
    }

    #[test]
    fn single_shard_commit_applies_and_counts() {
        let store = store_with(100);
        let c = committer(8, &store);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_write(Key(1), Value::new(99));
        assert_eq!(c.commit(&rw, true), CommitOutcome::Applied);
        assert_eq!(store.get(Key(1)).unwrap().value, Value::new(99));
        assert_eq!(c.committed(), 1);
        let home = c.router().shard_of(Key(1));
        assert_eq!(c.shards()[home.0 as usize].committed(), 1);
    }

    #[test]
    fn stale_single_shard_read_aborts_without_writing() {
        let store = store_with(100);
        let c = committer(8, &store);
        store.put(Key(5), Value::new(50)); // bump to version 2
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(5), Version(1));
        rw.record_write(Key(5), Value::new(1000));
        assert_eq!(c.commit(&rw, true), CommitOutcome::StaleReads(vec![Key(5)]));
        assert_eq!(store.get(Key(5)).unwrap().value, Value::new(50));
        assert_eq!(c.aborted(), 1);
    }

    #[test]
    fn cross_shard_commit_goes_through_locked_path() {
        let store = store_with(100);
        let c = committer(8, &store);
        let (a, b) = split_keys(c.router());
        let mut rw = ReadWriteSet::new();
        rw.record_read(a, Version(1));
        rw.record_write(b, Value::new(7));
        assert!(c.commit(&rw, true).is_applied());
        assert_eq!(c.cross_shard_commits(), 1);
        assert_eq!(store.get(b).unwrap().value, Value::new(7));
        // Every involved shard saw the coordination.
        let sa = c.router().shard_of(a);
        let sb = c.router().shard_of(b);
        assert_eq!(c.shards()[sa.0 as usize].cross_shard(), 1);
        assert_eq!(c.shards()[sb.0 as usize].cross_shard(), 1);
    }

    #[test]
    fn cross_shard_occ_conflict_aborts_exactly_one_side() {
        let store = store_with(100);
        let c = committer(8, &store);
        let (a, b) = split_keys(c.router());
        // Two transactions read both keys at version 1 and write both.
        let mut t1 = ReadWriteSet::new();
        t1.record_read(a, Version(1));
        t1.record_read(b, Version(1));
        t1.record_write(a, Value::new(11));
        t1.record_write(b, Value::new(11));
        let t2 = {
            let mut rw = ReadWriteSet::new();
            rw.record_read(a, Version(1));
            rw.record_read(b, Version(1));
            rw.record_write(a, Value::new(22));
            rw.record_write(b, Value::new(22));
            rw
        };
        // Sequential OCC: the first wins, the second sees stale reads.
        assert!(c.commit(&t1, true).is_applied());
        let second = c.commit(&t2, true);
        assert!(matches!(second, CommitOutcome::StaleReads(_)));
        assert_eq!(c.committed(), 1, "exactly one side commits");
        assert_eq!(c.aborted(), 1, "exactly one side aborts");
        assert_eq!(store.get(a).unwrap().value, Value::new(11));
        assert_eq!(store.get(b).unwrap().value, Value::new(11));
    }

    #[test]
    fn abort_policy_rejects_cross_shard_transactions() {
        let store = store_with(100);
        let c = ShardedCommitter::new(
            Arc::clone(&store),
            &ShardingConfig {
                num_shards: 8,
                workers: 1,
                cross_shard_policy: CrossShardPolicy::Abort,
                ..ShardingConfig::default()
            },
        );
        let (a, b) = split_keys(c.router());
        let mut rw = ReadWriteSet::new();
        rw.record_write(a, Value::new(1));
        rw.record_write(b, Value::new(1));
        assert_eq!(c.commit(&rw, true), CommitOutcome::CrossShardRejected);
        assert_eq!(c.cross_shard_rejections(), 1);
        assert_eq!(
            store.get(a).unwrap().value,
            Value::new(0),
            "nothing written"
        );
        // A single-shard transaction is unaffected by the policy.
        let mut single = ReadWriteSet::new();
        single.record_write(a, Value::new(5));
        assert!(c.commit(&single, true).is_applied());
    }

    #[test]
    fn sharded_commit_matches_unsharded_ccheck_outcomes() {
        // The same transaction sequence through 1 shard and 8 shards must
        // produce identical outcomes and identical final stores.
        let seq: Vec<(u64, u64, u64)> = (0..200).map(|i| (i % 50, (i * 7) % 50, i)).collect();
        let run = |shards: usize| {
            let store = store_with(50);
            let c = committer(shards, &store);
            let outcomes: Vec<bool> = seq
                .iter()
                .map(|&(r, w, v)| {
                    let mut rw = ReadWriteSet::new();
                    rw.record_read(Key(r), store.version_of(Key(r)));
                    rw.record_write(Key(w), Value::new(v));
                    c.commit(&rw, true).is_applied()
                })
                .collect();
            let state: Vec<(u64, u64)> = (0..50)
                .map(|k| {
                    let e = store.get(Key(k)).unwrap();
                    (e.value.data, e.version.0)
                })
                .collect();
            (outcomes, state)
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn parallel_disjoint_commits_do_not_interfere() {
        let store = store_with(1_000);
        let c = Arc::new(committer(8, &store));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let key = Key(t * 100 + i);
                        let mut rw = ReadWriteSet::new();
                        rw.record_read(key, Version(1));
                        rw.record_write(key, Value::new(i));
                        assert!(c.commit(&rw, true).is_applied());
                    }
                });
            }
        });
        assert_eq!(c.committed(), 800);
        assert_eq!(c.aborted(), 0);
    }
}
