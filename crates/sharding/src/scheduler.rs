//! The shard worker pool.
//!
//! [`ShardScheduler`] drives a [`ShardedCommitter`] with a pool of OS
//! threads sized to the configured cores. Work arrives as batches of
//! read-write sets ([`ShardTask`]s): each transaction is queued on its
//! *home* shard (the lowest-numbered shard it touches) and the shard is
//! handed to the pool through the atomic `Idle → Pending` transition, so
//! a shard is in the work queue at most once and is drained by at most
//! one worker at a time. Cross-shard transactions are executed by their
//! home shard's worker through the committer's lock-ordered path.
//!
//! The scheduler is the real-parallelism counterpart of the simulator's
//! per-shard service stations: the `fig6_shards` benchmark uses it to
//! show raw thread scaling, and the thread runtime drives it as the
//! verifier's apply stage through [`ShardScheduler::submit_tracked`] /
//! [`ApplyTicket`] — committed batches apply across the worker pool and
//! the verifier collects the per-transaction OCC outcomes it needs to
//! answer clients.

use crate::committer::{CommitOutcome, ShardedCommitter};
use crate::router::ShardId;
use crate::state::{ShardTask, TaskWork};
use sbft_telemetry::{Counter, Registry};
use sbft_types::{ReadWriteSet, TxnResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Shared completion state behind an [`ApplyTicket`]: per-transaction
/// outcome slots plus a countdown the workers decrement as they apply.
#[derive(Debug)]
pub struct TicketState {
    outcomes: Mutex<Vec<Option<CommitOutcome>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl TicketState {
    fn new(total: usize) -> Self {
        TicketState {
            outcomes: Mutex::new(vec![None; total]),
            remaining: Mutex::new(total),
            done: Condvar::new(),
        }
    }

    /// Records the outcome of transaction `index` and wakes the waiter
    /// when the batch is fully applied.
    pub(crate) fn record(&self, index: usize, outcome: CommitOutcome) {
        self.outcomes.lock().expect("ticket outcomes")[index] = Some(outcome);
        self.count_down(1);
    }

    /// Records a whole shard task's outcomes with one acquisition of each
    /// lock, so pool workers do not serialize on the shared ticket once
    /// per transaction.
    pub(crate) fn record_all(&self, entries: Vec<(usize, CommitOutcome)>) {
        if entries.is_empty() {
            return;
        }
        let n = entries.len();
        {
            let mut outcomes = self.outcomes.lock().expect("ticket outcomes");
            for (index, outcome) in entries {
                outcomes[index] = Some(outcome);
            }
        }
        self.count_down(n);
    }

    fn count_down(&self, n: usize) {
        let mut remaining = self.remaining.lock().expect("ticket countdown");
        *remaining -= n;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A handle on one tracked batch submitted to the pool via
/// [`ShardScheduler::submit_tracked`]. Waiting on it yields the
/// per-transaction [`CommitOutcome`]s in submission order — exactly what
/// the synchronous verifier apply loop produced, but computed by the
/// worker pool with real shard parallelism.
#[derive(Debug)]
pub struct ApplyTicket {
    state: Arc<TicketState>,
    txns: Arc<[TxnResult]>,
}

impl ApplyTicket {
    /// Blocks until every transaction of the batch has been applied and
    /// returns their outcomes, indexed like the submitted slice.
    #[must_use]
    pub fn wait(self) -> Vec<CommitOutcome> {
        let mut remaining = self.state.remaining.lock().expect("ticket countdown");
        while *remaining > 0 {
            remaining = self.state.done.wait(remaining).expect("ticket countdown");
        }
        drop(remaining);
        let mut outcomes = self.state.outcomes.lock().expect("ticket outcomes");
        outcomes
            .drain(..)
            .map(|o| o.expect("every slot recorded before the countdown hits zero"))
            .collect()
    }

    /// Whether this ticket still references the submitted batch
    /// allocation (pointer equality — the zero-copy hand-off proof:
    /// the `VERIFY` message's result slice is the very allocation the
    /// pool workers apply from).
    #[must_use]
    pub fn shares_txns(&self, txns: &Arc<[TxnResult]>) -> bool {
        Arc::ptr_eq(&self.txns, txns)
    }

    /// Number of transactions in the tracked batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the tracked batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }
}

struct SchedulerInner {
    committer: Arc<ShardedCommitter>,
    validate_reads: bool,
    work: Mutex<VecDeque<ShardId>>,
    work_available: Condvar,
    in_flight: Mutex<u64>,
    drained: Condvar,
    shutdown: AtomicBool,
    /// Batches that queued at least one transaction on a shard.
    batches_submitted: Counter,
    /// Transactions the workers finished applying.
    txns_applied: Counter,
}

impl SchedulerInner {
    fn push_work(&self, shard: ShardId) {
        self.work.lock().expect("work queue").push_back(shard);
        self.work_available.notify_one();
    }

    fn take_work(&self) -> Option<ShardId> {
        let mut queue = self.work.lock().expect("work queue");
        loop {
            if let Some(shard) = queue.pop_front() {
                return Some(shard);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self.work_available.wait(queue).expect("work queue");
        }
    }

    fn add_in_flight(&self, n: u64) {
        *self.in_flight.lock().expect("in-flight") += n;
    }

    fn complete(&self, n: u64) {
        self.txns_applied.add(n);
        let mut in_flight = self.in_flight.lock().expect("in-flight");
        *in_flight -= n;
        if *in_flight == 0 {
            self.drained.notify_all();
        }
    }

    fn worker_loop(&self) {
        while let Some(shard_id) = self.take_work() {
            let shard = &self.committer.shards()[shard_id.0 as usize];
            shard.begin_run();
            while let Some(task) = shard.pop_task() {
                match task.work {
                    TaskWork::Owned(txns) => {
                        let n = txns.len() as u64;
                        for rwset in &txns {
                            let _ = self.committer.commit(rwset, self.validate_reads);
                        }
                        self.complete(n);
                    }
                    TaskWork::Tracked {
                        txns,
                        indices,
                        ticket,
                    } => {
                        let n = indices.len() as u64;
                        let entries: Vec<(usize, CommitOutcome)> = indices
                            .iter()
                            .map(|&i| {
                                let i = i as usize;
                                (
                                    i,
                                    self.committer.commit(&txns[i].rwset, self.validate_reads),
                                )
                            })
                            .collect();
                        ticket.record_all(entries);
                        self.complete(n);
                    }
                }
            }
            if shard.finish_run() {
                // Work raced in behind the drain: back into the queue.
                self.push_work(shard_id);
            }
        }
    }
}

/// A worker pool draining shard queues in parallel.
pub struct ShardScheduler {
    inner: Arc<SchedulerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardScheduler {
    /// Spawns `workers` threads (clamped to at least 1) over the given
    /// committer. `validate_reads` selects the OCC mode, exactly as in
    /// the unsharded verifier path.
    #[must_use]
    pub fn new(committer: Arc<ShardedCommitter>, workers: usize, validate_reads: bool) -> Self {
        let inner = Arc::new(SchedulerInner {
            committer,
            validate_reads,
            work: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batches_submitted: Counter::new(),
            txns_applied: Counter::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        ShardScheduler { inner, workers }
    }

    /// The committer this pool drives.
    #[must_use]
    pub fn committer(&self) -> &Arc<ShardedCommitter> {
        &self.inner.committer
    }

    /// Shares the pool's counters into `registry` under `scheduler.*`.
    /// (The counters live inside the worker-shared state, so they are
    /// bound into the registry rather than re-homed.)
    pub fn register_metrics(&self, registry: &Registry) {
        registry.bind_counter("scheduler.batches_submitted", &self.inner.batches_submitted);
        registry.bind_counter("scheduler.txns_applied", &self.inner.txns_applied);
    }

    /// Batches that queued at least one transaction on a shard.
    #[must_use]
    pub fn batches_submitted(&self) -> u64 {
        self.inner.batches_submitted.get()
    }

    /// Transactions the workers have finished applying.
    #[must_use]
    pub fn txns_applied(&self) -> u64 {
        self.inner.txns_applied.get()
    }

    /// Submits one committed batch: every transaction is queued on its
    /// home shard and the touched shards are scheduled.
    pub fn submit(&self, seq: u64, txns: Vec<ReadWriteSet>) {
        let router = *self.inner.committer.router();
        let mut per_shard: Vec<Vec<ReadWriteSet>> = vec![Vec::new(); router.num_shards()];
        let mut submitted = 0u64;
        for rwset in txns {
            let Some(home) = router.shards_of(&rwset).into_iter().next() else {
                continue; // touches no data
            };
            per_shard[home.0 as usize].push(rwset);
            submitted += 1;
        }
        if submitted == 0 {
            return;
        }
        self.inner.batches_submitted.inc();
        self.inner.add_in_flight(submitted);
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = &self.inner.committer.shards()[idx];
            if shard.enqueue(ShardTask {
                seq,
                work: TaskWork::Owned(batch),
            }) {
                self.inner.push_work(ShardId(idx as u32));
            }
        }
    }

    /// Submits one committed batch whose per-transaction outcomes the
    /// caller needs (the verifier's pooled apply stage): the result
    /// allocation — in production the `VERIFY` message's own
    /// `Arc<[TxnResult]>` — is shared with every shard task (zero-copy:
    /// workers read the read-write sets through `Arc` clones and only
    /// per-shard index lists are built), and the returned
    /// [`ApplyTicket`] yields the outcomes once the pool has applied
    /// everything.
    ///
    /// Per-shard FIFO queues drained by at most one worker at a time
    /// preserve commit order within a shard across successive
    /// submissions; cross-shard transactions run on their home shard's
    /// worker through the committer's lock-ordered path, exactly like the
    /// untracked [`Self::submit`] path.
    #[must_use]
    pub fn submit_tracked(&self, seq: u64, txns: Arc<[TxnResult]>) -> ApplyTicket {
        let router = *self.inner.committer.router();
        let homes: Vec<Option<ShardId>> = txns
            .iter()
            .map(|result| router.shards_of(&result.rwset).into_iter().next())
            .collect();
        self.submit_tracked_homed(seq, txns, &homes)
    }

    /// Like [`Self::submit_tracked`], but with the per-transaction home
    /// shards already decided (`None` = touches no data). Callers that
    /// routed the batch for their own bookkeeping — the verifier does,
    /// for `ShardCcheck` accounting — pass the homes in instead of paying
    /// for the key hashing again. (The worker still routes once inside
    /// `commit`, which needs the full involved-shard set for the
    /// cross-shard lock ordering.)
    ///
    /// # Panics
    /// Panics if `homes` is shorter than `txns`.
    #[must_use]
    pub fn submit_tracked_homed(
        &self,
        seq: u64,
        txns: Arc<[TxnResult]>,
        homes: &[Option<ShardId>],
    ) -> ApplyTicket {
        assert!(homes.len() >= txns.len(), "one home decision per txn");
        let num_shards = self.inner.committer.router().num_shards();
        let ticket = Arc::new(TicketState::new(txns.len()));
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        let mut scheduled = 0u64;
        for (i, home) in homes.iter().take(txns.len()).enumerate() {
            match home {
                Some(home) => {
                    per_shard[home.0 as usize].push(i as u32);
                    scheduled += 1;
                }
                // Touches no data: applied trivially, mirroring the
                // committer's empty-route outcome.
                None => ticket.record(i, CommitOutcome::Applied),
            }
        }
        if scheduled > 0 {
            self.inner.batches_submitted.inc();
            self.inner.add_in_flight(scheduled);
            for (idx, indices) in per_shard.into_iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                let shard = &self.inner.committer.shards()[idx];
                if shard.enqueue(ShardTask {
                    seq,
                    work: TaskWork::Tracked {
                        txns: Arc::clone(&txns),
                        indices,
                        ticket: Arc::clone(&ticket),
                    },
                }) {
                    self.inner.push_work(ShardId(idx as u32));
                }
            }
        }
        ApplyTicket {
            state: ticket,
            txns,
        }
    }

    /// Blocks until every submitted transaction has been executed.
    pub fn drain(&self) {
        let mut in_flight = self.inner.in_flight.lock().expect("in-flight");
        while *in_flight > 0 {
            in_flight = self.inner.drained.wait(in_flight).expect("in-flight");
        }
    }

    /// Drains outstanding work, stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.drain();
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardScheduler {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_storage::VersionedStore;
    use sbft_types::{CrossShardPolicy, Key, ShardingConfig, Value, Version};

    fn pool(
        num_shards: usize,
        workers: usize,
        records: u64,
    ) -> (Arc<VersionedStore>, ShardScheduler) {
        let store = Arc::new(VersionedStore::new());
        store.load((0..records).map(|i| (Key(i), Value::new(0))));
        let committer = Arc::new(ShardedCommitter::new(
            Arc::clone(&store),
            &ShardingConfig {
                num_shards,
                workers,
                cross_shard_policy: CrossShardPolicy::LockOrdered,
                ..ShardingConfig::default()
            },
        ));
        (store, ShardScheduler::new(committer, workers, true))
    }

    fn write_txn(key: u64, value: u64) -> ReadWriteSet {
        let mut rw = ReadWriteSet::new();
        rw.record_write(Key(key), Value::new(value));
        rw
    }

    /// Wraps bare read-write sets as the `TxnResult`s a `VERIFY` message
    /// would carry (the tracked path's element type).
    fn tracked(rwsets: Vec<ReadWriteSet>) -> Arc<[TxnResult]> {
        rwsets
            .into_iter()
            .enumerate()
            .map(|(i, rwset)| TxnResult {
                txn: sbft_types::TxnId::new(sbft_types::ClientId(i as u32), 0),
                output: i as u64,
                rwset,
            })
            .collect()
    }

    #[test]
    fn pool_executes_every_submitted_transaction() {
        let (store, pool) = pool(8, 4, 1_000);
        for seq in 0..10u64 {
            pool.submit(seq, (0..100).map(|i| write_txn(seq * 100 + i, 7)).collect());
        }
        pool.drain();
        assert_eq!(pool.committer().committed(), 1_000);
        for k in 0..1_000 {
            assert_eq!(store.get(Key(k)).unwrap().value, Value::new(7));
        }
        pool.shutdown();
    }

    #[test]
    fn sharded_pool_matches_sequential_execution_on_conflict_free_batches() {
        // Disjoint key ranges per transaction → order cannot matter, so
        // the parallel pool must land on the same final store state as a
        // sequential single-shard run.
        let txns: Vec<ReadWriteSet> = (0..500)
            .map(|i| {
                let mut rw = ReadWriteSet::new();
                rw.record_read(Key(i), Version(1));
                rw.record_write(Key(i), Value::new(i * 3));
                rw
            })
            .collect();
        let run = |num_shards: usize, workers: usize| {
            let (store, pool) = pool(num_shards, workers, 500);
            pool.submit(1, txns.clone());
            pool.drain();
            let committed = pool.committer().committed();
            pool.shutdown();
            let state: Vec<u64> = (0..500)
                .map(|k| store.get(Key(k)).unwrap().value.data)
                .collect();
            (committed, state)
        };
        assert_eq!(run(1, 1), run(8, 4));
    }

    #[test]
    fn cross_shard_transactions_survive_the_pool() {
        let (store, pool) = pool(8, 4, 100);
        let router = *pool.committer().router();
        let far = (1..)
            .find(|k| router.shard_of(Key(*k)) != router.shard_of(Key(0)))
            .unwrap();
        let mut rw = ReadWriteSet::new();
        rw.record_write(Key(0), Value::new(1));
        rw.record_write(Key(far), Value::new(1));
        pool.submit(1, vec![rw]);
        pool.drain();
        assert_eq!(pool.committer().cross_shard_commits(), 1);
        assert_eq!(store.get(Key(far)).unwrap().value, Value::new(1));
        pool.shutdown();
    }

    #[test]
    fn empty_submit_and_immediate_shutdown_are_safe() {
        let (_, pool) = pool(4, 2, 10);
        pool.submit(1, Vec::new());
        pool.drain();
        pool.shutdown();
        let (_, pool) = pool_drop_path();
        drop(pool);
    }

    fn pool_drop_path() -> (Arc<VersionedStore>, ShardScheduler) {
        pool(2, 2, 10)
    }

    #[test]
    fn tracked_submit_returns_the_synchronous_outcomes() {
        // A batch with fresh reads, a stale read and a no-data transaction:
        // the tracked pool path must report exactly what the synchronous
        // committer reports for the same batch.
        let (store, pool) = pool(8, 4, 100);
        store.put(Key(5), Value::new(50)); // bump key 5 to version 2
        let mut fresh = ReadWriteSet::new();
        fresh.record_read(Key(1), Version(1));
        fresh.record_write(Key(1), Value::new(11));
        let mut stale = ReadWriteSet::new();
        stale.record_read(Key(5), Version(1));
        stale.record_write(Key(5), Value::new(55));
        let empty = ReadWriteSet::new();
        let txns = tracked(vec![fresh, stale, empty]);
        let outcomes = pool.submit_tracked(1, Arc::clone(&txns)).wait();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_applied());
        assert!(matches!(
            outcomes[1],
            crate::committer::CommitOutcome::StaleReads(_)
        ));
        assert!(
            outcomes[2].is_applied(),
            "no-data transactions apply trivially"
        );
        assert_eq!(store.get(Key(1)).unwrap().value, Value::new(11));
        assert_eq!(store.get(Key(5)).unwrap().value, Value::new(50));
        pool.shutdown();
    }

    #[test]
    fn tracked_submit_shares_the_submitted_allocation() {
        // Zero-copy hand-off, scheduler layer: the batch the verifier
        // submits is the very allocation the workers apply from — the
        // ticket still points at it and every shard task holds a refcount
        // bump, never a copy of the read-write sets.
        let (_, pool) = pool(8, 4, 1_000);
        let txns = tracked((0..100u64).map(|i| write_txn(i, i)).collect());
        let ticket = pool.submit_tracked(7, Arc::clone(&txns));
        assert!(
            ticket.shares_txns(&txns),
            "the ticket must reference the submitted allocation"
        );
        assert_eq!(ticket.len(), 100);
        assert!(!ticket.is_empty());
        let outcomes = ticket.wait();
        assert!(outcomes.iter().all(CommitOutcome::is_applied));
        // After the drain only the caller's handle remains.
        pool.drain();
        assert_eq!(Arc::strong_count(&txns), 1);
        pool.shutdown();
    }

    #[test]
    fn tracked_batches_preserve_per_shard_commit_order() {
        // 30 successive batches all write the same key without the caller
        // waiting in between: the shard's FIFO queue (drained by at most
        // one worker at a time) must apply them in submission order, so
        // the final value is the last batch's write.
        let (store, pool) = pool(4, 4, 10);
        let tickets: Vec<ApplyTicket> = (0..30u64)
            .map(|seq| pool.submit_tracked(seq, tracked(vec![write_txn(3, seq)])))
            .collect();
        for ticket in tickets {
            assert!(ticket.wait()[0].is_applied());
        }
        assert_eq!(store.get(Key(3)).unwrap().value, Value::new(29));
        // 1 load + 30 ordered writes.
        assert_eq!(store.version_of(Key(3)), Version(31));
        pool.shutdown();
    }

    #[test]
    fn contended_hot_key_still_commits_every_write() {
        // All transactions write the same key: they serialise on one
        // shard but none may be lost.
        let (store, pool) = pool(8, 4, 10);
        for seq in 0..20u64 {
            pool.submit(seq, (0..10).map(|_| write_txn(3, seq)).collect());
        }
        pool.drain();
        assert_eq!(pool.committer().committed(), 200);
        // 1 load + 200 writes.
        assert_eq!(store.version_of(Key(3)), Version(201));
        pool.shutdown();
    }
}
