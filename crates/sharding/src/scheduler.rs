//! The shard worker pool.
//!
//! [`ShardScheduler`] drives a [`ShardedCommitter`] with a pool of OS
//! threads sized to the configured cores. Work arrives as batches of
//! read-write sets ([`ShardTask`]s): each transaction is queued on its
//! *home* shard (the lowest-numbered shard it touches) and the shard is
//! handed to the pool through the atomic `Idle → Pending` transition, so
//! a shard is in the work queue at most once and is drained by at most
//! one worker at a time. Cross-shard transactions are executed by their
//! home shard's worker through the committer's lock-ordered path.
//!
//! The scheduler is the real-parallelism counterpart of the simulator's
//! per-shard service stations: the `fig6_shards` benchmark uses it to
//! show raw thread scaling, and the thread runtime can drive it as the
//! verifier's apply stage.

use crate::committer::ShardedCommitter;
use crate::router::ShardId;
use crate::state::ShardTask;
use sbft_types::ReadWriteSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct SchedulerInner {
    committer: Arc<ShardedCommitter>,
    validate_reads: bool,
    work: Mutex<VecDeque<ShardId>>,
    work_available: Condvar,
    in_flight: Mutex<u64>,
    drained: Condvar,
    shutdown: AtomicBool,
}

impl SchedulerInner {
    fn push_work(&self, shard: ShardId) {
        self.work.lock().expect("work queue").push_back(shard);
        self.work_available.notify_one();
    }

    fn take_work(&self) -> Option<ShardId> {
        let mut queue = self.work.lock().expect("work queue");
        loop {
            if let Some(shard) = queue.pop_front() {
                return Some(shard);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self.work_available.wait(queue).expect("work queue");
        }
    }

    fn add_in_flight(&self, n: u64) {
        *self.in_flight.lock().expect("in-flight") += n;
    }

    fn complete(&self, n: u64) {
        let mut in_flight = self.in_flight.lock().expect("in-flight");
        *in_flight -= n;
        if *in_flight == 0 {
            self.drained.notify_all();
        }
    }

    fn worker_loop(&self) {
        while let Some(shard_id) = self.take_work() {
            let shard = &self.committer.shards()[shard_id.0 as usize];
            shard.begin_run();
            while let Some(task) = shard.pop_task() {
                let n = task.txns.len() as u64;
                for rwset in &task.txns {
                    let _ = self.committer.commit(rwset, self.validate_reads);
                }
                self.complete(n);
            }
            if shard.finish_run() {
                // Work raced in behind the drain: back into the queue.
                self.push_work(shard_id);
            }
        }
    }
}

/// A worker pool draining shard queues in parallel.
pub struct ShardScheduler {
    inner: Arc<SchedulerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardScheduler {
    /// Spawns `workers` threads (clamped to at least 1) over the given
    /// committer. `validate_reads` selects the OCC mode, exactly as in
    /// the unsharded verifier path.
    #[must_use]
    pub fn new(committer: Arc<ShardedCommitter>, workers: usize, validate_reads: bool) -> Self {
        let inner = Arc::new(SchedulerInner {
            committer,
            validate_reads,
            work: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            in_flight: Mutex::new(0),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        ShardScheduler { inner, workers }
    }

    /// The committer this pool drives.
    #[must_use]
    pub fn committer(&self) -> &Arc<ShardedCommitter> {
        &self.inner.committer
    }

    /// Submits one committed batch: every transaction is queued on its
    /// home shard and the touched shards are scheduled.
    pub fn submit(&self, seq: u64, txns: Vec<ReadWriteSet>) {
        let router = *self.inner.committer.router();
        let mut per_shard: Vec<Vec<ReadWriteSet>> = vec![Vec::new(); router.num_shards()];
        let mut submitted = 0u64;
        for rwset in txns {
            let Some(home) = router.shards_of(&rwset).into_iter().next() else {
                continue; // touches no data
            };
            per_shard[home.0 as usize].push(rwset);
            submitted += 1;
        }
        if submitted == 0 {
            return;
        }
        self.inner.add_in_flight(submitted);
        for (idx, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let shard = &self.inner.committer.shards()[idx];
            if shard.enqueue(ShardTask { seq, txns: batch }) {
                self.inner.push_work(ShardId(idx as u32));
            }
        }
    }

    /// Blocks until every submitted transaction has been executed.
    pub fn drain(&self) {
        let mut in_flight = self.inner.in_flight.lock().expect("in-flight");
        while *in_flight > 0 {
            in_flight = self.inner.drained.wait(in_flight).expect("in-flight");
        }
    }

    /// Drains outstanding work, stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.drain();
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardScheduler {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_storage::VersionedStore;
    use sbft_types::{CrossShardPolicy, Key, ShardingConfig, Value, Version};

    fn pool(
        num_shards: usize,
        workers: usize,
        records: u64,
    ) -> (Arc<VersionedStore>, ShardScheduler) {
        let store = Arc::new(VersionedStore::new());
        store.load((0..records).map(|i| (Key(i), Value::new(0))));
        let committer = Arc::new(ShardedCommitter::new(
            Arc::clone(&store),
            &ShardingConfig {
                num_shards,
                workers,
                cross_shard_policy: CrossShardPolicy::LockOrdered,
            },
        ));
        (store, ShardScheduler::new(committer, workers, true))
    }

    fn write_txn(key: u64, value: u64) -> ReadWriteSet {
        let mut rw = ReadWriteSet::new();
        rw.record_write(Key(key), Value::new(value));
        rw
    }

    #[test]
    fn pool_executes_every_submitted_transaction() {
        let (store, pool) = pool(8, 4, 1_000);
        for seq in 0..10u64 {
            pool.submit(seq, (0..100).map(|i| write_txn(seq * 100 + i, 7)).collect());
        }
        pool.drain();
        assert_eq!(pool.committer().committed(), 1_000);
        for k in 0..1_000 {
            assert_eq!(store.get(Key(k)).unwrap().value, Value::new(7));
        }
        pool.shutdown();
    }

    #[test]
    fn sharded_pool_matches_sequential_execution_on_conflict_free_batches() {
        // Disjoint key ranges per transaction → order cannot matter, so
        // the parallel pool must land on the same final store state as a
        // sequential single-shard run.
        let txns: Vec<ReadWriteSet> = (0..500)
            .map(|i| {
                let mut rw = ReadWriteSet::new();
                rw.record_read(Key(i), Version(1));
                rw.record_write(Key(i), Value::new(i * 3));
                rw
            })
            .collect();
        let run = |num_shards: usize, workers: usize| {
            let (store, pool) = pool(num_shards, workers, 500);
            pool.submit(1, txns.clone());
            pool.drain();
            let committed = pool.committer().committed();
            pool.shutdown();
            let state: Vec<u64> = (0..500)
                .map(|k| store.get(Key(k)).unwrap().value.data)
                .collect();
            (committed, state)
        };
        assert_eq!(run(1, 1), run(8, 4));
    }

    #[test]
    fn cross_shard_transactions_survive_the_pool() {
        let (store, pool) = pool(8, 4, 100);
        let router = *pool.committer().router();
        let far = (1..)
            .find(|k| router.shard_of(Key(*k)) != router.shard_of(Key(0)))
            .unwrap();
        let mut rw = ReadWriteSet::new();
        rw.record_write(Key(0), Value::new(1));
        rw.record_write(Key(far), Value::new(1));
        pool.submit(1, vec![rw]);
        pool.drain();
        assert_eq!(pool.committer().cross_shard_commits(), 1);
        assert_eq!(store.get(Key(far)).unwrap().value, Value::new(1));
        pool.shutdown();
    }

    #[test]
    fn empty_submit_and_immediate_shutdown_are_safe() {
        let (_, pool) = pool(4, 2, 10);
        pool.submit(1, Vec::new());
        pool.drain();
        pool.shutdown();
        let (_, pool) = pool_drop_path();
        drop(pool);
    }

    fn pool_drop_path() -> (Arc<VersionedStore>, ShardScheduler) {
        pool(2, 2, 10)
    }

    #[test]
    fn contended_hot_key_still_commits_every_write() {
        // All transactions write the same key: they serialise on one
        // shard but none may be lost.
        let (store, pool) = pool(8, 4, 10);
        for seq in 0..20u64 {
            pool.submit(seq, (0..10).map(|_| write_txn(3, seq)).collect());
        }
        pool.drain();
        assert_eq!(pool.committer().committed(), 200);
        // 1 load + 200 writes.
        assert_eq!(store.version_of(Key(3)), Version(201));
        pool.shutdown();
    }
}
