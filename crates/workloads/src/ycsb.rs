//! The YCSB-style transaction generator.
//!
//! Transactions perform read and write operations against the key-value
//! table (Section IX, *Benchmark*). The generator controls everything the
//! evaluation sweeps:
//!
//! * operations per transaction and write fraction,
//! * key popularity (uniform or Zipfian),
//! * the **conflict rate**: with probability `conflict_fraction` a
//!   transaction is redirected to a small hot key set so that it conflicts
//!   with other in-flight transactions (Figure 6(xi)–(xii)),
//! * the modeled **execution cost** per transaction (Figure 6(v)–(vi) and
//!   Figure 8),
//! * whether transactions **declare their read-write sets** ahead of
//!   execution (Section VI-B vs VI-C).

use crate::zipf::{UniformKeys, ZipfianKeys};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbft_types::{Batch, ClientId, Key, Operation, Transaction, TxnId, Value, WorkloadConfig};
use std::collections::HashMap;

/// Number of keys in the hot set used to manufacture conflicts.
const CONFLICT_HOT_KEYS: u64 = 8;

/// Which key-popularity distribution to draw non-conflicting keys from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyDistribution {
    /// Uniform over the whole table.
    Uniform,
    /// Zipfian with the YCSB default exponent (θ = 0.99).
    Zipfian,
}

/// The YCSB transaction generator.
#[derive(Debug)]
pub struct YcsbWorkload {
    config: WorkloadConfig,
    distribution: KeyDistribution,
    declare_rwsets: bool,
    zipf: ZipfianKeys,
    uniform: UniformKeys,
    rng: StdRng,
    counters: HashMap<ClientId, u64>,
    generated: u64,
}

impl YcsbWorkload {
    /// Creates a generator from a workload configuration and an RNG seed.
    #[must_use]
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        assert!(config.num_records > CONFLICT_HOT_KEYS, "table too small");
        YcsbWorkload {
            zipf: ZipfianKeys::new(config.num_records),
            uniform: UniformKeys::new(config.num_records),
            distribution: KeyDistribution::Uniform,
            declare_rwsets: false,
            rng: StdRng::seed_from_u64(seed),
            counters: HashMap::new(),
            generated: 0,
            config,
        }
    }

    /// Switches the key-popularity distribution.
    #[must_use]
    pub fn with_distribution(mut self, distribution: KeyDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Switches to a Zipfian distribution with an explicit exponent
    /// (θ = 0 degenerates to near-uniform; the YCSB default is 0.99).
    /// Used by the skew sweeps of the planner experiments.
    #[must_use]
    pub fn with_zipf_theta(mut self, theta: f64) -> Self {
        self.zipf = ZipfianKeys::with_theta(self.config.num_records, theta);
        self.distribution = KeyDistribution::Zipfian;
        self
    }

    /// Makes every generated transaction declare its read-write set
    /// (the known-read-write-set mode of Section VI-C).
    #[must_use]
    pub fn with_declared_rwsets(mut self, declare: bool) -> Self {
        self.declare_rwsets = declare;
        self
    }

    /// The workload configuration in use.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Total number of transactions generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn draw_key(&mut self) -> u64 {
        match self.distribution {
            KeyDistribution::Uniform => self.uniform.sample(&mut self.rng),
            KeyDistribution::Zipfian => self.zipf.sample(&mut self.rng),
        }
    }

    /// Generates the next transaction for `client`.
    pub fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let counter = self.counters.entry(client).or_insert(0);
        let id = TxnId::new(client, *counter);
        *counter += 1;
        self.generated += 1;

        let conflicting = self.rng.gen_bool(self.config.conflict_fraction);
        let mut ops = Vec::with_capacity(self.config.ops_per_txn);
        for op_idx in 0..self.config.ops_per_txn {
            let key = if conflicting && op_idx == 0 {
                // Conflicting transactions contend on a small hot set.
                Key(self.rng.gen_range(0..CONFLICT_HOT_KEYS))
            } else {
                Key(self.draw_key())
            };
            let is_write = if conflicting && op_idx == 0 {
                // At least one access to the hot key must be a write for a
                // conflict to exist (Section VI definition).
                true
            } else {
                self.rng.gen_bool(self.config.write_fraction)
            };
            if is_write {
                ops.push(Operation::ReadModifyWrite(key, self.rng.gen()));
            } else {
                ops.push(Operation::Read(key));
            }
        }

        let mut txn = Transaction::new(id, ops).with_execution_cost(self.config.execution_cost);
        if self.declare_rwsets {
            txn = txn.with_inferred_rwset();
        }
        txn
    }

    /// Generates a batch of `size` transactions, spreading them round-robin
    /// over the configured client population (as the batching front-end at
    /// the primary would).
    pub fn next_batch(&mut self, size: usize) -> Batch {
        assert!(size > 0, "batch size must be positive");
        let n_clients = self.config.num_clients.max(1) as u32;
        let txns = (0..size)
            .map(|i| self.next_transaction(ClientId(i as u32 % n_clients)))
            .collect();
        Batch::new(txns)
    }

    /// Generates a batch using the configured batch size.
    pub fn next_default_batch(&mut self) -> Batch {
        self.next_batch(self.config.batch_size)
    }

    /// The initial value a read-modify-write would produce for `key` given
    /// `salt` — exposed so tests and executors can agree on outputs.
    #[must_use]
    pub fn rmw_value(key: Key, salt: u64, old: Value) -> Value {
        Value::with_len(
            old.data.wrapping_mul(31).wrapping_add(salt ^ key.0),
            old.logical_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            num_records: 10_000,
            num_clients: 4,
            batch_size: 10,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn txn_ids_are_per_client_monotonic() {
        let mut wl = YcsbWorkload::new(config(), 1);
        let a0 = wl.next_transaction(ClientId(0));
        let b0 = wl.next_transaction(ClientId(1));
        let a1 = wl.next_transaction(ClientId(0));
        assert_eq!(a0.id.counter, 0);
        assert_eq!(b0.id.counter, 0);
        assert_eq!(a1.id.counter, 1);
        assert_eq!(wl.generated(), 3);
    }

    #[test]
    fn batch_respects_requested_size_and_spreads_clients() {
        let mut wl = YcsbWorkload::new(config(), 2);
        let batch = wl.next_batch(10);
        assert_eq!(batch.len(), 10);
        let clients: std::collections::HashSet<_> = batch.iter().map(|t| t.id.client).collect();
        assert_eq!(clients.len(), 4);
    }

    #[test]
    fn zero_conflict_fraction_avoids_hot_set_writes() {
        let mut cfg = config();
        cfg.conflict_fraction = 0.0;
        cfg.write_fraction = 0.0;
        let mut wl = YcsbWorkload::new(cfg, 3);
        for _ in 0..200 {
            let t = wl.next_transaction(ClientId(0));
            assert!(t.ops.iter().all(|op| !op.is_write()));
        }
    }

    #[test]
    fn full_conflict_fraction_always_writes_a_hot_key() {
        let mut cfg = config();
        cfg.conflict_fraction = 1.0;
        let mut wl = YcsbWorkload::new(cfg, 4);
        for _ in 0..100 {
            let t = wl.next_transaction(ClientId(0));
            let hot_write = t
                .ops
                .iter()
                .any(|op| op.is_write() && op.key().0 < CONFLICT_HOT_KEYS);
            assert!(hot_write, "conflicting txn must write a hot key: {t:?}");
        }
    }

    #[test]
    fn conflicting_transactions_actually_conflict_with_each_other() {
        let mut cfg = config();
        cfg.conflict_fraction = 1.0;
        cfg.ops_per_txn = 1;
        let mut wl = YcsbWorkload::new(cfg, 5);
        // With only 8 hot keys and writes, two batches of transactions must
        // contain many pairwise conflicts.
        let a: Vec<_> = (0..16).map(|_| wl.next_transaction(ClientId(0))).collect();
        let conflicts = a
            .iter()
            .enumerate()
            .flat_map(|(i, t)| a[i + 1..].iter().map(move |u| t.conflicts_with(u)))
            .filter(|c| *c)
            .count();
        assert!(conflicts > 0);
    }

    #[test]
    fn zipf_theta_skews_the_key_popularity() {
        // A strongly skewed generator hits the head of the key space far
        // more often than a flat one.
        let head_hits = |theta: f64| {
            let mut cfg = config();
            cfg.conflict_fraction = 0.0;
            let mut wl = YcsbWorkload::new(cfg, 9).with_zipf_theta(theta);
            (0..2_000)
                .filter(|_| wl.next_transaction(ClientId(0)).ops[0].key().0 < 100)
                .count()
        };
        let flat = head_hits(0.01);
        let skewed = head_hits(0.99);
        assert!(
            skewed > flat * 2,
            "θ=0.99 ({skewed}) must hit the head far more than θ=0.01 ({flat})"
        );
    }

    #[test]
    fn declared_rwsets_follow_flag() {
        let mut wl = YcsbWorkload::new(config(), 6).with_declared_rwsets(true);
        assert!(wl.next_transaction(ClientId(0)).rwset_known());
        let mut wl = YcsbWorkload::new(config(), 6);
        assert!(!wl.next_transaction(ClientId(0)).rwset_known());
    }

    #[test]
    fn execution_cost_propagates_from_config() {
        use sbft_types::SimDuration;
        let mut cfg = config();
        cfg.execution_cost = SimDuration::from_millis(250);
        let mut wl = YcsbWorkload::new(cfg, 7);
        assert_eq!(
            wl.next_transaction(ClientId(0)).execution_cost,
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = YcsbWorkload::new(config(), 42);
        let mut b = YcsbWorkload::new(config(), 42);
        for _ in 0..50 {
            assert_eq!(
                a.next_transaction(ClientId(1)),
                b.next_transaction(ClientId(1))
            );
        }
    }

    #[test]
    fn default_batch_uses_configured_size() {
        let mut wl = YcsbWorkload::new(config(), 8);
        assert_eq!(wl.next_default_batch().len(), 10);
    }
}
