//! # sbft-workloads
//!
//! Workload generation for the ServerlessBFT evaluation.
//!
//! * [`zipf`] — the Zipfian key-popularity distribution YCSB uses, plus a
//!   uniform fallback.
//! * [`ycsb`] — the transaction generator: read / write / read-modify-write
//!   operations over the 600 k-record table, with configurable write
//!   fraction, operations per transaction, modeled execution cost
//!   (Figure 6(v) and Figure 8) and a controllable conflict rate
//!   (Figure 6(xi)).
//! * [`clients`] — the closed-loop client population model used to sweep
//!   client congestion (Figure 5).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clients;
pub mod ycsb;
pub mod zipf;

pub use clients::ClientPopulation;
pub use ycsb::{KeyDistribution, YcsbWorkload};
pub use zipf::{UniformKeys, ZipfianKeys};
