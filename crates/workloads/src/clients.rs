//! The closed-loop client population model.
//!
//! The evaluation deploys up to 88 k clients, each of which "waits for a
//! response prior to sending its next request" (Section IX, *Setup*). The
//! [`ClientPopulation`] captures that closed loop: every client has at most
//! one outstanding transaction, a response releases the next request, and
//! the number of clients is the experiment's congestion knob (Figure 5).

use crate::ycsb::YcsbWorkload;
use sbft_types::{ClientId, Transaction, TxnId};
use std::collections::HashMap;

/// A population of closed-loop clients driven by a shared workload
/// generator.
#[derive(Debug)]
pub struct ClientPopulation {
    workload: YcsbWorkload,
    num_clients: usize,
    outstanding: HashMap<ClientId, TxnId>,
    completed: u64,
}

impl ClientPopulation {
    /// Creates a population of `num_clients` clients.
    ///
    /// # Panics
    /// Panics if `num_clients` is zero.
    #[must_use]
    pub fn new(workload: YcsbWorkload, num_clients: usize) -> Self {
        assert!(num_clients > 0, "at least one client is required");
        ClientPopulation {
            workload,
            num_clients,
            outstanding: HashMap::new(),
            completed: 0,
        }
    }

    /// Number of clients in the population.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of requests currently awaiting a response.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of responses received so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The initial request of every client (each client issues exactly one
    /// request and then waits).
    pub fn initial_requests(&mut self) -> Vec<Transaction> {
        (0..self.num_clients as u32)
            .map(|c| self.issue(ClientId(c)))
            .collect()
    }

    /// Issues the next request for a specific client.
    ///
    /// # Panics
    /// Panics if the client already has an outstanding request (closed-loop
    /// violation) or is outside the population.
    pub fn issue(&mut self, client: ClientId) -> Transaction {
        assert!(
            (client.0 as usize) < self.num_clients,
            "unknown client {client}"
        );
        assert!(
            !self.outstanding.contains_key(&client),
            "{client} already has an outstanding request"
        );
        let txn = self.workload.next_transaction(client);
        self.outstanding.insert(client, txn.id);
        txn
    }

    /// Records a response for `txn` and, because clients are closed-loop,
    /// returns the client's next request. Responses for unknown or already
    /// answered transactions (duplicates re-sent by the verifier) return
    /// `None`.
    pub fn on_response(&mut self, txn: TxnId) -> Option<Transaction> {
        match self.outstanding.get(&txn.client) {
            Some(current) if *current == txn => {
                self.outstanding.remove(&txn.client);
                self.completed += 1;
                Some(self.issue(txn.client))
            }
            _ => None,
        }
    }

    /// Access to the underlying workload generator.
    #[must_use]
    pub fn workload(&self) -> &YcsbWorkload {
        &self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::WorkloadConfig;

    fn population(n: usize) -> ClientPopulation {
        let cfg = WorkloadConfig {
            num_records: 1_000,
            num_clients: n,
            ..WorkloadConfig::default()
        };
        ClientPopulation::new(YcsbWorkload::new(cfg, 7), n)
    }

    #[test]
    fn initial_requests_one_per_client() {
        let mut pop = population(5);
        let reqs = pop.initial_requests();
        assert_eq!(reqs.len(), 5);
        assert_eq!(pop.outstanding(), 5);
        let clients: std::collections::HashSet<_> = reqs.iter().map(|t| t.id.client).collect();
        assert_eq!(clients.len(), 5);
    }

    #[test]
    fn response_releases_next_request() {
        let mut pop = population(2);
        let reqs = pop.initial_requests();
        let next = pop.on_response(reqs[0].id).expect("next request");
        assert_eq!(next.id.client, reqs[0].id.client);
        assert_eq!(next.id.counter, reqs[0].id.counter + 1);
        assert_eq!(pop.completed(), 1);
        assert_eq!(pop.outstanding(), 2, "client immediately re-issues");
    }

    #[test]
    fn duplicate_responses_are_ignored() {
        let mut pop = population(2);
        let reqs = pop.initial_requests();
        let _ = pop.on_response(reqs[0].id).unwrap();
        assert!(
            pop.on_response(reqs[0].id).is_none(),
            "stale response ignored"
        );
        assert_eq!(pop.completed(), 1);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn double_issue_panics() {
        let mut pop = population(1);
        let _ = pop.issue(ClientId(0));
        let _ = pop.issue(ClientId(0));
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn issue_for_unknown_client_panics() {
        let mut pop = population(1);
        let _ = pop.issue(ClientId(5));
    }
}
