//! Key-popularity distributions.
//!
//! YCSB draws keys from a Zipfian distribution with exponent θ = 0.99 by
//! default; the implementation below uses the standard Gray et al.
//! rejection-free inverse-CDF construction ("Quickly generating
//! billion-record synthetic databases", SIGMOD '94), the same one the YCSB
//! core workload uses. A uniform distribution is provided for the
//! conflict-free configurations.

use rand::Rng;

/// YCSB's default Zipfian constant.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// A Zipfian distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfianKeys {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianKeys {
    /// Creates a Zipfian distribution over `0..n` with the default YCSB
    /// exponent.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, YCSB_ZIPFIAN_CONSTANT)
    }

    /// Creates a Zipfian distribution with an explicit exponent `theta`.
    #[must_use]
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "the key space cannot be empty");
        assert!((0.0..1.0).contains(&theta), "theta must lie in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianKeys {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is fine for the sizes used here (≤ a few million);
        // the constructor is called once per experiment.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws the next key (0-based rank; rank 0 is the most popular key).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Size of the key space.
    #[must_use]
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// The Zipfian exponent in use.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The normalisation constant ζ(2, θ) (exposed for tests).
    #[must_use]
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// A uniform distribution over `0..n`.
#[derive(Clone, Copy, Debug)]
pub struct UniformKeys {
    n: u64,
}

impl UniformKeys {
    /// Creates a uniform distribution over `0..n`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "the key space cannot be empty");
        UniformKeys { n }
    }

    /// Draws the next key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.n)
    }

    /// Size of the key space.
    #[must_use]
    pub fn key_space(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_samples_stay_in_range() {
        let dist = ZipfianKeys::new(1_000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(dist.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn zipfian_is_skewed_towards_small_ranks() {
        let dist = ZipfianKeys::new(10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = 50_000;
        let hot = (0..samples)
            .filter(|_| dist.sample(&mut rng) < 100) // top 1 % of keys
            .count();
        // With θ = 0.99, the top 1 % of keys should collect far more than
        // 1 % of accesses (empirically ~35–45 %).
        assert!(
            hot as f64 / samples as f64 > 0.2,
            "zipfian not skewed enough: {hot}/{samples}"
        );
    }

    #[test]
    fn uniform_is_not_skewed() {
        let dist = UniformKeys::new(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = 50_000;
        let hot = (0..samples).filter(|_| dist.sample(&mut rng) < 100).count();
        let frac = hot as f64 / samples as f64;
        assert!(frac < 0.03, "uniform too skewed: {frac}");
    }

    #[test]
    fn theta_zero_degenerates_towards_uniform() {
        let dist = ZipfianKeys::with_theta(1_000, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let samples = 20_000;
        let hot = (0..samples).filter(|_| dist.sample(&mut rng) < 10).count();
        assert!((hot as f64 / samples as f64) < 0.05);
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn empty_key_space_rejected() {
        let _ = ZipfianKeys::new(0);
    }

    #[test]
    fn uniform_covers_whole_space() {
        let dist = UniformKeys::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(dist.sample(&mut rng));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(dist.key_space(), 8);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dist = ZipfianKeys::new(500);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<u64> = (0..100).map(|_| dist.sample(&mut a)).collect();
        let sb: Vec<u64> = (0..100).map(|_| dist.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
