//! # sbft-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (Section IX), plus Criterion micro-benchmarks for the hot
//! paths (hashing, signatures, PBFT message processing, the storage
//! engine).
//!
//! Each figure has a dedicated binary in `src/bin/` (see `DESIGN.md` for
//! the experiment index). All binaries share the [`experiment`] module:
//! it builds a scaled-down configuration (documented in `EXPERIMENTS.md`),
//! runs it on the discrete-event simulator and prints one row per data
//! point in a fixed format:
//!
//! ```text
//! figure, series, x, throughput_tps, avg_latency_s, p50_s, p99_s, abort_rate, cents_per_ktxn
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiment;

pub use experiment::{
    chaos_points, commit_path_points, divergence_points, placement_points, planner_points,
    print_header, recovery_points, run_point, run_point_silent, run_point_traced, PointConfig,
    PointResult,
};
