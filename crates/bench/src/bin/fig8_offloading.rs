//! Figure 8: benefit of offloading compute-intensive execution to the
//! serverless cloud.
//!
//! SERVBFT-32 (32-node shim, 3 serverless executors) is compared against
//! edge-only PBFT deployments whose 32 nodes execute everything themselves
//! with 1, 8 or 16 execution threads (PBFT-k-ET). The paper sweeps the
//! added execution time 0 → 2000 ms; the reproduction scales it 1:10.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::{RegionSet, SimDuration, SystemConfig};

fn main() {
    print_header();
    // Scaled 1:10 from 0, 50, 100, 500, 1000, 1500, 2000 ms.
    let added_ms = [0u64, 5, 10, 50, 100, 150, 200];
    for &ms in &added_ms {
        // Serverless offloading: execution runs in parallel at the cloud.
        let mut config = SystemConfig::servbft_32();
        config.workload.execution_cost = SimDuration::from_millis(ms);
        config.workload.batch_size = 50;
        let mut point = PointConfig::new("fig8", "SERVBFT-32", ms as f64, config);
        point.clients = 400;
        point.duration = SimDuration::from_millis(2_000);
        point.warmup = SimDuration::from_millis(500);
        run_point(point);

        // Edge-only PBFT with k execution threads shared by all batches.
        for threads in [1usize, 8, 16] {
            let mut config = SystemConfig::servbft_32();
            config.workload.execution_cost = SimDuration::from_millis(ms);
            config.workload.batch_size = 50;
            config.fault = config.fault.with_executors(1);
            config.regions = RegionSet::home_only();
            let series = format!("PBFT-{threads}-ET");
            let mut point = PointConfig::new("fig8", series, ms as f64, config);
            point.clients = 400;
            point.duration = SimDuration::from_millis(2_000);
            point.warmup = SimDuration::from_millis(500);
            point.edge_execution_threads = Some(threads);
            point.bill_serverless = false;
            run_point(point);
        }
    }
}
