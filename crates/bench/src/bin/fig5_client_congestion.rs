//! Figure 5: latency vs throughput while varying the number of clients.
//!
//! The paper sweeps 2 k → 88 k clients against SERVBFT-8 and SERVBFT-32;
//! this reproduction scales the client population 1:100.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::SystemConfig;

fn main() {
    print_header();
    // 1:100 scaling of 2k, 4k, 8k, 16k, 32k, 40k ... 88k clients.
    let client_counts = [20usize, 40, 80, 160, 320, 400, 480, 560, 640, 720, 800, 880];
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for &clients in &client_counts {
            let config = SystemConfig::with_shim_size(n_r);
            let mut point = PointConfig::new("fig5", label, clients as f64, config);
            point.clients = clients;
            run_point(point);
        }
    }
}
