//! End-to-end commit-path throughput experiment.
//!
//! Drives a saturated default PBFT deployment over a sweep of batch
//! sizes and reports committed throughput and latency per point. This is
//! the macro-level companion to the `microbench` hot-path benches
//! (sha256 throughput, digest memoization, Arc batch hand-off, aggregate
//! client verification): the micro benches show each ingredient, this
//! binary shows the committed TPS they buy end to end. Run before/after
//! hot-path changes and diff the rows.
//!
//! After the sweep the binary prints `scheduler_apply` rows: wall-clock
//! throughput of the `ShardScheduler`-driven apply stage (the thread
//! runtime's commit path) at 1 worker and at the host's core count —
//! real threads over the real committer, so on a multi-core host the
//! multi-worker row shows the apply-stage scaling the sharded runtime
//! unlocks. CI runs this binary as a smoke test and asserts every metric
//! line prints.

use sbft_bench::experiment::{commit_path_points, print_header, run_point};
use sbft_sharding::{ShardScheduler, ShardedCommitter};
use sbft_storage::VersionedStore;
use sbft_types::{ClientId, Key, ReadWriteSet, ShardingConfig, TxnId, TxnResult, Value};
use std::sync::Arc;
use std::time::Instant;

/// One wall-clock apply-throughput point: `batches` tracked batches of
/// `per_batch` single-key writes through a pool of `workers` threads over
/// 8 shards.
fn scheduler_apply_point(workers: usize, batches: u64, per_batch: u64) {
    let records = 100_000u64;
    let store = Arc::new(VersionedStore::new());
    store.load((0..records).map(|i| (Key(i), Value::new(0))));
    let committer = Arc::new(ShardedCommitter::new(
        Arc::clone(&store),
        &ShardingConfig {
            num_shards: 8,
            workers,
            ..ShardingConfig::default()
        },
    ));
    let pool = ShardScheduler::new(committer, workers, true);
    let work: Vec<Arc<[TxnResult]>> = (0..batches)
        .map(|b| {
            (0..per_batch)
                .map(|i| {
                    let mut rwset = ReadWriteSet::new();
                    rwset.record_write(Key((b * per_batch + i) % records), Value::new(b));
                    TxnResult {
                        txn: TxnId::new(ClientId(i as u32), b),
                        output: b,
                        rwset,
                    }
                })
                .collect()
        })
        .collect();
    let start = Instant::now();
    let tickets: Vec<_> = work
        .iter()
        .enumerate()
        .map(|(seq, batch)| pool.submit_tracked(seq as u64, Arc::clone(batch)))
        .collect();
    let applied: u64 = tickets
        .into_iter()
        .map(|t| t.wait().iter().filter(|o| o.is_applied()).count() as u64)
        .sum();
    let elapsed = start.elapsed();
    pool.shutdown();
    let txns = batches * per_batch;
    println!(
        "scheduler_apply,workers={},shards=8,txns={},applied={},wall_ms={:.1},tps={:.0}",
        workers,
        txns,
        applied,
        elapsed.as_secs_f64() * 1e3,
        txns as f64 / elapsed.as_secs_f64(),
    );
}

fn main() {
    print_header();
    for point in commit_path_points(&[10, 50, 100, 400, 1000]) {
        let _ = run_point(point);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    scheduler_apply_point(1, 1_000, 100);
    if cores > 1 {
        scheduler_apply_point(cores.min(8), 1_000, 100);
    }
}
