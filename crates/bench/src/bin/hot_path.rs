//! End-to-end commit-path throughput experiment.
//!
//! Drives a saturated default PBFT deployment over a sweep of batch
//! sizes and reports committed throughput and latency per point. This is
//! the macro-level companion to the `microbench` hot-path benches
//! (sha256 throughput, digest memoization, Arc batch hand-off): the
//! micro benches show each ingredient, this binary shows the committed
//! TPS they buy end to end. Run before/after hot-path changes and diff
//! the rows.

use sbft_bench::experiment::{commit_path_points, print_header, run_point};

fn main() {
    print_header();
    for point in commit_path_points(&[10, 50, 100, 400, 1000]) {
        let _ = run_point(point);
    }
}
