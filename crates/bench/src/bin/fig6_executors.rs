//! Figure 6(i)-(ii): impact of the number of serverless executors.
//!
//! Executors 3, 5, 11, 15 and 21 spread over up to seven regions, for
//! SERVBFT-8 and SERVBFT-32.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::{RegionSet, SystemConfig};

fn main() {
    print_header();
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for executors in [3usize, 5, 11, 15, 21] {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.fault = config.fault.with_executors(executors);
            config.regions = RegionSet::first_n(executors.min(7));
            let mut point = PointConfig::new("fig6-exec", label, executors as f64, config);
            point.clients = 400;
            run_point(point);
        }
    }
}
