//! Per-stage latency breakdown of the batch commit pipeline.
//!
//! Runs one PBFT sweep point (8 shards, known read-write sets, pipelined
//! apply) with the batch lifecycle tracer attached, then prints the
//! stage-latency table (`batch_wait`, `ordering`, `spawn`, `execute`,
//! `verify`, `apply`, `respond` and the end-to-end total). Because
//! consecutive stages share their boundary markers, the per-trace stage
//! durations telescope exactly to the end-to-end latency; the binary
//! checks that invariant over every complete trace and fails loudly if
//! instrumentation ever drops a marker.
//!
//! Pass a file path as the first argument to also write the run's
//! Chrome-trace JSONL (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>; see `OBSERVABILITY.md`).
//!
//! CI runs this binary as a smoke test and asserts every stage row is
//! present with a non-zero count.

use sbft_bench::{run_point_traced, PointConfig};
use sbft_telemetry::export::marks;
use sbft_telemetry::{chrome_trace, render_stage_table, stage_breakdown, MemorySink, Stage};
use sbft_types::{SimDuration, SystemConfig};
use std::sync::Arc;

fn main() {
    let mut config = SystemConfig::with_shim_size(4);
    config.conflict_handling = sbft_types::ConflictHandling::KnownRwSets;
    config.workload.num_records = 10_000;
    config.workload.batch_size = 50;
    config.sharding = sbft_types::ShardingConfig::with_shards(8);
    let mut point = PointConfig::new("trace", "PBFT-8SHARDS", 8.0, config);
    point.clients = 300;
    point.duration = SimDuration::from_millis(400);
    point.warmup = SimDuration::from_millis(100);

    let sink = Arc::new(MemorySink::new());
    let result = run_point_traced(point, Arc::clone(&sink) as _);
    let events = sink.events();

    let rows = stage_breakdown(&events);
    print!("{}", render_stage_table(&rows));

    // Telescoping check: for every trace carrying all pipeline markers,
    // the stage durations must sum exactly to the end-to-end latency.
    let mut complete = 0u64;
    let mut mismatched = 0u64;
    for stage_times in marks(&events).values() {
        let (Some(&ingest), Some(&respond)) = (
            stage_times.get(&Stage::ShimIngest),
            stage_times.get(&Stage::Respond),
        ) else {
            continue;
        };
        if !Stage::PIPELINE.iter().all(|s| stage_times.contains_key(s)) {
            continue;
        }
        complete += 1;
        let stage_sum: u64 = sbft_telemetry::INTERVALS
            .iter()
            .map(|(_, from, to)| stage_times[to].as_micros() - stage_times[from].as_micros())
            .sum();
        if stage_sum != respond.as_micros() - ingest.as_micros() {
            mismatched += 1;
        }
    }
    println!(
        "stage_sum_check: {} ({complete} complete traces, {mismatched} mismatched, {} committed txns)",
        if complete > 0 && mismatched == 0 {
            "OK"
        } else {
            "FAIL"
        },
        result.metrics.committed_txns,
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, chrome_trace(&events)).expect("write chrome trace");
        println!("chrome_trace: {path}");
    }

    assert!(complete > 0, "no complete traces recorded");
    assert_eq!(mismatched, 0, "stage sums must telescope to e2e latency");
}
