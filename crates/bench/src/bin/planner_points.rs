//! Ordering-time shard-planner sweep (Zipf skew × shard count).
//!
//! Each point runs the closed-loop simulator with known read-write sets
//! (`KnownRwSets`) twice: `PLANNED` (per-shard ordering lanes at the
//! primary — the shard-aware planner) and `UNPLANNED` (the PR 3
//! baseline, where batches are routed only in the verifier's apply
//! stage). The headline metric is `cross_fallback_rate`: the fraction of
//! validated batches whose footprint spanned shards and therefore paid
//! cross-shard coordination (or, in the pooled runtime, the synchronous
//! fallback). With single-op YCSB transactions every transaction is
//! single-home, so the lanes drive the rate to zero at every skew and
//! shard count, while the unplanned baseline spans nearly every batch as
//! soon as shards > 1. `planned_batches` counts verified fast-path
//! batches and `plan_mismatches` must stay 0 under an honest primary
//! (the trust-but-verify re-derivation never fires).
//!
//! CI runs this binary as a smoke test and asserts every row prints.

use sbft_bench::{planner_points, run_point_silent};

fn main() {
    println!(
        "figure,series,x,throughput_tps,cross_fallback_rate,single_home,validated,planned,mismatches,committed"
    );
    let shard_counts = [1usize, 2, 4, 8];
    let thetas = [0.0f64, 0.6, 0.9, 0.99];
    for point in planner_points(&shard_counts, &thetas) {
        let result = run_point_silent(point);
        println!(
            "{},{},{:.0},{:.0},{:.3},{},{},{},{},{}",
            result.figure,
            result.series,
            result.x,
            result.metrics.throughput_tps(),
            result.metrics.cross_shard_fallback_rate(),
            result.metrics.single_home_batches,
            result.metrics.validated_batches,
            result.metrics.planned_batches,
            result.metrics.plan_mismatches,
            result.metrics.committed_txns,
        );
    }
}
