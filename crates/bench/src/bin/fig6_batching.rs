//! Figure 6(iii)-(iv): impact of the client-request batch size.
//!
//! The paper sweeps batch sizes 10 → 8000; the reproduction sweeps
//! 10 → 2000 with the client population scaled to keep batches fillable.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::SystemConfig;

fn main() {
    print_header();
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for batch in [10usize, 50, 100, 200, 500, 1000, 2000] {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.workload.batch_size = batch;
            let mut point = PointConfig::new("fig6-batch", label, batch as f64, config);
            point.clients = (batch * 3).clamp(200, 4_000);
            run_point(point);
        }
    }
}
