//! Figure 6(xi)-(xii): impact of conflicting transactions with unknown
//! read-write sets (0 % → 50 % conflict rate).

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::{ConflictHandling, SystemConfig};

fn main() {
    print_header();
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for conflict_pct in [0u32, 10, 20, 30, 40, 50] {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.conflict_handling = ConflictHandling::UnknownRwSets;
            config.workload.conflict_fraction = f64::from(conflict_pct) / 100.0;
            let mut point =
                PointConfig::new("fig6-conflicts", label, f64::from(conflict_pct), config);
            point.clients = 400;
            run_point(point);
        }
    }
}
