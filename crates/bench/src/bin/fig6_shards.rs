//! Shard-count scaling of the sharded execution subsystem
//! (`sbft-sharding`): committed-transaction throughput as the verifier's
//! commit path is partitioned over 1 → 8 execution shards.
//!
//! Two series are reported:
//!
//! * `SERVBFT-SIM` — the full protocol on the discrete-event simulator.
//!   The CPU model makes storage accesses expensive (an SSD-backed store
//!   rather than the default in-memory cost), so the per-shard `ccheck`
//!   stations are the bottleneck and shard count plays the role cores
//!   play in Figure 6(ix). The workload is conflict-free uniform YCSB.
//! * `RAW-POOL` (opt-in via `--raw-pool`) — the `ShardScheduler` worker
//!   pool executing the same kind of conflict-free batches on real OS
//!   threads, showing the raw (protocol-free) throughput of the sharded
//!   commit engine. Thread scaling only shows on multi-core hosts; on a
//!   single-core machine the series is flat, which is why it is opt-in.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_sharding::{ShardScheduler, ShardedCommitter};
use sbft_sim::CpuModel;
use sbft_storage::VersionedStore;
use sbft_types::{Key, ReadWriteSet, ShardingConfig, SimDuration, SystemConfig, Value, Version};
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn sim_series() {
    for shards in SHARD_COUNTS {
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.num_records = 20_000;
        config.workload.batch_size = 10;
        config.sharding = ShardingConfig::with_shards(shards);
        let mut point = PointConfig::new("fig6-shards", "SERVBFT-SIM", shards as f64, config);
        point.clients = 240;
        point.duration = SimDuration::from_millis(400);
        point.warmup = SimDuration::from_millis(100);
        // Shift the bottleneck onto the commit path: 400 µs per storage
        // access models a persistent store instead of the in-memory
        // default, making the shard stations the saturated resource.
        point.cpu = Some(CpuModel {
            storage_access_cost: SimDuration::from_micros(400),
            ..CpuModel::default()
        });
        run_point(point);
    }
}

fn raw_pool_series() {
    // 100 k transactions of 8 reads + 8 writes each, over disjoint key
    // ranges (conflict-free), pre-generated so the timed section measures
    // only the pool. OCC validation + apply is ~16 store accesses per
    // transaction — enough real work per task for threads to matter.
    const TXNS: u64 = 100_000;
    const OPS: u64 = 8;
    let keys = TXNS * OPS;
    let batches: Vec<Vec<ReadWriteSet>> = (0..TXNS / 100)
        .map(|batch| {
            (0..100)
                .map(|i| {
                    let base = (batch * 100 + i) * OPS;
                    let mut rw = ReadWriteSet::new();
                    for k in base..base + OPS {
                        rw.record_read(Key(k), Version(1));
                        rw.record_write(Key(k), Value::new(batch));
                    }
                    rw
                })
                .collect()
        })
        .collect();
    for shards in SHARD_COUNTS {
        let store = Arc::new(VersionedStore::new());
        store.load((0..keys).map(|i| (Key(i), Value::new(0))));
        let committer = Arc::new(ShardedCommitter::new(
            Arc::clone(&store),
            &ShardingConfig::with_shards(shards),
        ));
        let pool = ShardScheduler::new(Arc::clone(&committer), shards, true);
        let started = Instant::now();
        for (seq, txns) in batches.iter().enumerate() {
            pool.submit(seq as u64, txns.clone());
        }
        pool.drain();
        let elapsed = started.elapsed().as_secs_f64();
        pool.shutdown();
        assert_eq!(committer.committed(), TXNS, "every transaction commits");
        println!(
            "fig6-shards,RAW-POOL,{shards}.0,{:.0},{elapsed:.4},0.0000,0.0000,0.000,0.000",
            TXNS as f64 / elapsed
        );
    }
}

fn main() {
    print_header();
    sim_series();
    if std::env::args().any(|a| a == "--raw-pool") {
        raw_pool_series();
    }
}
