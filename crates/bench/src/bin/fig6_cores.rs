//! Figure 6(ix)-(x): impact of the computing power (cores) available at
//! the shim nodes (edge devices).

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::SystemConfig;

fn main() {
    print_header();
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for cores in [2usize, 4, 8, 12, 16] {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.shim_cores = cores;
            let mut point = PointConfig::new("fig6-cores", label, cores as f64, config);
            point.clients = 400;
            run_point(point);
        }
    }
}
