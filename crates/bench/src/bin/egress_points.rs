//! Leader-egress sweep: client count × cache-hit rate × proposal mode.
//!
//! Every point drives a 4-node PBFT shim synchronously (no simulator
//! clock, no faults) through the same deterministic workload in both
//! proposal modes and counts the bytes the leader puts on the wire,
//! sender-side, from the messages' honest `wire_size` models. The rows
//! come in full/digest pairs with identical workloads, so committed
//! counts are equal by construction and any divergence is a protocol bug.
//!
//! The cache-hit rate models how much of the client broadcast reached the
//! replicas before the digest proposal did: at `hit_permille = 1000`
//! every body is reconstructed locally; lower rates force `BATCHFETCH` /
//! `BATCHFILL` recovery traffic, which is charged against the leader like
//! everything else it sends. Below roughly 12% warm the fills cost more
//! than the digests save — the sweep starts at 250‰ because the digest
//! mode targets the warm-cache regime (clients broadcast to all nodes),
//! and CI asserts digest egress < full egress at every swept point plus
//! the ≥5× reduction at the 100-client warm point.
//!
//! CSV columns: `mode,clients,hit_permille,leader_egress_bytes,committed`.

use sbft_consensus::{OrderingProtocol, PbftReplica};
use sbft_core::{Action, ClientRequest, Destination, ProtocolMessage, ShimNode};
use sbft_crypto::CryptoProvider;
use sbft_types::{
    ClientId, ComponentId, Key, NodeId, Operation, SimTime, SystemConfig, Transaction, TxnId, Value,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// SplitMix64, so the cache-feed decisions replay exactly per point.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn chance(&mut self, permille: u64) -> bool {
        self.next() % 1_000 < permille
    }
}

/// One synchronously driven 4-node cluster with sender-side byte
/// accounting on the leader's node-to-node traffic.
struct Cluster {
    nodes: Vec<ShimNode>,
    provider: Arc<CryptoProvider>,
    leader_egress: u64,
    committed: u64,
}

impl Cluster {
    fn new(clients: u64, digest: bool) -> Self {
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = clients as usize;
        config.digest_proposals = digest;
        let provider = CryptoProvider::new(4 + clients);
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(
                    PbftReplica::new(
                        NodeId(i),
                        config.fault,
                        provider.handle(ComponentId::Node(NodeId(i))),
                        config.timers.node_timeout,
                        config.timers.checkpoint_interval,
                    )
                    .with_digest_proposals(digest),
                );
                ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                )
            })
            .collect();
        Cluster {
            nodes,
            provider,
            leader_egress: 0,
            committed: 0,
        }
    }

    fn request(&self, client: u64, counter: u64) -> ClientRequest {
        let id = ClientId(client as u32);
        let txn = Transaction::new(
            TxnId::new(id, counter),
            vec![Operation::Write(Key(client % 64), Value::new(counter + 1))],
        );
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: self.provider.handle(ComponentId::Client(id)).sign(&digest),
            txn,
        }
    }

    /// Routes node-to-node consensus traffic to quiescence, charging every
    /// copy the leader sends at its honest wire size.
    fn drive(&mut self, origin: usize, actions: Vec<Action>) {
        let n = self.nodes.len();
        let mut queue: VecDeque<(usize, usize, ProtocolMessage)> = VecDeque::new();
        self.absorb(origin, actions, &mut queue, n);
        while let Some((from, to, msg)) = queue.pop_front() {
            let acts = match &msg {
                ProtocolMessage::Consensus(c) => {
                    self.nodes[to].on_consensus_message(NodeId(from as u32), c.clone())
                }
                _ => Vec::new(),
            };
            self.absorb(to, acts, &mut queue, n);
        }
    }

    fn absorb(
        &mut self,
        origin: usize,
        actions: Vec<Action>,
        queue: &mut VecDeque<(usize, usize, ProtocolMessage)>,
        n: usize,
    ) {
        for a in actions {
            match &a {
                Action::Send(env) => {
                    let targets: Vec<usize> = match env.to {
                        Destination::AllNodes => (0..n).filter(|t| *t != origin).collect(),
                        Destination::Node(id) => vec![id.0 as usize],
                        _ => Vec::new(),
                    };
                    if origin == 0 {
                        self.leader_egress += (env.msg.wire_size() * targets.len()) as u64;
                    }
                    for to in targets {
                        queue.push_back((origin, to, env.msg.clone()));
                    }
                }
                Action::BatchCommitted { .. } if origin == 0 => {
                    self.committed += 1;
                }
                _ => {}
            }
        }
    }
}

/// Drives `batches` batches of `clients` transactions through one cluster
/// and returns (leader egress bytes, batches committed at the leader).
fn run_point(clients: u64, hit_permille: u64, digest: bool, batches: u64) -> (u64, u64) {
    let mut cluster = Cluster::new(clients, digest);
    let mut rng = SplitMix64(0x5eed ^ clients ^ (hit_permille << 16));
    for counter in 0..batches {
        for client in 0..clients {
            let req = cluster.request(client, counter);
            if digest {
                // The client broadcast: replicas hear it with the swept
                // probability (the primary always does — it orders).
                for replica in 1..cluster.nodes.len() {
                    if rng.chance(hit_permille) {
                        let fed = cluster.nodes[replica].on_client_request(&req, SimTime::ZERO);
                        cluster.drive(replica, fed);
                    }
                }
            }
            let actions = cluster.nodes[0].on_client_request(&req, SimTime::ZERO);
            cluster.drive(0, actions);
        }
    }
    for node in &cluster.nodes {
        assert!(
            node.pending_reconstructions().is_empty(),
            "every digest proposal must finish reconstructing"
        );
    }
    (cluster.leader_egress, cluster.committed)
}

fn main() {
    println!("mode,clients,hit_permille,leader_egress_bytes,committed");
    // Small batches at mostly-cold caches lose (the 10-client, 250‰ point
    // pays more in fills than the digests save), so the sweep covers the
    // regime the mode targets: body-dominated batches.
    let client_counts = [50u64, 100, 200];
    let hit_rates = [250u64, 500, 750, 1_000];
    let batches = 5;
    for &clients in &client_counts {
        for &hit in &hit_rates {
            let (full_egress, full_committed) = run_point(clients, hit, false, batches);
            let (digest_egress, digest_committed) = run_point(clients, hit, true, batches);
            println!("full,{clients},{hit},{full_egress},{full_committed}");
            println!("digest,{clients},{hit},{digest_egress},{digest_committed}");
            // The pairing invariant CI re-checks from the CSV: identical
            // workloads must commit identically in both modes.
            assert_eq!(full_committed, digest_committed);
            assert_eq!(full_committed, batches);
        }
    }
}
