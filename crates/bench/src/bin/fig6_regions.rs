//! Figure 6(vii)-(viii): spawning 11 executors across 5, 7, 9 and 11
//! regions. Throughput and latency should stay roughly constant because
//! the verifier only waits for the f_E + 1 nearest responses.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::{RegionSet, SystemConfig};

fn main() {
    print_header();
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for regions in [5usize, 7, 9, 11] {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.fault = config.fault.with_executors(11);
            config.regions = RegionSet::first_n(regions);
            let mut point = PointConfig::new("fig6-regions", label, regions as f64, config);
            point.clients = 400;
            run_point(point);
        }
    }
}
