//! Composed-chaos sweep (message loss × partition window × crash count).
//!
//! Every point runs the closed-loop simulator under one composed
//! `FaultPlan`: lossy/duplicating/delaying links and a directed partition
//! window around backup node 3, a disk-lag straggler at node 1, and up to
//! two staggered backup crash-restarts — all deterministic from the run
//! seed. The sweep is aimed at the backup side so the primary and a
//! quorum survive: every row must keep committing with zero divergent
//! state while the `faults.*` counters prove each configured fault family
//! actually fired and the recovery counters prove every scheduled crash
//! came back.
//!
//! CI runs this binary as a smoke test over the full grid and asserts
//! liveness (committed > 0), safety (divergent = 0), drops on every lossy
//! row, partition drops on every `P1` row, and one recovery per
//! scheduled crash.

use sbft_bench::{chaos_points, run_point_silent};

fn main() {
    println!(
        "figure,series,x,committed,divergent,dropped,duplicated,delayed,partition_drops,fsync_lags,recoveries,bad_state_responses,state_request_retries,catch_ups"
    );
    let loss_rates = [0.0, 0.10, 0.20];
    let partition_windows = [false, true];
    let crash_counts = [0usize, 1, 2];
    for point in chaos_points(&loss_rates, &partition_windows, &crash_counts) {
        let result = run_point_silent(point);
        let m = &result.metrics;
        println!(
            "{},{},{:.0},{},{},{},{},{},{},{},{},{},{},{}",
            result.figure,
            result.series,
            result.x,
            m.committed_txns,
            m.divergent_aborts,
            m.messages_dropped,
            m.messages_duplicated,
            m.messages_delayed,
            m.partition_drops,
            m.fsync_lags,
            m.recoveries,
            m.bad_state_responses,
            m.state_request_retries,
            m.catch_ups,
        );
    }
}
