//! Figure 6(v)-(vi): impact of expensive execution.
//!
//! The paper grows per-transaction execution time up to 8 s; the
//! reproduction scales execution time 1:10 (up to 800 ms) and measures a
//! longer virtual window so slow transactions can complete.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_types::{SimDuration, SystemConfig};

fn main() {
    print_header();
    // Scaled 1:10 from the paper's 0, 1, 2, 4, 8 seconds.
    let costs_ms = [0u64, 100, 200, 400, 800];
    for (label, n_r) in [("SERVBFT-8", 8usize), ("SERVBFT-32", 32)] {
        for &cost in &costs_ms {
            let mut config = SystemConfig::with_shim_size(n_r);
            config.workload.execution_cost = SimDuration::from_millis(cost);
            config.workload.batch_size = 50;
            let mut point = PointConfig::new("fig6-exectime", label, cost as f64, config);
            point.clients = 400;
            point.duration = SimDuration::from_millis(4_000);
            point.warmup = SimDuration::from_millis(1_000);
            run_point(point);
        }
    }
}
