//! Plan-aware executor placement sweep (region count × Zipf skew).
//!
//! Each point runs the closed-loop simulator over **geo-partitioned
//! storage** (every execution shard's partition homed in a region) twice:
//! `PINNED` — the invoker consumes the batch's replicated `ShardPlan` tag
//! and pins a `SingleHome` batch's executors to its shard's home region —
//! and `RR`, the paper's Section IX-E round-robin rotation over the same
//! partitioned store. Both series pay executor ⇄ storage inter-region
//! latency; only the placement policy differs, so the gap in
//! `avg_latency_s` is exactly what plan-aware placement buys. With
//! single-op YCSB transactions every ordering-lane batch is single-home,
//! so the pinned series drives `remote_fetch_rate` to zero at every skew
//! and region count while the rotation keeps crossing regions.
//!
//! CI runs this binary as a smoke test and asserts pinned ≤ round-robin
//! mean commit latency on the single-home (`Z0.00`) sweep only — under
//! heavy skew the closed-loop batch-assembly feedback can let the
//! rotation edge out one point (see the ROADMAP's "load-aware pinning
//! under skew" item), which the skewed rows record rather than gate on.
//! The equivalence proptests separately prove outcomes are identical
//! under either placement.

use sbft_bench::{placement_points, run_point_silent};

fn main() {
    println!(
        "figure,series,x,throughput_tps,avg_latency_s,p50_s,p99_s,remote_fetch_rate,pinned_spawns,placement_fallbacks,committed"
    );
    let region_counts = [1usize, 2, 3, 5];
    let thetas = [0.0f64, 0.9];
    for point in placement_points(&region_counts, &thetas) {
        let result = run_point_silent(point);
        println!(
            "{},{},{:.0},{:.0},{:.6},{:.6},{:.6},{:.3},{},{},{}",
            result.figure,
            result.series,
            result.x,
            result.metrics.throughput_tps(),
            result.metrics.avg_latency_secs(),
            result.metrics.latency.p50_secs(),
            result.metrics.latency.p99_secs(),
            result.metrics.remote_fetch_rate(),
            result.metrics.pinned_spawns,
            result.metrics.placement_fallbacks,
            result.metrics.committed_txns,
        );
    }
}
