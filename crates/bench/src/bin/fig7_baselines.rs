//! Figure 7: shim scalability and baseline comparison.
//!
//! ServerlessBFT vs ServerlessCFT (Paxos-style shim), PBFT (edge-only BFT
//! replication, approximated as a single home-region executor with no
//! verifier-bound serverless traffic) and NoShim (no consensus), for shims
//! of 4 → 128 nodes.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_core::system::ShimProtocol;
use sbft_types::{RegionSet, SimDuration, SystemConfig};

fn main() {
    print_header();
    let sizes = [4usize, 8, 16, 32, 64, 128];
    for &n_r in &sizes {
        // ServerlessBFT: PBFT shim + 3 executors + verifier.
        let config = SystemConfig::with_shim_size(n_r);
        let mut point = PointConfig::new("fig7", "SERVERLESSBFT", n_r as f64, config);
        point.clients = 400;
        point.duration = SimDuration::from_millis(300);
        run_point(point);

        // ServerlessCFT: crash-fault-tolerant shim, same serverless flow.
        let config = SystemConfig::with_shim_size(n_r);
        let mut point = PointConfig::new("fig7", "SERVERLESSCFT", n_r as f64, config);
        point.protocol = ShimProtocol::Cft;
        point.clients = 400;
        point.duration = SimDuration::from_millis(300);
        run_point(point);

        // PBFT: classic BFT replication where replicas execute locally.
        let mut config = SystemConfig::with_shim_size(n_r);
        config.fault = config.fault.with_executors(1);
        config.regions = RegionSet::home_only();
        let mut point = PointConfig::new("fig7", "PBFT", n_r as f64, config);
        point.clients = 400;
        point.duration = SimDuration::from_millis(300);
        point.bill_serverless = false;
        run_point(point);

        // NoShim: no consensus at all (constant in the shim size).
        let mut config = SystemConfig::with_shim_size(n_r);
        config.regions = RegionSet::first_n(3);
        let mut point = PointConfig::new("fig7", "NOSHIM", n_r as f64, config);
        point.protocol = ShimProtocol::NoShim;
        point.clients = 400;
        point.duration = SimDuration::from_millis(300);
        run_point(point);
    }
}
