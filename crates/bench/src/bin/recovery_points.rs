//! Crash-restart recovery sweep (snapshot interval × fault scenario).
//!
//! Each snapshot interval runs the closed-loop simulator with durability
//! on (WAL + featherweight snapshots) three ways: `BASELINE` (no fault),
//! `CRASH-BACKUP` (a backup replica goes dark at 150 ms and restarts
//! 60 ms later, recovering via snapshot + WAL replay + peer state
//! transfer) and `CRASH-PRIMARY` (the view-zero primary crashes, so
//! recovery overlaps the view change that replaces it). The crashed
//! series must stay live — committed transactions keep flowing while one
//! replica is dark and after it rejoins — and the recovery columns
//! (`replay_batches`, `state_transfer_batches`, `recoveries`) prove the
//! recovery path actually executed rather than the run merely surviving
//! on the remaining quorum.
//!
//! CI runs this binary as a smoke test: it asserts every row commits,
//! every crashed row records exactly one recovery, and the WAL/snapshot
//! counters are non-zero where durability makes them so.

use sbft_bench::{recovery_points, run_point_silent};

fn main() {
    println!(
        "figure,series,x,throughput_tps,avg_latency_s,p99_s,committed,wal_appends,snapshot_bytes,replay_batches,state_transfer_batches,recoveries"
    );
    let snapshot_intervals = [4u64, 32, 1_000];
    for point in recovery_points(&snapshot_intervals) {
        let result = run_point_silent(point);
        println!(
            "{},{},{:.0},{:.0},{:.6},{:.6},{},{},{},{},{},{}",
            result.figure,
            result.series,
            result.x,
            result.metrics.throughput_tps(),
            result.metrics.avg_latency_secs(),
            result.metrics.latency.p99_secs(),
            result.metrics.committed_txns,
            result.metrics.wal_appends,
            result.metrics.snapshot_bytes,
            result.metrics.replay_batches,
            result.metrics.state_transfer_batches,
            result.metrics.recoveries,
        );
    }
}
