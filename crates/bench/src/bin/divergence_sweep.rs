//! Divergence-rate sweep (Section VI-B byzantine-abort detection).
//!
//! Sweeps the whole-batch divergence-abort rate against the record count
//! (contention), the executor spread (regions executors land in), and the
//! number of independently corrupted executors per batch, in the
//! `UnknownRwSets` conflict-handling mode (which spawns `3f_E + 1 = 4`
//! executors per batch).
//!
//! Observed regimes (also asserted by the experiment tests):
//!
//! * **Honest runs** (`BYZ-0`): executors of one batch read interleaved
//!   storage states, which surfaces as *per-transaction* stale aborts at
//!   the verifier, but an `f_E + 1` digest quorum still forms — the
//!   whole-batch divergence rate stays at zero across record counts and
//!   regional spreads.
//! * **`f_E + 1` corrupted** (`BYZ-2` of 4 spawned): two honest
//!   executors still agree, so batches keep committing — the
//!   over-spawning of the unknown-rw-set mode buys real resilience.
//! * **Beyond the spawn margin** (`BYZ-3` of 4): no two digests match
//!   (independent corruptions do not collude), and *every* batch aborts
//!   through the divergence rule — safety holds, liveness is the cost.
//!
//! Companion telemetry: `RunMetrics::divergent_aborts` (landed in PR 2).

use sbft_bench::{divergence_points, run_point_silent};
use sbft_serverless::cloud::CloudFaultPlan;
use sbft_serverless::ExecutorBehavior;

fn main() {
    println!("figure,series,x,throughput_tps,abort_rate,divergent_aborts,committed");
    let records = [200u64, 1_000, 5_000, 20_000];
    // Honest series: divergence vs record count × regional executor spread.
    let mut points = divergence_points(&records, &[1, 3, 7]);
    // Byzantine series at spread 3: within and beyond the f_E margin.
    for byz in [2usize, 3] {
        let mut byz_points = divergence_points(&records, &[3]);
        for point in &mut byz_points {
            point.series = format!("BYZ-{byz}");
            point.cloud_faults = CloudFaultPlan {
                byzantine_per_batch: byz,
                behavior: ExecutorBehavior::WrongResult,
            };
        }
        points.extend(byz_points);
    }
    for point in points {
        let result = run_point_silent(point);
        println!(
            "{},{},{:.0},{:.0},{:.3},{},{}",
            result.figure,
            result.series,
            result.x,
            result.metrics.throughput_tps(),
            result.metrics.abort_rate(),
            result.metrics.divergent_aborts,
            result.metrics.committed_txns,
        );
    }
}
