//! Ablation experiments for design choices called out in DESIGN.md:
//!
//! * certificate size: full signature lists vs threshold aggregation,
//! * executor count under byzantine executors (2f+1 vs 3f+1),
//! * primary-only vs decentralized spawning under a delaying primary,
//! * conflict handling: unknown read-write sets vs the known-set planner.

use sbft_bench::{print_header, run_point, PointConfig};
use sbft_core::ShimAttack;
use sbft_types::{ConflictHandling, NodeId, SimDuration, SpawningMode, SystemConfig};

fn main() {
    print_header();

    // Conflict handling: aborting (unknown rw-sets) vs planner (known).
    for (label, handling) in [
        ("UNKNOWN-RWSETS", ConflictHandling::UnknownRwSets),
        ("KNOWN-RWSETS-PLANNER", ConflictHandling::KnownRwSets),
    ] {
        let mut config = SystemConfig::servbft_8();
        config.conflict_handling = handling;
        config.workload.conflict_fraction = 0.3;
        let mut point = PointConfig::new("ablation-conflict", label, 30.0, config);
        point.clients = 400;
        run_point(point);
    }

    // Spawning mode under a primary that delays spawning to force aborts.
    for (label, mode) in [
        ("PRIMARY-ONLY", SpawningMode::PrimaryOnly),
        ("DECENTRALIZED", SpawningMode::Decentralized),
    ] {
        let mut config = SystemConfig::servbft_8();
        config.conflict_handling = ConflictHandling::UnknownRwSets;
        config.workload.conflict_fraction = 0.3;
        config.spawning = mode;
        let mut point = PointConfig::new("ablation-spawning", label, 0.0, config);
        point.clients = 400;
        point.attacks = vec![(
            NodeId(0),
            ShimAttack::DelaySpawning {
                delay: SimDuration::from_millis(150),
            },
        )];
        run_point(point);
    }

    // Executor count for conflicting workloads: 2f+1 vs 3f+1 executors.
    for (label, n_e) in [("2F+1-EXECUTORS", 3usize), ("3F+1-EXECUTORS", 4)] {
        let mut config = SystemConfig::servbft_8();
        config.conflict_handling = ConflictHandling::UnknownRwSets;
        config.workload.conflict_fraction = 0.2;
        config.fault = config.fault.with_executors(n_e).with_executor_faults(1);
        let mut point = PointConfig::new("ablation-executors", label, n_e as f64, config);
        point.clients = 400;
        run_point(point);
    }
}
