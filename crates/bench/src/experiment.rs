//! Shared experiment plumbing for the figure-regeneration binaries.
//!
//! The paper runs every experiment for 180 s on OCI machines with up to
//! 88 k clients. The reproduction runs on a virtual-time simulator, so each
//! data point uses a scaled-down but *shape-preserving* setup: a few
//! hundred milliseconds of simulated time and a client population scaled by
//! roughly 1:100 (the scaling is recorded in `EXPERIMENTS.md`). Relative
//! comparisons — who wins, by how much, where curves bend — are what the
//! binaries report.

use sbft_core::system::ShimProtocol;
use sbft_core::{ShimAttack, SystemBuilder};
use sbft_serverless::cloud::CloudFaultPlan;
use sbft_serverless::{CostModel, CrashRestart};
use sbft_sim::{
    CpuModel, DiskLag, FaultPlan, LinkFaults, NetworkModel, RunMetrics, SimHarness, SimParams,
};
use sbft_types::{NodeId, SimDuration, SystemConfig};

/// One data point of an experiment.
#[derive(Clone, Debug)]
pub struct PointConfig {
    /// Figure identifier ("fig5", "fig6i", …), used in the output rows.
    pub figure: &'static str,
    /// Series label (e.g. "SERVBFT-8", "PBFT", "NOSHIM").
    pub series: String,
    /// The swept x value (number of clients, executors, batch size, …).
    pub x: f64,
    /// System configuration for this point.
    pub config: SystemConfig,
    /// Shim protocol for this point.
    pub protocol: ShimProtocol,
    /// Number of active closed-loop clients.
    pub clients: usize,
    /// Measured window of simulated time.
    pub duration: SimDuration,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Attacks injected at shim nodes.
    pub attacks: Vec<(NodeId, ShimAttack)>,
    /// Byzantine executors per batch at the cloud.
    pub cloud_faults: CloudFaultPlan,
    /// Workload seed.
    pub seed: u64,
    /// `Some(k)`: all execution happens on the edge with `k` execution
    /// threads (the Figure 8 `PBFT-k-ET` baselines); `None`: serverless.
    pub edge_execution_threads: Option<usize>,
    /// Whether serverless invocations are billed (off for edge-only runs).
    pub bill_serverless: bool,
    /// Overrides the simulator's CPU cost model (`None`: defaults). Used
    /// by experiments that shift the bottleneck, e.g. `fig6_shards` makes
    /// storage accesses expensive so the sharded commit path dominates.
    pub cpu: Option<CpuModel>,
    /// When set, keys are drawn Zipfian with this exponent (the skew
    /// axis of the `planner_points` sweep).
    pub zipf_theta: Option<f64>,
    /// When set, one shim node crashes and restarts mid-run (the
    /// `recovery_points` sweep's fault axis).
    pub crash: Option<CrashRestart>,
    /// When set, the composed fault plan (link loss/duplication/delay,
    /// directed partitions, disk-lag stragglers, multi-node crashes)
    /// applied to the run — the `chaos_points` sweep's fault axis.
    pub fault_plan: Option<FaultPlan>,
}

impl PointConfig {
    /// A point with sensible defaults for the given figure/series/x.
    #[must_use]
    pub fn new(
        figure: &'static str,
        series: impl Into<String>,
        x: f64,
        config: SystemConfig,
    ) -> Self {
        PointConfig {
            figure,
            series: series.into(),
            x,
            config,
            protocol: ShimProtocol::Pbft,
            clients: 400,
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(150),
            attacks: Vec::new(),
            cloud_faults: CloudFaultPlan::default(),
            seed: 42,
            edge_execution_threads: None,
            bill_serverless: true,
            cpu: None,
            zipf_theta: None,
            crash: None,
            fault_plan: None,
        }
    }
}

/// The measured result of one data point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point that was run.
    pub figure: &'static str,
    /// Series label.
    pub series: String,
    /// The swept x value.
    pub x: f64,
    /// Raw metrics from the simulator.
    pub metrics: RunMetrics,
    /// Cost in cents per kilo-transaction (Figure 8 metric).
    pub cents_per_ktxn: f64,
}

impl PointResult {
    /// Formats the result as one CSV row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{},{},{:.1},{:.0},{:.4},{:.4},{:.4},{:.3},{:.3}",
            self.figure,
            self.series,
            self.x,
            self.metrics.throughput_tps(),
            self.metrics.avg_latency_secs(),
            self.metrics.latency.p50_secs(),
            self.metrics.latency.p99_secs(),
            self.metrics.abort_rate(),
            self.cents_per_ktxn,
        )
    }
}

/// Prints the CSV header used by every figure binary.
pub fn print_header() {
    println!("figure,series,x,throughput_tps,avg_latency_s,p50_s,p99_s,abort_rate,cents_per_ktxn");
}

/// Runs one data point and prints its CSV row.
pub fn run_point(point: PointConfig) -> PointResult {
    let result = run_point_silent(point);
    println!("{}", result.row());
    result
}

/// Runs one data point on the simulator without printing.
pub fn run_point_silent(point: PointConfig) -> PointResult {
    run_point_with_sink(point, None)
}

/// Runs one data point with batch lifecycle tracing into `sink`
/// (the `trace_report` binary's entry point).
pub fn run_point_traced(
    point: PointConfig,
    sink: std::sync::Arc<dyn sbft_telemetry::TraceSink>,
) -> PointResult {
    run_point_with_sink(point, Some(sink))
}

fn run_point_with_sink(
    point: PointConfig,
    sink: Option<std::sync::Arc<dyn sbft_telemetry::TraceSink>>,
) -> PointResult {
    let clients = point.clients.max(1);
    let mut config = point.config.clone();
    config.workload.num_clients = clients;

    let mut builder = SystemBuilder::new(config.clone())
        .protocol(point.protocol)
        .clients(clients)
        .cloud_faults(point.cloud_faults)
        .seed(point.seed);
    for (node, attack) in &point.attacks {
        builder = builder.attack(*node, attack.clone());
    }
    let system = builder.build();

    let params = SimParams {
        duration: point.duration,
        warmup: point.warmup,
        num_clients: clients,
        seed: point.seed,
        edge_execution_threads: point.edge_execution_threads,
        zipf_theta: point.zipf_theta,
        crash: point.crash,
        ..SimParams::default()
    };
    let mut harness = SimHarness::with_models(
        system,
        params,
        NetworkModel::default(),
        point.cpu.unwrap_or_default(),
    );
    if let Some(sink) = sink {
        harness = harness.with_tracer(sink);
    }
    if let Some(plan) = point.fault_plan.clone() {
        harness = harness.with_fault_plan(plan);
    }
    let metrics = harness.run();

    // Cost accounting: the shim nodes + verifier machines run for the whole
    // wall-clock window; executors are billed per invocation.
    let machines = match point.protocol {
        ShimProtocol::NoShim => 2,
        _ => config.fault.n_r + 1,
    };
    let mut report = metrics.cost_report(&CostModel::default(), machines, config.shim_cores, 16.0);
    if !point.bill_serverless {
        report.serverless_dollars = 0.0;
    }
    PointResult {
        figure: point.figure,
        series: point.series,
        x: point.x,
        cents_per_ktxn: report.cents_per_ktxn(),
        metrics,
    }
}

/// Builds the commit-path throughput experiment: a saturated default PBFT
/// deployment swept over batch sizes, isolating the per-batch hot path the
/// zero-copy refactor targets (batch hand-off through consensus, spawn,
/// execution and the verifier's sharded `ccheck`). One figure row per
/// batch size; the headline number is committed TPS.
#[must_use]
pub fn commit_path_points(batch_sizes: &[usize]) -> Vec<PointConfig> {
    batch_sizes
        .iter()
        .map(|&batch_size| {
            let mut config = SystemConfig::with_shim_size(4);
            config.workload.num_records = 10_000;
            config.workload.batch_size = batch_size;
            let mut point = PointConfig::new(
                "hotpath",
                format!("BATCH-{batch_size}"),
                batch_size as f64,
                config,
            );
            point.clients = 600;
            point.duration = SimDuration::from_millis(400);
            point.warmup = SimDuration::from_millis(100);
            point
        })
        .collect()
}

/// Builds the divergence-rate sweep (ROADMAP open item from PR 1): how
/// often whole batches abort under the Section VI-B divergence rule as a
/// function of the record count (contention: fewer records means
/// executors of one batch are more likely to straddle a storage update)
/// and the executor spread (regions executors are spawned into: wider
/// spread means wider arrival jitter, so executors of one batch observe
/// more different storage states). Conflict handling is `UnknownRwSets`
/// — the mode whose abort-detection path the sweep exercises.
#[must_use]
pub fn divergence_points(record_counts: &[u64], spreads: &[usize]) -> Vec<PointConfig> {
    let mut points = Vec::new();
    for &spread in spreads {
        for &records in record_counts {
            let mut config = SystemConfig::with_shim_size(4);
            config.conflict_handling = sbft_types::ConflictHandling::UnknownRwSets;
            config.workload.num_records = records;
            config.workload.conflict_fraction = 0.5;
            config.workload.batch_size = 20;
            config.regions = if spread <= 1 {
                sbft_types::RegionSet::home_only()
            } else {
                sbft_types::RegionSet::first_n(spread)
            };
            let mut point = PointConfig::new(
                "divergence",
                format!("SPREAD-{spread}"),
                records as f64,
                config,
            );
            point.clients = 300;
            point.duration = SimDuration::from_millis(400);
            point.warmup = SimDuration::from_millis(100);
            points.push(point);
        }
    }
    points
}

/// Builds the ordering-time shard-planner sweep: Zipfian skew × shard
/// count, each point run twice — with the planner's per-shard ordering
/// lanes (`PLANNED`) and with the PR 3 baseline where batches are routed
/// only at apply time (`UNPLANNED`). Conflict handling is `KnownRwSets`
/// (the planner needs declared read-write sets). The headline metric is
/// the cross-shard-fallback rate: the fraction of validated batches
/// whose footprint spanned shards, which the lanes drive to (near) zero
/// for single-home workloads.
#[must_use]
pub fn planner_points(shard_counts: &[usize], zipf_thetas: &[f64]) -> Vec<PointConfig> {
    let mut points = Vec::new();
    for &theta in zipf_thetas {
        for &shards in shard_counts {
            for planned in [true, false] {
                let mut config = SystemConfig::with_shim_size(4);
                config.conflict_handling = sbft_types::ConflictHandling::KnownRwSets;
                config.workload.num_records = 10_000;
                config.workload.batch_size = 50;
                config.sharding = sbft_types::ShardingConfig::with_shards(shards);
                config.sharding.ordering_lanes = planned;
                let series = format!(
                    "{}-Z{:.2}",
                    if planned { "PLANNED" } else { "UNPLANNED" },
                    theta
                );
                let mut point = PointConfig::new("planner", series, shards as f64, config);
                point.clients = 300;
                point.duration = SimDuration::from_millis(400);
                point.warmup = SimDuration::from_millis(100);
                point.zipf_theta = (theta > 0.0).then_some(theta);
                points.push(point);
            }
        }
    }
    points
}

/// Builds the plan-aware placement sweep: region count × Zipf skew over
/// geo-partitioned storage, each point run twice — `PINNED` (the invoker
/// pins a `SingleHome` batch's executors to its shard's home region) and
/// `RR` (the paper's round-robin rotation over the same geo-partitioned
/// store, so both series pay executor ⇄ storage latency and only the
/// placement differs). Conflict handling is `KnownRwSets` with single-op
/// transactions, so every batch released by the ordering lanes is
/// single-home and eligible for pinning. The headline metric is mean
/// commit latency: pinning turns every storage fetch local, so it must
/// never lose to the rotation — while the equivalence proptests prove the
/// outcomes themselves are identical either way.
#[must_use]
pub fn placement_points(region_counts: &[usize], zipf_thetas: &[f64]) -> Vec<PointConfig> {
    let mut points = Vec::new();
    for &theta in zipf_thetas {
        for &regions in region_counts {
            for pinned in [true, false] {
                let mut config = SystemConfig::with_shim_size(4);
                config.conflict_handling = sbft_types::ConflictHandling::KnownRwSets;
                config.workload.num_records = 10_000;
                config.workload.batch_size = 50;
                config.regions = sbft_types::RegionSet::first_n(regions);
                config.sharding = sbft_types::ShardingConfig::with_shards(8)
                    .with_geo_partitioning()
                    .with_pinned_placement(pinned);
                let series = format!("{}-Z{:.2}", if pinned { "PINNED" } else { "RR" }, theta);
                let mut point = PointConfig::new("placement", series, regions as f64, config);
                point.clients = 300;
                point.duration = SimDuration::from_millis(400);
                point.warmup = SimDuration::from_millis(100);
                point.zipf_theta = (theta > 0.0).then_some(theta);
                points.push(point);
            }
        }
    }
    points
}

/// Builds the crash-restart sweep: durable runs (WAL + featherweight
/// snapshots) at each snapshot interval, each run three ways —
/// `BASELINE` (no fault), `CRASH-BACKUP` (a backup replica goes dark
/// mid-run and recovers via snapshot + WAL replay + peer state
/// transfer) and `CRASH-PRIMARY` (the view-zero primary crashes, so
/// recovery overlaps a view change). Liveness must hold everywhere; the
/// crashed series show how gracefully throughput degrades while the
/// recovery counters (`replay_batches`, `state_transfer_batches`,
/// `recoveries`) prove the recovery path actually ran.
#[must_use]
pub fn recovery_points(snapshot_intervals: &[u64]) -> Vec<PointConfig> {
    let mut points = Vec::new();
    for &interval in snapshot_intervals {
        for (series, crash) in [
            ("BASELINE", None),
            (
                "CRASH-BACKUP",
                Some(CrashRestart::of(
                    NodeId(2),
                    SimDuration::from_millis(150),
                    SimDuration::from_millis(60),
                )),
            ),
            (
                "CRASH-PRIMARY",
                Some(CrashRestart::of(
                    NodeId(0),
                    SimDuration::from_millis(150),
                    SimDuration::from_millis(60),
                )),
            ),
        ] {
            let mut config = SystemConfig::with_shim_size(4);
            config.workload.num_records = 10_000;
            config.workload.batch_size = 20;
            config.durability =
                sbft_types::DurabilityConfig::enabled().with_snapshot_interval(interval);
            // Short protocol timers so a crashed primary is replaced
            // well inside the measured window.
            config.timers.client_timeout = SimDuration::from_millis(60);
            config.timers.node_timeout = SimDuration::from_millis(40);
            config.timers.retransmit_timeout = SimDuration::from_millis(40);
            let mut point = PointConfig::new("recovery", series, interval as f64, config);
            point.clients = 200;
            point.duration = SimDuration::from_millis(600);
            point.warmup = SimDuration::from_millis(100);
            point.seed = 3;
            point.crash = crash;
            points.push(point);
        }
    }
    points
}

/// Builds the chaos sweep: message-loss rate × partition window × number
/// of concurrent crash-restarts, composed into one `FaultPlan` per point.
/// Hostility is aimed at the *backup* side of the shim — lossy links and
/// the partition around node 3, crashes of nodes 2 and 3, a disk-lag
/// straggler at node 1 — so every point must stay live (the primary and a
/// quorum survive) while the recovery machinery absorbs the abuse. The
/// smoke assertions are on the fault and recovery counters: drops happen
/// where loss is configured, the partition window actually drops traffic,
/// every scheduled crash recovers, and committed work never diverges.
#[must_use]
pub fn chaos_points(
    loss_rates: &[f64],
    partition_windows: &[bool],
    crash_counts: &[usize],
) -> Vec<PointConfig> {
    let mut points = Vec::new();
    for &partition in partition_windows {
        for &crashes in crash_counts {
            for &loss in loss_rates {
                let mut plan = FaultPlan::new().disk_lag(DiskLag {
                    node: NodeId(1),
                    extra: SimDuration::from_micros(200),
                    jitter: SimDuration::from_micros(100),
                });
                if loss > 0.0 {
                    plan = plan.lossy_node(
                        NodeId(3),
                        LinkFaults::lossy(loss)
                            .with_duplicate(0.05)
                            .with_delay(0.1, SimDuration::from_micros(300)),
                    );
                }
                if partition {
                    plan = plan.isolate(
                        NodeId(3),
                        SimDuration::from_millis(100),
                        SimDuration::from_millis(140),
                    );
                }
                // Backups only: the primary stays up so every point keeps
                // committing while the crashed replicas are dark.
                let schedule = [
                    CrashRestart::of(
                        NodeId(2),
                        SimDuration::from_millis(150),
                        SimDuration::from_millis(60),
                    ),
                    CrashRestart::of(
                        NodeId(3),
                        SimDuration::from_millis(170),
                        SimDuration::from_millis(60),
                    ),
                ];
                for crash in schedule.iter().take(crashes) {
                    plan = plan.crash(*crash);
                }
                let mut config = SystemConfig::with_shim_size(4);
                config.workload.num_records = 10_000;
                config.workload.batch_size = 20;
                config.durability = sbft_types::DurabilityConfig::enabled();
                config.timers.client_timeout = SimDuration::from_millis(60);
                config.timers.node_timeout = SimDuration::from_millis(40);
                config.timers.retransmit_timeout = SimDuration::from_millis(40);
                let series = format!("P{}-C{}", u8::from(partition), crashes);
                let mut point = PointConfig::new("chaos", series, (loss * 100.0).round(), config);
                point.clients = 200;
                point.duration = SimDuration::from_millis(600);
                point.warmup = SimDuration::from_millis(100);
                point.seed = 3;
                point.fault_plan = Some(plan);
                points.push(point);
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_path_experiment_commits_at_every_batch_size() {
        for point in commit_path_points(&[10, 100]) {
            let mut point = point;
            point.clients = 60;
            point.duration = SimDuration::from_millis(200);
            point.warmup = SimDuration::from_millis(50);
            let result = run_point_silent(point);
            assert!(
                result.metrics.throughput_tps() > 0.0,
                "batch size {} must commit",
                result.x
            );
            assert_eq!(result.metrics.divergent_aborts, 0);
        }
    }

    #[test]
    fn divergence_sweep_exhibits_the_three_regimes() {
        let scale_down = |mut point: PointConfig| {
            point.clients = 60;
            point.duration = SimDuration::from_millis(200);
            point.warmup = SimDuration::from_millis(50);
            point
        };
        // Honest executors: per-txn stale aborts possible, whole-batch
        // divergence absent.
        let honest = run_point_silent(scale_down(
            divergence_points(&[1_000], &[3]).pop().expect("one point"),
        ));
        assert!(honest.metrics.committed_txns > 0);
        assert_eq!(honest.metrics.divergent_aborts, 0);
        // f_E + 1 independently corrupted executors of the 3f_E + 1
        // spawned: the two honest survivors still form a quorum.
        let mut tolerated = scale_down(divergence_points(&[1_000], &[3]).pop().expect("one"));
        tolerated.cloud_faults = sbft_serverless::cloud::CloudFaultPlan {
            byzantine_per_batch: 2,
            behavior: sbft_serverless::ExecutorBehavior::WrongResult,
        };
        let tolerated = run_point_silent(tolerated);
        assert!(tolerated.metrics.committed_txns > 0);
        assert_eq!(tolerated.metrics.divergent_aborts, 0);
        // Beyond the margin: no two digests match, every batch aborts
        // through the Section VI-B divergence rule.
        let mut beyond = scale_down(divergence_points(&[1_000], &[3]).pop().expect("one"));
        beyond.cloud_faults = sbft_serverless::cloud::CloudFaultPlan {
            byzantine_per_batch: 3,
            behavior: sbft_serverless::ExecutorBehavior::WrongResult,
        };
        let beyond = run_point_silent(beyond);
        assert_eq!(beyond.metrics.committed_txns, 0);
        assert!(
            beyond.metrics.divergent_aborts > 0,
            "beyond-f_E corruption must trip the divergence rule"
        );
    }

    #[test]
    fn planner_lanes_cut_the_cross_shard_fallback_rate() {
        // Uniform single-op workload over 8 shards: without ordering
        // lanes nearly every 50-txn batch spans shards; with lanes every
        // released home-lane batch is single-home by construction.
        let scale_down = |mut point: PointConfig| {
            point.clients = 80;
            point.duration = SimDuration::from_millis(250);
            point.warmup = SimDuration::from_millis(50);
            point
        };
        let points = planner_points(&[8], &[0.0]);
        let planned = run_point_silent(scale_down(
            points
                .iter()
                .find(|p| p.series.starts_with("PLANNED"))
                .cloned()
                .expect("planned point"),
        ));
        let unplanned = run_point_silent(scale_down(
            points
                .iter()
                .find(|p| p.series.starts_with("UNPLANNED"))
                .cloned()
                .expect("unplanned point"),
        ));
        assert!(planned.metrics.committed_txns > 0);
        assert!(unplanned.metrics.committed_txns > 0);
        assert!(planned.metrics.validated_batches > 0);
        assert!(
            planned.metrics.planned_batches > 0,
            "lanes must produce verified single-home batches"
        );
        assert_eq!(
            planned.metrics.plan_mismatches, 0,
            "an honest primary's tags always verify"
        );
        assert_eq!(
            unplanned.metrics.planned_batches, 0,
            "the baseline never tags"
        );
        assert!(
            planned.metrics.cross_shard_fallback_rate()
                < unplanned.metrics.cross_shard_fallback_rate(),
            "lanes must cut the fallback rate ({} vs {})",
            planned.metrics.cross_shard_fallback_rate(),
            unplanned.metrics.cross_shard_fallback_rate(),
        );
    }

    #[test]
    fn pinned_placement_beats_round_robin_on_single_home_workloads() {
        // The acceptance gate of the geo tentpole, scaled down: over 3
        // regions, pinning must commit with a lower (or equal) mean
        // latency than the rotation, with every batch pinned and no
        // remote fetch left, while the baseline keeps crossing regions.
        let scale_down = |mut point: PointConfig| {
            point.clients = 80;
            point.duration = SimDuration::from_millis(250);
            point.warmup = SimDuration::from_millis(50);
            point
        };
        let points = placement_points(&[3], &[0.0]);
        let pinned = run_point_silent(scale_down(
            points
                .iter()
                .find(|p| p.series.starts_with("PINNED"))
                .cloned()
                .expect("pinned point"),
        ));
        let rr = run_point_silent(scale_down(
            points
                .iter()
                .find(|p| p.series.starts_with("RR"))
                .cloned()
                .expect("round-robin point"),
        ));
        assert!(pinned.metrics.committed_txns > 0);
        assert!(rr.metrics.committed_txns > 0);
        assert!(
            pinned.metrics.pinned_spawns > 0,
            "single-home batches must pin"
        );
        assert_eq!(rr.metrics.pinned_spawns, 0, "the baseline never pins");
        assert_eq!(
            pinned.metrics.placement_fallbacks, 0,
            "no outage, no capacity limit — nothing to fall back from"
        );
        assert!(
            pinned.metrics.remote_fetch_rate() < rr.metrics.remote_fetch_rate(),
            "pinning must cut cross-region fetches ({} vs {})",
            pinned.metrics.remote_fetch_rate(),
            rr.metrics.remote_fetch_rate()
        );
        assert!(
            pinned.metrics.avg_latency_secs() <= rr.metrics.avg_latency_secs(),
            "pinned mean commit latency must not lose to round-robin ({} vs {})",
            pinned.metrics.avg_latency_secs(),
            rr.metrics.avg_latency_secs()
        );
    }

    #[test]
    fn most_hostile_chaos_point_stays_live_and_safe() {
        // The worst corner of the sweep: 20% loss on node 3's links, a
        // partition window around it, and both backup crashes — commits
        // must keep flowing, nothing may diverge, and every configured
        // fault family must actually fire.
        let mut point = chaos_points(&[0.20], &[true], &[2])
            .pop()
            .expect("one point");
        point.clients = 80;
        let result = run_point_silent(point);
        let m = &result.metrics;
        assert!(m.committed_txns > 0, "chaos must not stop the shim");
        assert_eq!(m.divergent_aborts, 0);
        assert_eq!(m.recoveries, 2, "both crashed backups must recover");
        assert!(m.messages_dropped > 0);
        assert!(m.partition_drops > 0);
        assert!(m.fsync_lags > 0);
    }

    #[test]
    fn run_point_produces_nonzero_throughput() {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.workload.num_records = 2_000;
        cfg.workload.batch_size = 10;
        let mut point = PointConfig::new("figX", "TEST", 1.0, cfg);
        point.clients = 40;
        point.duration = SimDuration::from_millis(200);
        point.warmup = SimDuration::from_millis(50);
        let result = run_point(point);
        assert!(result.metrics.throughput_tps() > 0.0);
        let row = result.row();
        assert!(row.starts_with("figX,TEST,1.0,"));
        assert_eq!(row.split(',').count(), 9);
    }
}
