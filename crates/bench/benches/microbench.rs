//! Criterion micro-benchmarks for the hot paths of the architecture:
//! hashing, signatures, certificate verification, PBFT message processing
//! and the storage engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sbft_consensus::messages::{batch_digest, compute_batch_digest};
use sbft_consensus::{ConsensusAction, OrderingProtocol, PbftReplica};
use sbft_core::ClientRequest;
use sbft_crypto::{CryptoProvider, HmacKey, Sha256, SimSigner};
use sbft_storage::{VersionedStore, YcsbTable};
use sbft_types::{
    Batch, ClientId, ComponentId, FaultParams, Key, NodeId, Operation, SimDuration, Transaction,
    TxnId, Value,
};

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    c.bench_function("sha256_4kib", |b| {
        b.iter(|| Sha256::digest(std::hint::black_box(&data)))
    });
}

/// SHA-256 bulk throughput across input sizes (ns/iter ÷ size = ns/byte):
/// the aligned-block fast path dominates the larger inputs.
fn bench_sha256_throughput(c: &mut Criterion) {
    for (name, size) in [
        ("sha256_throughput_64b", 64usize),
        ("sha256_throughput_1kib", 1 << 10),
        ("sha256_throughput_64kib", 64 << 10),
    ] {
        let data = vec![0x5au8; size];
        c.bench_function(name, |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
}

/// The client-request digest with and without the transaction-carried
/// memo: the cached path is what every component after the client pays.
fn bench_digest_memoization(c: &mut Criterion) {
    let txn = Transaction::new(
        TxnId::new(ClientId(3), 9),
        (0..8u64)
            .map(|k| Operation::ReadModifyWrite(Key(k), 7))
            .collect(),
    );
    c.bench_function("signing_digest_fresh", |b| {
        b.iter(|| ClientRequest::compute_signing_digest(std::hint::black_box(&txn)))
    });
    let warm = txn.clone();
    let _ = ClientRequest::signing_digest(&warm); // fill the cache once
    c.bench_function("signing_digest_cached", |b| {
        b.iter(|| ClientRequest::signing_digest(std::hint::black_box(&warm)))
    });
    let batch = make_batch(100);
    c.bench_function("batch_digest_fresh_100_txns", |b| {
        b.iter(|| compute_batch_digest(std::hint::black_box(&batch)))
    });
    let _ = batch_digest(&batch); // fill the memo
    c.bench_function("batch_digest_cached_100_txns", |b| {
        b.iter(|| batch_digest(std::hint::black_box(&batch)))
    });
}

/// Batch hand-off: an Arc refcount bump versus the deep transaction-vector
/// clone every hop used to pay before the zero-copy refactor.
fn bench_batch_handoff(c: &mut Criterion) {
    let batch = make_batch(100);
    c.bench_function("batch_handoff_arc_clone_100_txns", |b| {
        b.iter(|| std::hint::black_box(&batch).clone())
    });
    c.bench_function("batch_handoff_deep_clone_100_txns", |b| {
        b.iter(|| std::hint::black_box(&batch).txns().to_vec())
    });
}

/// HMAC with a precomputed key schedule (what `SimSigner` uses) versus
/// deriving the schedule per message.
fn bench_hmac_reuse(c: &mut Criterion) {
    let digest = Sha256::digest(b"hot-path message");
    let key_bytes = [0x42u8; 32];
    c.bench_function("hmac_fresh_key", |b| {
        b.iter(|| HmacKey::new(&key_bytes).mac(std::hint::black_box(digest.as_bytes())))
    });
    let key = HmacKey::new(&key_bytes);
    c.bench_function("hmac_reused_key", |b| {
        b.iter(|| key.mac(std::hint::black_box(digest.as_bytes())))
    });
}

/// The `CryptoHandle` key-schedule cache: signing through the handle
/// (schedule derived once per identity) versus the fresh per-call
/// derivation `SimSigner::sign` pays, and the cached pairwise-MAC path
/// versus the one-shot keyed HMAC.
fn bench_handle_schedule_cache(c: &mut Criterion) {
    let provider = CryptoProvider::new(9);
    let node = ComponentId::Node(NodeId(0));
    let peer = ComponentId::Node(NodeId(1));
    let handle = provider.handle(node);
    let kp = provider.key_store().keypair_for(node);
    let digest = Sha256::digest(b"schedule cache message");
    let _ = handle.sign(&digest); // warm the handle's schedule
    let _ = handle.mac_for(peer, &digest); // warm the peer channel
    c.bench_function("handle_sign_fresh_schedule", |b| {
        b.iter(|| SimSigner::sign(std::hint::black_box(&kp), std::hint::black_box(&digest)))
    });
    c.bench_function("handle_sign_cached_schedule", |b| {
        b.iter(|| handle.sign(std::hint::black_box(&digest)))
    });
    let raw_key = provider.key_store().mac_key(node, peer);
    c.bench_function("handle_mac_fresh_schedule", |b| {
        b.iter(|| sbft_crypto::hmac_sha256(&raw_key, std::hint::black_box(digest.as_bytes())))
    });
    c.bench_function("handle_mac_cached_schedule", |b| {
        b.iter(|| handle.mac_for(peer, std::hint::black_box(&digest)))
    });
}

/// Client-signature checking for one 100-transaction batch: the per-txn
/// loop the primary used to run on arrival (fresh key schedule per
/// verification), the same loop over the provider's schedule cache, and
/// the aggregate path (one fold-and-compare for the whole batch).
fn bench_aggregate_verify(c: &mut Criterion) {
    use sbft_crypto::AggregateSignature;
    let provider = CryptoProvider::new(4);
    let claims: Vec<(ComponentId, sbft_types::Digest, sbft_types::Signature)> = (0..100u64)
        .map(|i| {
            let id = ComponentId::Client(ClientId((i % 16) as u32));
            let digest = sbft_crypto::digest_u64s("bench-claim", &[i]);
            let sig = provider.handle(id).sign(&digest);
            (id, digest, sig)
        })
        .collect();
    let pairs: Vec<(ComponentId, sbft_types::Digest)> =
        claims.iter().map(|(id, d, _)| (*id, *d)).collect();
    let aggregate = AggregateSignature::from_signatures(claims.iter().map(|(_, _, s)| s));
    let store = provider.key_store();
    c.bench_function("client_verify_per_txn_100", |b| {
        b.iter(|| {
            claims
                .iter()
                .all(|(id, d, s)| SimSigner::verify(store, *id, d, std::hint::black_box(s)))
        })
    });
    c.bench_function("client_verify_per_txn_cached_100", |b| {
        b.iter(|| {
            claims
                .iter()
                .all(|(id, d, s)| provider.verify(*id, d, std::hint::black_box(s)))
        })
    });
    c.bench_function("client_verify_aggregate_100", |b| {
        b.iter(|| provider.verify_aggregate(std::hint::black_box(&pairs), &aggregate))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let provider = CryptoProvider::new(1);
    let store = provider.key_store();
    let node = ComponentId::Node(NodeId(0));
    let kp = store.keypair_for(node);
    let digest = Sha256::digest(b"benchmark message");
    let sig = SimSigner::sign(&kp, &digest);
    c.bench_function("signature_sign", |b| {
        b.iter(|| SimSigner::sign(std::hint::black_box(&kp), std::hint::black_box(&digest)))
    });
    c.bench_function("signature_verify", |b| {
        b.iter(|| SimSigner::verify(store, node, &digest, std::hint::black_box(&sig)))
    });
}

fn make_batch(size: usize) -> Batch {
    Batch::new(
        (0..size)
            .map(|i| {
                Transaction::new(
                    TxnId::new(ClientId((i % 16) as u32), i as u64),
                    vec![Operation::ReadModifyWrite(Key(i as u64), 7)],
                )
            })
            .collect(),
    )
}

fn bench_batch_digest(c: &mut Criterion) {
    let batch = make_batch(100);
    c.bench_function("batch_digest_100_txns", |b| {
        b.iter(|| batch_digest(std::hint::black_box(&batch)))
    });
}

fn bench_pbft_preprepare(c: &mut Criterion) {
    // Measures a primary ordering one 100-transaction batch (pre-prepare
    // creation plus its own prepare), the per-batch hot path of the shim.
    let provider = CryptoProvider::new(2);
    let params = FaultParams::for_shim_size(8);
    let make_replica = || {
        PbftReplica::new(
            NodeId(0),
            params,
            provider.handle(ComponentId::Node(NodeId(0))),
            SimDuration::from_millis(100),
            1_000,
        )
    };
    c.bench_function("pbft_primary_submit_batch_100", |b| {
        b.iter_batched(
            || (make_replica(), make_batch(100)),
            |(mut replica, batch)| {
                let actions: Vec<ConsensusAction> =
                    replica.submit_batch(batch, sbft_types::ShardPlan::Unplanned);
                std::hint::black_box(actions)
            },
            BatchSize::SmallInput,
        )
    });
    // The batcher now releases batches with the wire digest pre-memoized
    // (absorbed transaction-by-transaction on arrival), so this is the
    // submit cost the primary actually pays per batch.
    c.bench_function("pbft_primary_submit_batch_100_predigested", |b| {
        b.iter_batched(
            || {
                let batch = make_batch(100);
                let _ = batch_digest(&batch); // what the batcher prefills
                (make_replica(), batch)
            },
            |(mut replica, batch)| {
                let actions: Vec<ConsensusAction> =
                    replica.submit_batch(batch, sbft_types::ShardPlan::Unplanned);
                std::hint::black_box(actions)
            },
            BatchSize::SmallInput,
        )
    });
}

/// The primary's complete batch-submit path as it stands after the
/// aggregate-crypto work: one aggregate client-signature check over the
/// batch (`SignedBatch::verify_and_prune`) followed by the PBFT
/// pre-prepare with the pre-memoized wire digest. Compare against
/// `client_verify_per_txn_100` + `pbft_primary_submit_batch_100`, the
/// costs the pre-aggregation design paid per batch.
fn bench_primary_submit_path(c: &mut Criterion) {
    use sbft_consensus::Batcher;
    let provider = CryptoProvider::new(2);
    let params = FaultParams::for_shim_size(8);
    let build_signed = || {
        let mut batcher = Batcher::new(100, SimDuration::from_millis(5));
        let mut released = None;
        for i in 0..100usize {
            let txn = Transaction::new(
                TxnId::new(ClientId((i % 16) as u32), i as u64),
                vec![Operation::ReadModifyWrite(Key(i as u64), 7)],
            );
            let digest = ClientRequest::signing_digest(&txn);
            let sig = provider
                .handle(ComponentId::Client(txn.id.client))
                .sign(&digest);
            released = batcher.push(txn, digest, sig, sbft_types::SimTime::ZERO);
        }
        released.expect("100 pushes release the batch")
    };
    let signed = build_signed();
    c.bench_function("primary_batch_submit_path_100", |b| {
        b.iter_batched(
            || {
                (
                    PbftReplica::new(
                        NodeId(0),
                        params,
                        provider.handle(ComponentId::Node(NodeId(0))),
                        SimDuration::from_millis(100),
                        1_000,
                    ),
                    signed.clone(),
                )
            },
            |(mut replica, signed)| {
                let (batch, rejected) = signed.verify_and_prune(&provider);
                debug_assert!(rejected.is_empty());
                let actions: Vec<ConsensusAction> = replica
                    .submit_batch(batch.expect("all valid"), sbft_types::ShardPlan::Unplanned);
                std::hint::black_box(actions)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_storage(c: &mut Criterion) {
    let table = YcsbTable::populate(100_000);
    let store = table.store();
    c.bench_function("kvstore_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            std::hint::black_box(store.get(Key(i)))
        })
    });
    let write_store = VersionedStore::new();
    c.bench_function("kvstore_put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            write_store.put(Key(i % 4096), Value::new(i))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sha256, bench_sha256_throughput, bench_signatures, bench_digest_memoization, bench_batch_handoff, bench_hmac_reuse, bench_handle_schedule_cache, bench_aggregate_verify, bench_batch_digest, bench_pbft_preprepare, bench_primary_submit_path, bench_storage
);
criterion_main!(benches);
