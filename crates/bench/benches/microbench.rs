//! Criterion micro-benchmarks for the hot paths of the architecture:
//! hashing, signatures, certificate verification, PBFT message processing
//! and the storage engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sbft_consensus::messages::{batch_digest, compute_batch_digest};
use sbft_consensus::{ConsensusAction, OrderingProtocol, PbftReplica};
use sbft_core::ClientRequest;
use sbft_crypto::{CryptoProvider, HmacKey, Sha256, SimSigner};
use sbft_storage::{VersionedStore, YcsbTable};
use sbft_types::{
    Batch, ClientId, ComponentId, FaultParams, Key, NodeId, Operation, SimDuration, Transaction,
    TxnId, Value,
};

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    c.bench_function("sha256_4kib", |b| {
        b.iter(|| Sha256::digest(std::hint::black_box(&data)))
    });
}

/// SHA-256 bulk throughput across input sizes (ns/iter ÷ size = ns/byte):
/// the aligned-block fast path dominates the larger inputs.
fn bench_sha256_throughput(c: &mut Criterion) {
    for (name, size) in [
        ("sha256_throughput_64b", 64usize),
        ("sha256_throughput_1kib", 1 << 10),
        ("sha256_throughput_64kib", 64 << 10),
    ] {
        let data = vec![0x5au8; size];
        c.bench_function(name, |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
    }
}

/// The client-request digest with and without the transaction-carried
/// memo: the cached path is what every component after the client pays.
fn bench_digest_memoization(c: &mut Criterion) {
    let txn = Transaction::new(
        TxnId::new(ClientId(3), 9),
        (0..8u64)
            .map(|k| Operation::ReadModifyWrite(Key(k), 7))
            .collect(),
    );
    c.bench_function("signing_digest_fresh", |b| {
        b.iter(|| ClientRequest::compute_signing_digest(std::hint::black_box(&txn)))
    });
    let warm = txn.clone();
    let _ = ClientRequest::signing_digest(&warm); // fill the cache once
    c.bench_function("signing_digest_cached", |b| {
        b.iter(|| ClientRequest::signing_digest(std::hint::black_box(&warm)))
    });
    let batch = make_batch(100);
    c.bench_function("batch_digest_fresh_100_txns", |b| {
        b.iter(|| compute_batch_digest(std::hint::black_box(&batch)))
    });
    let _ = batch_digest(&batch); // fill the memo
    c.bench_function("batch_digest_cached_100_txns", |b| {
        b.iter(|| batch_digest(std::hint::black_box(&batch)))
    });
}

/// Batch hand-off: an Arc refcount bump versus the deep transaction-vector
/// clone every hop used to pay before the zero-copy refactor.
fn bench_batch_handoff(c: &mut Criterion) {
    let batch = make_batch(100);
    c.bench_function("batch_handoff_arc_clone_100_txns", |b| {
        b.iter(|| std::hint::black_box(&batch).clone())
    });
    c.bench_function("batch_handoff_deep_clone_100_txns", |b| {
        b.iter(|| std::hint::black_box(&batch).txns().to_vec())
    });
}

/// HMAC with a precomputed key schedule (what `SimSigner` uses) versus
/// deriving the schedule per message.
fn bench_hmac_reuse(c: &mut Criterion) {
    let digest = Sha256::digest(b"hot-path message");
    let key_bytes = [0x42u8; 32];
    c.bench_function("hmac_fresh_key", |b| {
        b.iter(|| HmacKey::new(&key_bytes).mac(std::hint::black_box(digest.as_bytes())))
    });
    let key = HmacKey::new(&key_bytes);
    c.bench_function("hmac_reused_key", |b| {
        b.iter(|| key.mac(std::hint::black_box(digest.as_bytes())))
    });
}

fn bench_signatures(c: &mut Criterion) {
    let provider = CryptoProvider::new(1);
    let store = provider.key_store();
    let node = ComponentId::Node(NodeId(0));
    let kp = store.keypair_for(node);
    let digest = Sha256::digest(b"benchmark message");
    let sig = SimSigner::sign(&kp, &digest);
    c.bench_function("signature_sign", |b| {
        b.iter(|| SimSigner::sign(std::hint::black_box(&kp), std::hint::black_box(&digest)))
    });
    c.bench_function("signature_verify", |b| {
        b.iter(|| SimSigner::verify(store, node, &digest, std::hint::black_box(&sig)))
    });
}

fn make_batch(size: usize) -> Batch {
    Batch::new(
        (0..size)
            .map(|i| {
                Transaction::new(
                    TxnId::new(ClientId((i % 16) as u32), i as u64),
                    vec![Operation::ReadModifyWrite(Key(i as u64), 7)],
                )
            })
            .collect(),
    )
}

fn bench_batch_digest(c: &mut Criterion) {
    let batch = make_batch(100);
    c.bench_function("batch_digest_100_txns", |b| {
        b.iter(|| batch_digest(std::hint::black_box(&batch)))
    });
}

fn bench_pbft_preprepare(c: &mut Criterion) {
    // Measures a primary ordering one 100-transaction batch (pre-prepare
    // creation plus its own prepare), the per-batch hot path of the shim.
    let provider = CryptoProvider::new(2);
    let params = FaultParams::for_shim_size(8);
    c.bench_function("pbft_primary_submit_batch_100", |b| {
        b.iter_batched(
            || {
                (
                    PbftReplica::new(
                        NodeId(0),
                        params,
                        provider.handle(ComponentId::Node(NodeId(0))),
                        SimDuration::from_millis(100),
                        1_000,
                    ),
                    make_batch(100),
                )
            },
            |(mut replica, batch)| {
                let actions: Vec<ConsensusAction> = replica.submit_batch(batch);
                std::hint::black_box(actions)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_storage(c: &mut Criterion) {
    let table = YcsbTable::populate(100_000);
    let store = table.store();
    c.bench_function("kvstore_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            std::hint::black_box(store.get(Key(i)))
        })
    });
    let write_store = VersionedStore::new();
    c.bench_function("kvstore_put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            write_store.put(Key(i % 4096), Value::new(i))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sha256, bench_sha256_throughput, bench_signatures, bench_digest_memoization, bench_batch_handoff, bench_hmac_reuse, bench_batch_digest, bench_pbft_preprepare, bench_storage
);
criterion_main!(benches);
