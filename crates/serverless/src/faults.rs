//! Byzantine executor behaviours.
//!
//! Up to `f_E` of the spawned executors may be byzantine (Section III-A):
//! they "can either provide incorrect result or ignore execution". The
//! verifier-flooding attack (Section V-C) adds a third behaviour: sending
//! duplicate `VERIFY` messages. Behaviours are assigned per executor by the
//! experiment configuration or by the attack-injection layer.

use serde::{Deserialize, Serialize};

/// How a spawned executor behaves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ExecutorBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashes / ignores execution: never sends a `VERIFY` message.
    Crash,
    /// Executes but reports an incorrect (corrupted) result.
    WrongResult,
    /// Executes correctly but floods the verifier with duplicate `VERIFY`
    /// messages (the duplicate-messages flooding attack).
    DuplicateVerify {
        /// How many copies of the `VERIFY` message to send.
        copies: u32,
    },
    /// Executes correctly but delays its `VERIFY` message (a straggler, or
    /// an executor spawned late by a byzantine primary trying to force
    /// aborts of conflicting transactions).
    Delayed {
        /// Extra delay in milliseconds before the `VERIFY` message is sent.
        delay_ms: u64,
    },
}

impl ExecutorBehavior {
    /// Whether this behaviour produces at least one `VERIFY` message.
    #[must_use]
    pub fn responds(self) -> bool {
        !matches!(self, ExecutorBehavior::Crash)
    }

    /// Whether the produced result is correct (matches honest execution).
    #[must_use]
    pub fn result_is_correct(self) -> bool {
        !matches!(self, ExecutorBehavior::WrongResult)
    }

    /// Number of `VERIFY` copies this behaviour emits.
    #[must_use]
    pub fn verify_copies(self) -> u32 {
        match self {
            ExecutorBehavior::Crash => 0,
            ExecutorBehavior::DuplicateVerify { copies } => copies.max(1),
            _ => 1,
        }
    }

    /// Extra delay before the `VERIFY` message is sent, in milliseconds.
    #[must_use]
    pub fn extra_delay_ms(self) -> u64 {
        match self {
            ExecutorBehavior::Delayed { delay_ms } => delay_ms,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_behaviour_is_the_default() {
        assert_eq!(ExecutorBehavior::default(), ExecutorBehavior::Honest);
        assert!(ExecutorBehavior::Honest.responds());
        assert!(ExecutorBehavior::Honest.result_is_correct());
        assert_eq!(ExecutorBehavior::Honest.verify_copies(), 1);
    }

    #[test]
    fn crash_never_responds() {
        assert!(!ExecutorBehavior::Crash.responds());
        assert_eq!(ExecutorBehavior::Crash.verify_copies(), 0);
    }

    #[test]
    fn wrong_result_still_responds() {
        assert!(ExecutorBehavior::WrongResult.responds());
        assert!(!ExecutorBehavior::WrongResult.result_is_correct());
    }

    #[test]
    fn duplicate_verify_sends_at_least_one_copy() {
        assert_eq!(
            ExecutorBehavior::DuplicateVerify { copies: 5 }.verify_copies(),
            5
        );
        assert_eq!(
            ExecutorBehavior::DuplicateVerify { copies: 0 }.verify_copies(),
            1
        );
    }

    #[test]
    fn delay_reported_only_for_delayed() {
        assert_eq!(
            ExecutorBehavior::Delayed { delay_ms: 30 }.extra_delay_ms(),
            30
        );
        assert_eq!(ExecutorBehavior::Honest.extra_delay_ms(), 0);
    }
}
