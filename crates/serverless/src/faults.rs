//! Byzantine executor behaviours and region-level fault scenarios.
//!
//! Up to `f_E` of the spawned executors may be byzantine (Section III-A):
//! they "can either provide incorrect result or ignore execution". The
//! verifier-flooding attack (Section V-C) adds a third behaviour: sending
//! duplicate `VERIFY` messages. Behaviours are assigned per executor by the
//! experiment configuration or by the attack-injection layer.
//!
//! [`RegionOutage`] is the geo-scale fault: a whole cloud region goes
//! dark, taking its spawn capacity (and, under geo-partitioned storage,
//! the locality advantage of the shards homed there) with it. The cloud
//! rejects spawns into downed regions and the invokers' plan-aware
//! placement deterministically falls back to the round-robin rotation —
//! liveness and the spawn margin are preserved, and the fault-injection
//! suite proves commit outcomes are unchanged.

use sbft_types::{NodeId, Region, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A multi-region fault scenario: one or more cloud regions offline.
///
/// The scenario is *placement-level* fault injection: it never corrupts
/// an executor (those are [`ExecutorBehavior`]s) — it removes spawn
/// capacity. Runtimes apply it in two places: the simulated cloud
/// rejects spawn requests into downed regions, and each shim node's
/// invoker is told so its placement avoids them.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RegionOutage {
    downed: BTreeSet<Region>,
}

impl RegionOutage {
    /// No outage.
    #[must_use]
    pub fn none() -> Self {
        RegionOutage::default()
    }

    /// A single-region outage.
    #[must_use]
    pub fn of(region: Region) -> Self {
        let mut outage = RegionOutage::default();
        outage.downed.insert(region);
        outage
    }

    /// Adds another downed region to the scenario.
    #[must_use]
    pub fn and(mut self, region: Region) -> Self {
        self.downed.insert(region);
        self
    }

    /// Whether the scenario takes `region` offline.
    #[must_use]
    pub fn affects(&self, region: Region) -> bool {
        self.downed.contains(&region)
    }

    /// Whether any region is down at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.downed.is_empty()
    }

    /// The downed regions, in order.
    pub fn regions(&self) -> impl Iterator<Item = Region> + '_ {
        self.downed.iter().copied()
    }
}

/// A crash-restart fault on one shim node: the node's process dies at
/// `at` (losing its volatile state and the unsynced tail of its
/// write-ahead log), stays dark for `restart_after`, then restarts and
/// recovers via snapshot + log replay + peer state transfer.
///
/// Unlike the byzantine behaviours this is a *benign* fault — the node
/// follows the protocol before and after the crash — but it exercises
/// the entire durability subsystem: what was synced must be replayed,
/// what was in flight must be re-fetched from peers, and the committed
/// outcomes must be byte-identical to a run without the crash.
///
/// One crash is schedulable via `SimParams::crash`; a `FaultPlan`
/// (`sbft_sim::faults`) composes any number of them — including
/// simultaneous, overlapping crashes — with link faults, partition
/// windows and disk-lag stragglers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CrashRestart {
    /// The shim node that crashes.
    pub node: NodeId,
    /// Simulated time at which the process dies.
    pub at: SimDuration,
    /// How long the node stays dark before restarting.
    pub restart_after: SimDuration,
}

impl CrashRestart {
    /// A crash of `node` at `at`, restarting after `restart_after`.
    #[must_use]
    pub fn of(node: NodeId, at: SimDuration, restart_after: SimDuration) -> Self {
        CrashRestart {
            node,
            at,
            restart_after,
        }
    }
}

/// How a spawned executor behaves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ExecutorBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashes / ignores execution: never sends a `VERIFY` message.
    Crash,
    /// Executes but reports an incorrect (corrupted) result.
    WrongResult,
    /// Executes correctly but floods the verifier with duplicate `VERIFY`
    /// messages (the duplicate-messages flooding attack).
    DuplicateVerify {
        /// How many copies of the `VERIFY` message to send.
        copies: u32,
    },
    /// Executes correctly but delays its `VERIFY` message (a straggler, or
    /// an executor spawned late by a byzantine primary trying to force
    /// aborts of conflicting transactions).
    Delayed {
        /// Extra delay in milliseconds before the `VERIFY` message is sent.
        delay_ms: u64,
    },
}

impl ExecutorBehavior {
    /// Whether this behaviour produces at least one `VERIFY` message.
    #[must_use]
    pub fn responds(self) -> bool {
        !matches!(self, ExecutorBehavior::Crash)
    }

    /// Whether the produced result is correct (matches honest execution).
    #[must_use]
    pub fn result_is_correct(self) -> bool {
        !matches!(self, ExecutorBehavior::WrongResult)
    }

    /// Number of `VERIFY` copies this behaviour emits.
    #[must_use]
    pub fn verify_copies(self) -> u32 {
        match self {
            ExecutorBehavior::Crash => 0,
            ExecutorBehavior::DuplicateVerify { copies } => copies.max(1),
            _ => 1,
        }
    }

    /// Extra delay before the `VERIFY` message is sent, in milliseconds.
    #[must_use]
    pub fn extra_delay_ms(self) -> u64 {
        match self {
            ExecutorBehavior::Delayed { delay_ms } => delay_ms,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_behaviour_is_the_default() {
        assert_eq!(ExecutorBehavior::default(), ExecutorBehavior::Honest);
        assert!(ExecutorBehavior::Honest.responds());
        assert!(ExecutorBehavior::Honest.result_is_correct());
        assert_eq!(ExecutorBehavior::Honest.verify_copies(), 1);
    }

    #[test]
    fn crash_never_responds() {
        assert!(!ExecutorBehavior::Crash.responds());
        assert_eq!(ExecutorBehavior::Crash.verify_copies(), 0);
    }

    #[test]
    fn wrong_result_still_responds() {
        assert!(ExecutorBehavior::WrongResult.responds());
        assert!(!ExecutorBehavior::WrongResult.result_is_correct());
    }

    #[test]
    fn duplicate_verify_sends_at_least_one_copy() {
        assert_eq!(
            ExecutorBehavior::DuplicateVerify { copies: 5 }.verify_copies(),
            5
        );
        assert_eq!(
            ExecutorBehavior::DuplicateVerify { copies: 0 }.verify_copies(),
            1
        );
    }

    #[test]
    fn delay_reported_only_for_delayed() {
        assert_eq!(
            ExecutorBehavior::Delayed { delay_ms: 30 }.extra_delay_ms(),
            30
        );
        assert_eq!(ExecutorBehavior::Honest.extra_delay_ms(), 0);
    }

    #[test]
    fn region_outage_tracks_the_downed_set() {
        assert!(!RegionOutage::none().is_active());
        let outage = RegionOutage::of(Region::Ohio).and(Region::Seoul);
        assert!(outage.is_active());
        assert!(outage.affects(Region::Ohio));
        assert!(outage.affects(Region::Seoul));
        assert!(!outage.affects(Region::Oregon));
        assert_eq!(outage.regions().count(), 2);
    }
}
