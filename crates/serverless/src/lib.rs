//! # sbft-serverless
//!
//! The simulated serverless cloud: everything that stands in for AWS Lambda
//! in the original system (the substitution is documented in `DESIGN.md`).
//!
//! * [`messages`] — the `EXECUTE` and `VERIFY` messages exchanged between
//!   the shim, the executors and the verifier (Figure 3, lines 9 and 20).
//! * [`executor`] — the serverless function itself: verify the certificate
//!   `C`, execute the batch, fetch read-write sets from storage, and send
//!   the result to the verifier. Executors are stateless and never write to
//!   the storage (Section IV-C).
//! * [`faults`] — byzantine executor behaviours (crash, wrong result,
//!   duplicate `VERIFY` flooding) injected per executor, plus the
//!   [`RegionOutage`] scenario that takes whole cloud regions offline.
//! * [`cloud`] — the cloud control plane: spawn requests, per-region
//!   placement, cold-start latency, the provider's concurrency limit (the
//!   paper could not scale past 21 parallel executors), and billing.
//! * [`invoker`] — the invoker deployed on every shim node that turns a
//!   committed batch into spawn requests: round-robin over the configured
//!   regions by default, or — under geo-partitioned storage — pinned to a
//!   `SingleHome` batch's home region with deterministic fallback.
//! * [`billing`] — the pay-per-use cost model used for Figure 8's
//!   cents-per-kilo-transaction comparison.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod billing;
pub mod cloud;
pub mod executor;
pub mod faults;
pub mod invoker;
pub mod messages;

pub use billing::{CostModel, CostReport};
pub use cloud::{ServerlessCloud, SpawnOutcome, SpawnRequest};
pub use executor::{Executor, ExecutorOutput};
pub use faults::{CrashRestart, ExecutorBehavior, RegionOutage};
pub use invoker::{Invoker, SpawnPlan};
pub use messages::{ExecuteRequest, VerifyMessage};
