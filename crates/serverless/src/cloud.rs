//! The serverless cloud control plane.
//!
//! Models the part of AWS Lambda the protocol can observe: spawn requests
//! accepted or rejected (the provider's concurrency limit stopped the paper
//! at 21 parallel executors), per-region placement with cold-start latency,
//! unique executor identities (Section III-A, *Identity*), per-spawner
//! accounting (*Accountability* / *Payment*), and the assignment of
//! byzantine behaviours to up to `f_E` executors per batch (*lack of trust
//! at the serverless cloud*).

use crate::faults::{ExecutorBehavior, RegionOutage};
use sbft_types::{ExecutorId, NodeId, Region, SbftError, SbftResult, SeqNum, SimDuration};
use std::collections::BTreeMap;

/// A request to spawn one executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpawnRequest {
    /// The shim node spawning (and paying for) the executor.
    pub spawner: NodeId,
    /// The region to spawn in.
    pub region: Region,
    /// The batch (sequence number) this executor will work on.
    pub seq: SeqNum,
}

/// The cloud's answer to a successful spawn request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpawnOutcome {
    /// The unique identity assigned to the new executor.
    pub executor: ExecutorId,
    /// Where it runs.
    pub region: Region,
    /// Cold-start latency before the function begins executing.
    pub cold_start: SimDuration,
    /// The behaviour the (possibly untrusted) cloud gives this executor.
    pub behavior: ExecutorBehavior,
}

/// How many executors per batch the cloud corrupts, and how.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CloudFaultPlan {
    /// Number of byzantine executors among those spawned for each batch
    /// (at most `f_E` in the experiments).
    pub byzantine_per_batch: usize,
    /// The behaviour assigned to those executors.
    pub behavior: ExecutorBehavior,
}

/// The simulated serverless cloud.
#[derive(Debug)]
pub struct ServerlessCloud {
    next_id: u64,
    concurrency_limit: usize,
    active: usize,
    cold_start: SimDuration,
    fault_plan: CloudFaultPlan,
    /// Regions currently offline: spawns into them are rejected.
    outage: RegionOutage,
    rejected_by_outage: u64,
    /// Spawns per shim node (accountability/payment bookkeeping).
    spawns_by_node: BTreeMap<NodeId, u64>,
    /// Spawns per batch, used to apply the fault plan deterministically.
    spawns_by_seq: BTreeMap<SeqNum, usize>,
    total_spawned: u64,
    rejected: u64,
}

/// The default AWS Lambda account concurrency limit observed in the paper's
/// experiments ("could not scale further due to limits by cloud provider").
pub const DEFAULT_CONCURRENCY_LIMIT: usize = 21;

/// A typical warm-ish Lambda cold-start latency.
pub const DEFAULT_COLD_START: SimDuration = SimDuration::from_millis(25);

impl ServerlessCloud {
    /// Creates a cloud with the default concurrency limit and no faults.
    #[must_use]
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_CONCURRENCY_LIMIT, DEFAULT_COLD_START)
    }

    /// Creates a cloud with an explicit concurrency limit and cold start.
    #[must_use]
    pub fn with_limits(concurrency_limit: usize, cold_start: SimDuration) -> Self {
        assert!(
            concurrency_limit > 0,
            "the cloud must allow at least one executor"
        );
        ServerlessCloud {
            next_id: 0,
            concurrency_limit,
            active: 0,
            cold_start,
            fault_plan: CloudFaultPlan::default(),
            outage: RegionOutage::none(),
            rejected_by_outage: 0,
            spawns_by_node: BTreeMap::new(),
            spawns_by_seq: BTreeMap::new(),
            total_spawned: 0,
            rejected: 0,
        }
    }

    /// Configures the byzantine-executor plan.
    pub fn set_fault_plan(&mut self, plan: CloudFaultPlan) {
        self.fault_plan = plan;
    }

    /// Applies a region-outage scenario: spawns into downed regions fail
    /// until the outage is lifted.
    pub fn set_region_outage(&mut self, outage: RegionOutage) {
        self.outage = outage;
    }

    /// Whether the active outage scenario takes `region` offline (what
    /// lets a runtime translate a rejected spawn into the reactive
    /// region-outage signal for the spawning node's invoker).
    #[must_use]
    pub fn region_is_down(&self, region: Region) -> bool {
        self.outage.affects(region)
    }

    /// Handles a spawn request. Fails if the target region is offline or
    /// the concurrency limit is reached.
    pub fn spawn(&mut self, req: SpawnRequest) -> SbftResult<SpawnOutcome> {
        if self.outage.affects(req.region) {
            self.rejected += 1;
            self.rejected_by_outage += 1;
            return Err(SbftError::SpawnRejected(format!(
                "region {} is offline",
                req.region
            )));
        }
        if self.active >= self.concurrency_limit {
            self.rejected += 1;
            return Err(SbftError::SpawnRejected(format!(
                "concurrency limit of {} parallel executors reached",
                self.concurrency_limit
            )));
        }
        let id = ExecutorId(self.next_id);
        self.next_id += 1;
        self.active += 1;
        self.total_spawned += 1;
        *self.spawns_by_node.entry(req.spawner).or_insert(0) += 1;
        let ordinal = self.spawns_by_seq.entry(req.seq).or_insert(0);
        // The first `byzantine_per_batch` executors of each batch are the
        // corrupted ones — deterministic, so experiments are reproducible.
        let behavior = if *ordinal < self.fault_plan.byzantine_per_batch {
            self.fault_plan.behavior
        } else {
            ExecutorBehavior::Honest
        };
        *ordinal += 1;
        Ok(SpawnOutcome {
            executor: id,
            region: req.region,
            cold_start: self.cold_start,
            behavior,
        })
    }

    /// Marks an executor as finished, releasing its concurrency slot.
    pub fn release(&mut self, _executor: ExecutorId) {
        self.active = self.active.saturating_sub(1);
    }

    /// Number of executors currently running.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Total executors spawned so far.
    #[must_use]
    pub fn total_spawned(&self) -> u64 {
        self.total_spawned
    }

    /// Spawn requests rejected for any reason (concurrency limit or
    /// region outage).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Spawn requests rejected because their target region was offline —
    /// stays zero when the invokers' placement correctly avoids downed
    /// regions.
    #[must_use]
    pub fn rejected_by_outage(&self) -> u64 {
        self.rejected_by_outage
    }

    /// Executors spawned (and paid for) by a given shim node. The edge
    /// application's enterprise reimburses this amount per consensus
    /// (Section III-A, *Payment*); it is also how the architecture holds
    /// byzantine nodes accountable for duplicate spawning.
    #[must_use]
    pub fn spawned_by(&self, node: NodeId) -> u64 {
        self.spawns_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Executors spawned for a given batch.
    #[must_use]
    pub fn spawned_for(&self, seq: SeqNum) -> usize {
        self.spawns_by_seq.get(&seq).copied().unwrap_or(0)
    }
}

impl Default for ServerlessCloud {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(spawner: u32, seq: u64) -> SpawnRequest {
        SpawnRequest {
            spawner: NodeId(spawner),
            region: Region::Oregon,
            seq: SeqNum(seq),
        }
    }

    #[test]
    fn spawns_get_unique_ids_and_are_accounted() {
        let mut cloud = ServerlessCloud::new();
        let a = cloud.spawn(req(0, 1)).unwrap();
        let b = cloud.spawn(req(0, 1)).unwrap();
        let c = cloud.spawn(req(1, 1)).unwrap();
        assert_ne!(a.executor, b.executor);
        assert_ne!(b.executor, c.executor);
        assert_eq!(cloud.spawned_by(NodeId(0)), 2);
        assert_eq!(cloud.spawned_by(NodeId(1)), 1);
        assert_eq!(cloud.spawned_for(SeqNum(1)), 3);
        assert_eq!(cloud.total_spawned(), 3);
        assert_eq!(cloud.active(), 3);
    }

    #[test]
    fn concurrency_limit_rejects_excess_spawns() {
        let mut cloud = ServerlessCloud::with_limits(2, SimDuration::ZERO);
        cloud.spawn(req(0, 1)).unwrap();
        cloud.spawn(req(0, 1)).unwrap();
        let err = cloud.spawn(req(0, 1)).unwrap_err();
        assert!(matches!(err, SbftError::SpawnRejected(_)));
        assert_eq!(cloud.rejected(), 1);
        // Releasing a slot allows spawning again.
        cloud.release(ExecutorId(0));
        assert!(cloud.spawn(req(0, 1)).is_ok());
    }

    #[test]
    fn paper_default_limit_is_21() {
        let mut cloud = ServerlessCloud::new();
        for _ in 0..21 {
            cloud.spawn(req(0, 1)).unwrap();
        }
        assert!(cloud.spawn(req(0, 1)).is_err());
    }

    #[test]
    fn fault_plan_corrupts_first_k_per_batch() {
        let mut cloud = ServerlessCloud::new();
        cloud.set_fault_plan(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::WrongResult,
        });
        let outcomes: Vec<_> = (0..3).map(|_| cloud.spawn(req(0, 7)).unwrap()).collect();
        assert_eq!(outcomes[0].behavior, ExecutorBehavior::WrongResult);
        assert_eq!(outcomes[1].behavior, ExecutorBehavior::Honest);
        assert_eq!(outcomes[2].behavior, ExecutorBehavior::Honest);
        // A different batch gets its own byzantine executor.
        let fresh = cloud.spawn(req(0, 8)).unwrap();
        assert_eq!(fresh.behavior, ExecutorBehavior::WrongResult);
    }

    #[test]
    fn release_never_underflows() {
        let mut cloud = ServerlessCloud::new();
        cloud.release(ExecutorId(99));
        assert_eq!(cloud.active(), 0);
    }

    #[test]
    fn region_outage_rejects_spawns_until_lifted() {
        use crate::faults::RegionOutage;
        let mut cloud = ServerlessCloud::new();
        cloud.set_region_outage(RegionOutage::of(Region::Oregon));
        let err = cloud.spawn(req(0, 1)).unwrap_err();
        assert!(matches!(err, SbftError::SpawnRejected(_)));
        assert_eq!(cloud.rejected_by_outage(), 1);
        assert_eq!(cloud.rejected(), 1);
        // Other regions are unaffected.
        let ok = cloud.spawn(SpawnRequest {
            spawner: NodeId(0),
            region: Region::Ohio,
            seq: SeqNum(1),
        });
        assert!(ok.is_ok());
        // Lifting the outage restores the region.
        cloud.set_region_outage(RegionOutage::none());
        assert!(cloud.spawn(req(0, 1)).is_ok());
    }

    #[test]
    fn cold_start_reported_in_outcome() {
        let mut cloud = ServerlessCloud::with_limits(4, SimDuration::from_millis(40));
        assert_eq!(
            cloud.spawn(req(0, 1)).unwrap().cold_start,
            SimDuration::from_millis(40)
        );
    }
}
