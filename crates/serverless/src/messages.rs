//! The `EXECUTE` and `VERIFY` messages.
//!
//! `⟨EXECUTE(⟨T⟩_C, C, m, Δ)⟩_P` is sent by the shim node that spawns an
//! executor and carries the ordered batch plus the certificate `C` of
//! `2f_R + 1` commit signatures (Figure 3, line 9). After execution the
//! executor sends `VERIFY(⟨T⟩_C, C, m, rw, r)` to the verifier with the
//! computed results and the read-write sets it observed (line 20).

use sbft_crypto::{CommitCertificate, U64Hasher};
use sbft_types::{
    Batch, BatchId, Digest, ExecutorId, NodeId, SeqNum, ShardPlan, Signature, TxnResult, ViewNumber,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The `EXECUTE` message handed to a spawned executor.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ExecuteRequest {
    /// View in which the batch committed.
    pub view: ViewNumber,
    /// Sequence number the shim assigned to the batch.
    pub seq: SeqNum,
    /// Digest of the ordered batch (`Δ`).
    pub digest: Digest,
    /// The batch of client transactions to execute (a shared handle: the
    /// one `EXECUTE` body is cloned per spawned executor by refcount).
    pub batch: Batch,
    /// The certificate proving `2f_R + 1` shim nodes committed the batch,
    /// shared by reference count with the spawner's consensus log.
    pub certificate: Arc<CommitCertificate>,
    /// The ordering-time shard plan replicated with the batch. Not
    /// covered by the spawner signature (trust-but-verify: the verifier
    /// re-derives it before acting on it, and a byzantine spawner holds
    /// its own signing key anyway).
    pub plan: ShardPlan,
    /// The shim node that spawned this executor (and pays for it).
    pub spawner: NodeId,
    /// Signature of the spawner over the request digest.
    pub signature: Signature,
}

/// The `VERIFY` message an executor sends to the verifier after execution.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct VerifyMessage {
    /// The executor that produced this result.
    pub executor: ExecutorId,
    /// View in which the batch committed.
    pub view: ViewNumber,
    /// Sequence number of the batch.
    pub seq: SeqNum,
    /// Identifier of the executed batch.
    pub batch_id: BatchId,
    /// Digest of the ordered batch, echoed from the `EXECUTE` message.
    pub batch_digest: Digest,
    /// Per-transaction results (outputs plus observed read-write sets),
    /// behind `Arc` so the verifier's bookkeeping clones are refcount
    /// bumps and the pooled apply stage can hand the very same
    /// allocation to the shard workers (zero-copy — no per-transaction
    /// read-write set is ever cloned on the apply path).
    pub results: Arc<[TxnResult]>,
    /// A digest of `results`; two `VERIFY` messages *match* iff these are
    /// equal (the verifier counts matching messages, Figure 3 line 23).
    pub result_digest: Digest,
    /// The certificate echoed back so the verifier can detect spawns that
    /// were never backed by consensus (Section V-C). Shared with the
    /// `EXECUTE` message it answers.
    pub certificate: Arc<CommitCertificate>,
    /// The ordering-time shard plan echoed from the `EXECUTE` message,
    /// so the verifier learns the tag from the same quorum it validates.
    pub plan: ShardPlan,
    /// The executor's signature over `result_digest`.
    pub signature: Signature,
}

impl ExecuteRequest {
    /// The digest the spawner signs for this request.
    #[must_use]
    pub fn signing_digest(
        view: ViewNumber,
        seq: SeqNum,
        digest: &Digest,
        spawner: NodeId,
    ) -> Digest {
        let mut h = U64Hasher::new("sbft-execute");
        h.push(view.0);
        h.push(seq.0);
        h.push(u64::from(spawner.0));
        h.push_digest(digest);
        h.finish()
    }

    /// Modeled wire size. With the default configuration (3-signature
    /// certificate, 100-transaction batch summarised by digest + compact
    /// transaction encodings) this lands near the paper's 3320 B.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        // Framing + header + plan tag + certificate + compact transaction
        // encoding (ids and operations only; values are fetched from
        // storage).
        120 + 16
            + 32
            + 64
            + 5
            + self.certificate.wire_size()
            + self
                .batch
                .iter()
                .map(|t| 16 + t.ops.len() * 12)
                .sum::<usize>()
    }
}

impl VerifyMessage {
    /// Computes the digest over a result vector that defines "matching"
    /// `VERIFY` messages.
    #[must_use]
    pub fn digest_of_results(seq: SeqNum, results: &[TxnResult]) -> Digest {
        let mut h = U64Hasher::new("sbft-verify-result");
        h.push(seq.0);
        h.push(results.len() as u64);
        for r in results {
            h.push(u64::from(r.txn.client.0));
            h.push(r.txn.counter);
            h.push(r.output);
            for (k, v) in &r.rwset.reads {
                h.push(k.0);
                h.push(v.0);
            }
            for (k, v) in &r.rwset.writes {
                h.push(k.0);
                h.push(v.data);
            }
        }
        h.finish()
    }

    /// Whether two `VERIFY` messages match (same batch, same results).
    #[must_use]
    pub fn matches(&self, other: &VerifyMessage) -> bool {
        self.seq == other.seq
            && self.batch_digest == other.batch_digest
            && self.result_digest == other.result_digest
    }

    /// Modeled wire size (the paper's `RESPONSE`-adjacent messages are a
    /// few kilobytes; the dominant term is the read-write sets).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        120 + 16
            + 32
            + 32
            + 64
            + 5
            + self.certificate.wire_size()
            + self
                .results
                .iter()
                .map(|r| 24 + r.rwset.reads.len() * 16 + r.rwset.writes.len() * 16)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, ReadWriteSet, TxnId, Value, Version};

    fn result(counter: u64, output: u64) -> TxnResult {
        let mut rwset = ReadWriteSet::new();
        rwset.record_read(Key(counter), Version(1));
        rwset.record_write(Key(counter), Value::new(output));
        TxnResult {
            txn: TxnId::new(ClientId(0), counter),
            output,
            rwset,
        }
    }

    #[test]
    fn result_digest_is_order_and_value_sensitive() {
        let a = vec![result(0, 1), result(1, 2)];
        let b = vec![result(1, 2), result(0, 1)];
        let c = vec![result(0, 1), result(1, 3)];
        let d1 = VerifyMessage::digest_of_results(SeqNum(1), &a);
        assert_eq!(d1, VerifyMessage::digest_of_results(SeqNum(1), &a));
        assert_ne!(d1, VerifyMessage::digest_of_results(SeqNum(1), &b));
        assert_ne!(d1, VerifyMessage::digest_of_results(SeqNum(1), &c));
        assert_ne!(d1, VerifyMessage::digest_of_results(SeqNum(2), &a));
    }

    #[test]
    fn signing_digest_binds_spawner() {
        let d = Digest::from_bytes([7; 32]);
        let a = ExecuteRequest::signing_digest(ViewNumber(0), SeqNum(1), &d, NodeId(0));
        let b = ExecuteRequest::signing_digest(ViewNumber(0), SeqNum(1), &d, NodeId(1));
        assert_ne!(a, b);
    }
}
