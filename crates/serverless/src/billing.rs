//! The pay-per-use cost model (Figure 8's cents / kilo-transaction axis).
//!
//! The paper bills its experiments with "the precise costs for spawning
//! serverless executors at AWS Lambda and running machines on OCI". The
//! model below uses the public list prices that were current for the
//! paper's setup:
//!
//! * AWS Lambda: \$0.20 per million requests plus \$0.0000166667 per
//!   GiB-second of execution,
//! * OCI `VM.Standard.E3.Flex` compute: ≈\$0.025 per OCPU-hour plus
//!   ≈\$0.0015 per GiB-hour of memory.
//!
//! Only the relative shapes matter for the reproduction (serverless cost is
//! dominated by invocation count and execution seconds; edge-only cost is
//! dominated by how long the fixed fleet must stay up), so the constants
//! are exposed and adjustable.

use sbft_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost-model constants.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Dollars per single Lambda invocation (request fee).
    pub lambda_request_cost: f64,
    /// Dollars per GiB-second of Lambda execution.
    pub lambda_gib_second_cost: f64,
    /// Memory configured per executor, in GiB.
    pub lambda_memory_gib: f64,
    /// Dollars per core-hour of an edge/OCI machine.
    pub machine_core_hour_cost: f64,
    /// Dollars per GiB-hour of machine memory.
    pub machine_gib_hour_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            lambda_request_cost: 0.20 / 1_000_000.0,
            lambda_gib_second_cost: 0.000_016_666_7,
            lambda_memory_gib: 0.5,
            machine_core_hour_cost: 0.025,
            machine_gib_hour_cost: 0.0015,
        }
    }
}

/// A cost breakdown for one experiment run.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct CostReport {
    /// Dollars spent on serverless invocations.
    pub serverless_dollars: f64,
    /// Dollars spent on always-on machines (shim nodes, verifier).
    pub machine_dollars: f64,
    /// Number of transactions committed during the run.
    pub committed_txns: u64,
}

impl CostModel {
    /// Cost of `invocations` Lambda executions of `duration` each.
    #[must_use]
    pub fn lambda_cost(&self, invocations: u64, duration: SimDuration) -> f64 {
        let seconds = duration.as_secs_f64();
        invocations as f64
            * (self.lambda_request_cost
                + self.lambda_gib_second_cost * self.lambda_memory_gib * seconds)
    }

    /// Cost of running `machines` machines with `cores` cores and
    /// `memory_gib` GiB each for `wall_time`.
    #[must_use]
    pub fn machine_cost(
        &self,
        machines: usize,
        cores: usize,
        memory_gib: f64,
        wall_time: SimDuration,
    ) -> f64 {
        let hours = wall_time.as_secs_f64() / 3600.0;
        machines as f64
            * hours
            * (self.machine_core_hour_cost * cores as f64 + self.machine_gib_hour_cost * memory_gib)
    }
}

impl CostReport {
    /// Total dollars spent.
    #[must_use]
    pub fn total_dollars(&self) -> f64 {
        self.serverless_dollars + self.machine_dollars
    }

    /// The paper's metric: cents per thousand committed transactions.
    #[must_use]
    pub fn cents_per_ktxn(&self) -> f64 {
        if self.committed_txns == 0 {
            return f64::INFINITY;
        }
        self.total_dollars() * 100.0 / (self.committed_txns as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_cost_scales_with_invocations_and_duration() {
        let m = CostModel::default();
        let short = m.lambda_cost(1_000, SimDuration::from_millis(100));
        let long = m.lambda_cost(1_000, SimDuration::from_millis(1_000));
        let many = m.lambda_cost(10_000, SimDuration::from_millis(100));
        assert!(long > short);
        assert!(many > short);
        assert!((many / short - 10.0).abs() < 1e-9);
    }

    #[test]
    fn machine_cost_scales_with_time_and_fleet() {
        let m = CostModel::default();
        let base = m.machine_cost(32, 16, 16.0, SimDuration::from_secs(180));
        let longer = m.machine_cost(32, 16, 16.0, SimDuration::from_secs(360));
        let smaller = m.machine_cost(8, 16, 16.0, SimDuration::from_secs(180));
        assert!((longer / base - 2.0).abs() < 1e-9);
        assert!(smaller < base);
    }

    #[test]
    fn cents_per_ktxn_matches_hand_computation() {
        let report = CostReport {
            serverless_dollars: 0.02,
            machine_dollars: 0.08,
            committed_txns: 50_000,
        };
        // $0.10 over 50 kTxn = 10 cents / 50 = 0.2 cents per ktxn.
        assert!((report.cents_per_ktxn() - 0.2).abs() < 1e-9);
        assert!((report.total_dollars() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_throughput_costs_infinite_per_txn() {
        let report = CostReport::default();
        assert!(report.cents_per_ktxn().is_infinite());
    }

    #[test]
    fn short_lambda_bursts_are_cheaper_than_long_machines() {
        // The qualitative claim behind Figure 8: for bursty expensive
        // execution, paying per use beats keeping a fleet busy for the
        // whole (much longer) run.
        let m = CostModel::default();
        let serverless = m.lambda_cost(3 * 600, SimDuration::from_millis(2_000));
        let machines = m.machine_cost(32, 16, 16.0, SimDuration::from_secs(3_600));
        assert!(serverless < machines);
    }
}
