//! The invoker deployed on every shim node.
//!
//! "At each shim node, we deploy an invoker to spawn `n_E` executors when
//! indicated by the node's consensus instance. […] our invoker does not
//! wait for the spawned executors to finish and proceeds to spawn the
//! executors for the next client request" (Section VIII). The invoker is a
//! pure planner: given a committed batch it decides how many executors to
//! spawn and in which regions (round-robin, Section IX-E), and the runtime
//! turns the plan into [`crate::cloud::SpawnRequest`]s.

use crate::cloud::SpawnRequest;
use sbft_types::{NodeId, RegionSet, SeqNum};

/// A plan for spawning the executors of one committed batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpawnPlan {
    /// The batch these executors will execute.
    pub seq: SeqNum,
    /// One spawn request per executor, already placed in a region.
    pub requests: Vec<SpawnRequest>,
}

/// The per-node invoker.
#[derive(Clone, Debug)]
pub struct Invoker {
    node: NodeId,
    regions: RegionSet,
    /// Monotonic counter used to rotate the region round-robin across
    /// batches as well as within a batch.
    spawned_so_far: usize,
}

impl Invoker {
    /// Creates the invoker for a shim node.
    #[must_use]
    pub fn new(node: NodeId, regions: RegionSet) -> Self {
        Invoker {
            node,
            regions,
            spawned_so_far: 0,
        }
    }

    /// The node this invoker runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Plans the spawning of `count` executors for the batch at `seq`,
    /// assigning regions round-robin so the executors are spread as evenly
    /// as possible (the paper "tried to evenly split these executors across
    /// these regions").
    pub fn plan(&mut self, seq: SeqNum, count: usize) -> SpawnPlan {
        let requests = (0..count)
            .map(|i| SpawnRequest {
                spawner: self.node,
                region: self.regions.round_robin(self.spawned_so_far + i),
                seq,
            })
            .collect();
        self.spawned_so_far += count;
        SpawnPlan { seq, requests }
    }

    /// Total executors this invoker has planned so far (what the node will
    /// be reimbursed for).
    #[must_use]
    pub fn total_planned(&self) -> usize {
        self.spawned_so_far
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::Region;

    #[test]
    fn plan_spawns_requested_count_for_the_right_batch() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let plan = invoker.plan(SeqNum(5), 3);
        assert_eq!(plan.seq, SeqNum(5));
        assert_eq!(plan.requests.len(), 3);
        assert!(plan.requests.iter().all(|r| r.spawner == NodeId(0)));
        assert!(plan.requests.iter().all(|r| r.seq == SeqNum(5)));
    }

    #[test]
    fn regions_are_assigned_round_robin_within_a_batch() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let plan = invoker.plan(SeqNum(1), 3);
        let regions: Vec<Region> = plan.requests.iter().map(|r| r.region).collect();
        assert_eq!(
            regions,
            vec![Region::NorthCalifornia, Region::Oregon, Region::Ohio]
        );
    }

    #[test]
    fn round_robin_continues_across_batches() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let _ = invoker.plan(SeqNum(1), 2);
        let plan = invoker.plan(SeqNum(2), 2);
        assert_eq!(plan.requests[0].region, Region::Ohio);
        assert_eq!(plan.requests[1].region, Region::NorthCalifornia);
        assert_eq!(invoker.total_planned(), 4);
    }

    #[test]
    fn eleven_executors_over_seven_regions_split_evenly() {
        let mut invoker = Invoker::new(NodeId(2), RegionSet::first_n(7));
        let plan = invoker.plan(SeqNum(1), 11);
        let mut counts = std::collections::BTreeMap::new();
        for r in &plan.requests {
            *counts.entry(r.region).or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn zero_executors_is_an_empty_plan() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::home_only());
        assert!(invoker.plan(SeqNum(1), 0).requests.is_empty());
    }
}
