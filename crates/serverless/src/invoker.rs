//! The invoker deployed on every shim node.
//!
//! "At each shim node, we deploy an invoker to spawn `n_E` executors when
//! indicated by the node's consensus instance. […] our invoker does not
//! wait for the spawned executors to finish and proceeds to spawn the
//! executors for the next client request" (Section VIII). The invoker is a
//! pure planner: given a committed batch it decides how many executors to
//! spawn and in which regions, and the runtime turns the plan into
//! [`crate::cloud::SpawnRequest`]s.
//!
//! # Placement policy
//!
//! The paper spawns round-robin across the enabled regions (Section
//! IX-E). With geo-partitioned storage the invoker can do better: a batch
//! whose replicated [`ShardPlan`] tag says `SingleHome(s)` has its whole
//! read-write footprint in shard `s`'s partition, so its executors are
//! *pinned* to that shard's home region — every storage fetch becomes
//! local. Pinning falls back to the round-robin rotation, deterministically,
//! when the home region is not in the spawnable set, is marked faulted
//! (a [`crate::faults::RegionOutage`]), or lacks spawn capacity for the
//! whole batch. Cross-home and untagged batches keep the paper's
//! rotation. Placement is strictly a performance hint: every executor
//! runs the same deterministic function wherever it lands, so outcomes,
//! responses and final state are identical under any placement — the
//! equivalence proptests pin that down.

use crate::cloud::SpawnRequest;
use sbft_telemetry::{Counter, Registry};
use sbft_types::{NodeId, Region, RegionPartition, RegionSet, SeqNum, ShardPlan};
use std::collections::BTreeSet;

/// A plan for spawning the executors of one committed batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpawnPlan {
    /// The batch these executors will execute.
    pub seq: SeqNum,
    /// One spawn request per executor, already placed in a region.
    pub requests: Vec<SpawnRequest>,
}

/// The per-node invoker.
#[derive(Clone, Debug)]
pub struct Invoker {
    node: NodeId,
    regions: RegionSet,
    /// Monotonic counter used to rotate the region round-robin across
    /// batches as well as within a batch. Advanced identically whether a
    /// batch is pinned or rotated, so the rotation state — and therefore
    /// every later placement decision — is independent of how earlier
    /// batches were placed.
    spawned_so_far: usize,
    /// The shard → home-region map of the geo-partitioned storage.
    /// `None` (the default) reproduces the paper's pure rotation.
    partition: Option<RegionPartition>,
    /// Regions currently believed faulted (region outages observed by
    /// this node); pinning never targets them.
    down_regions: BTreeSet<Region>,
    /// Per-batch spawn capacity of a single region, when the provider
    /// imposes one; a pin that would exceed it falls back to rotation.
    region_capacity: Option<usize>,
    pinned_spawns: Counter,
    placement_fallbacks: Counter,
}

impl Invoker {
    /// Creates the invoker for a shim node (round-robin placement).
    #[must_use]
    pub fn new(node: NodeId, regions: RegionSet) -> Self {
        Invoker {
            node,
            regions,
            spawned_so_far: 0,
            partition: None,
            down_regions: BTreeSet::new(),
            region_capacity: None,
            pinned_spawns: Counter::new(),
            placement_fallbacks: Counter::new(),
        }
    }

    /// Enables plan-aware placement against a geo-partitioned store.
    #[must_use]
    pub fn with_partition(mut self, partition: RegionPartition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Caps how many executors one batch may pin into a single region
    /// (a provider-side per-region concurrency budget).
    #[must_use]
    pub fn with_region_capacity(mut self, capacity: usize) -> Self {
        self.region_capacity = Some(capacity);
        self
    }

    /// The node this invoker runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Marks a region as faulted: pinning avoids it until it recovers.
    pub fn mark_region_down(&mut self, region: Region) {
        self.down_regions.insert(region);
    }

    /// Marks a region as recovered.
    pub fn mark_region_up(&mut self, region: Region) {
        self.down_regions.remove(&region);
    }

    /// Whether `region` is currently marked down on this invoker.
    #[must_use]
    pub fn is_region_down(&self, region: Region) -> bool {
        self.down_regions.contains(&region)
    }

    /// Executors placed by pinning so far.
    #[must_use]
    pub fn pinned_spawns(&self) -> u64 {
        self.pinned_spawns.get()
    }

    /// Batches whose pin was refused (home region missing, faulted or
    /// over capacity) and that fell back to the rotation.
    #[must_use]
    pub fn placement_fallbacks(&self) -> u64 {
        self.placement_fallbacks.get()
    }

    /// Re-homes the placement counters into `registry` under
    /// `shim.<node>.invoker.*`.
    pub fn register_metrics(&mut self, registry: &Registry) {
        let node = self.node.0;
        self.pinned_spawns = registry.counter(&format!("shim.{node}.invoker.pinned_spawns"));
        self.placement_fallbacks =
            registry.counter(&format!("shim.{node}.invoker.placement_fallbacks"));
    }

    /// Plans the spawning of `count` executors for the batch at `seq`,
    /// assigning regions round-robin so the executors are spread as evenly
    /// as possible (the paper "tried to evenly split these executors across
    /// these regions").
    pub fn plan(&mut self, seq: SeqNum, count: usize) -> SpawnPlan {
        self.plan_placed(seq, count, ShardPlan::Unplanned)
    }

    /// Plans the spawning of `count` executors for the batch at `seq`,
    /// consulting the batch's replicated [`ShardPlan`] tag: a verified
    /// geo deployment pins a `SingleHome` batch's executors to its
    /// shard's home region, everything else rotates.
    pub fn plan_placed(&mut self, seq: SeqNum, count: usize, plan: ShardPlan) -> SpawnPlan {
        if count == 0 {
            return SpawnPlan {
                seq,
                requests: Vec::new(),
            };
        }
        if let Some(home) = self.pin_target(plan, count) {
            // Advance the rotation exactly as a rotated batch would have,
            // so later batches place identically either way.
            self.spawned_so_far += count;
            self.pinned_spawns.add(count as u64);
            return SpawnPlan {
                seq,
                requests: (0..count)
                    .map(|_| SpawnRequest {
                        spawner: self.node,
                        region: home,
                        seq,
                    })
                    .collect(),
            };
        }
        if self.partition.is_some() && plan.is_single_home() {
            self.placement_fallbacks.inc();
        }
        let requests = (0..count)
            .map(|i| SpawnRequest {
                spawner: self.node,
                region: self.round_robin_region(self.spawned_so_far + i),
                seq,
            })
            .collect();
        self.spawned_so_far += count;
        SpawnPlan { seq, requests }
    }

    /// The region a `SingleHome` batch would be pinned to, if pinning is
    /// possible: geo placement enabled, the home region spawnable, not
    /// faulted, and within the per-region capacity for the whole batch.
    fn pin_target(&self, plan: ShardPlan, count: usize) -> Option<Region> {
        let partition = self.partition.as_ref()?;
        let home = partition.home_of(plan.home()?);
        let usable = self.regions.contains(home)
            && !self.down_regions.contains(&home)
            && self.region_capacity.is_none_or(|cap| count <= cap);
        usable.then_some(home)
    }

    /// The rotation, skipping faulted regions (unless every region is
    /// down, in which case the plain rotation stands — the cloud will
    /// reject and the recovery path takes over).
    fn round_robin_region(&self, i: usize) -> Region {
        let candidate = self.regions.round_robin(i);
        if self.down_regions.contains(&candidate) {
            if let Some(up) = (0..self.regions.len())
                .map(|step| self.regions.round_robin(i + step))
                .find(|r| !self.down_regions.contains(r))
            {
                return up;
            }
        }
        candidate
    }

    /// Total executors this invoker has planned so far (what the node will
    /// be reimbursed for).
    #[must_use]
    pub fn total_planned(&self) -> usize {
        self.spawned_so_far
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Region, RegionPartition, ShardId};

    fn geo_invoker(regions: usize, shards: usize) -> Invoker {
        let set = RegionSet::first_n(regions);
        Invoker::new(NodeId(0), set.clone()).with_partition(RegionPartition::new(set, shards))
    }

    #[test]
    fn plan_spawns_requested_count_for_the_right_batch() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let plan = invoker.plan(SeqNum(5), 3);
        assert_eq!(plan.seq, SeqNum(5));
        assert_eq!(plan.requests.len(), 3);
        assert!(plan.requests.iter().all(|r| r.spawner == NodeId(0)));
        assert!(plan.requests.iter().all(|r| r.seq == SeqNum(5)));
    }

    #[test]
    fn regions_are_assigned_round_robin_within_a_batch() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let plan = invoker.plan(SeqNum(1), 3);
        let regions: Vec<Region> = plan.requests.iter().map(|r| r.region).collect();
        assert_eq!(
            regions,
            vec![Region::NorthCalifornia, Region::Oregon, Region::Ohio]
        );
    }

    #[test]
    fn round_robin_continues_across_batches() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let _ = invoker.plan(SeqNum(1), 2);
        let plan = invoker.plan(SeqNum(2), 2);
        assert_eq!(plan.requests[0].region, Region::Ohio);
        assert_eq!(plan.requests[1].region, Region::NorthCalifornia);
        assert_eq!(invoker.total_planned(), 4);
    }

    #[test]
    fn eleven_executors_over_seven_regions_split_evenly() {
        let mut invoker = Invoker::new(NodeId(2), RegionSet::first_n(7));
        let plan = invoker.plan(SeqNum(1), 11);
        let mut counts = std::collections::BTreeMap::new();
        for r in &plan.requests {
            *counts.entry(r.region).or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn zero_executors_is_an_empty_plan() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::home_only());
        assert!(invoker.plan(SeqNum(1), 0).requests.is_empty());
    }

    #[test]
    fn single_home_batches_are_pinned_to_their_shards_home_region() {
        let mut invoker = geo_invoker(3, 8);
        // Shard 1 is homed in the second region of the set.
        let plan = invoker.plan_placed(SeqNum(1), 3, ShardPlan::SingleHome(ShardId(1)));
        assert!(plan.requests.iter().all(|r| r.region == Region::Oregon));
        assert_eq!(invoker.pinned_spawns(), 3);
        assert_eq!(invoker.placement_fallbacks(), 0);
    }

    #[test]
    fn cross_home_and_untagged_batches_keep_the_rotation() {
        let mut invoker = geo_invoker(3, 8);
        let cross = invoker.plan_placed(SeqNum(1), 3, ShardPlan::CrossHome);
        let regions: Vec<Region> = cross.requests.iter().map(|r| r.region).collect();
        assert_eq!(
            regions,
            vec![Region::NorthCalifornia, Region::Oregon, Region::Ohio]
        );
        let untagged = invoker.plan_placed(SeqNum(2), 2, ShardPlan::Unplanned);
        assert_eq!(untagged.requests[0].region, Region::NorthCalifornia);
        assert_eq!(invoker.pinned_spawns(), 0);
        assert_eq!(invoker.placement_fallbacks(), 0);
    }

    #[test]
    fn pinning_advances_the_rotation_in_lockstep_with_round_robin() {
        // After one pinned batch of 2, the next rotated batch must start
        // exactly where a rotation-only invoker would have been.
        let mut pinned = geo_invoker(3, 8);
        let _ = pinned.plan_placed(SeqNum(1), 2, ShardPlan::SingleHome(ShardId(1)));
        let mut rotated = Invoker::new(NodeId(0), RegionSet::first_n(3));
        let _ = rotated.plan(SeqNum(1), 2);
        assert_eq!(
            pinned.plan(SeqNum(2), 3).requests,
            rotated.plan(SeqNum(2), 3).requests,
        );
    }

    #[test]
    fn faulted_home_region_falls_back_to_the_rotation() {
        let mut invoker = geo_invoker(3, 8);
        invoker.mark_region_down(Region::Oregon);
        let plan = invoker.plan_placed(SeqNum(1), 3, ShardPlan::SingleHome(ShardId(1)));
        assert!(
            plan.requests.iter().all(|r| r.region != Region::Oregon),
            "the rotation must skip the faulted region too: {plan:?}"
        );
        assert_eq!(invoker.placement_fallbacks(), 1);
        assert_eq!(invoker.pinned_spawns(), 0);
        // Recovery restores the pin.
        invoker.mark_region_up(Region::Oregon);
        let plan = invoker.plan_placed(SeqNum(2), 3, ShardPlan::SingleHome(ShardId(1)));
        assert!(plan.requests.iter().all(|r| r.region == Region::Oregon));
    }

    #[test]
    fn home_region_outside_the_spawnable_set_falls_back() {
        // 2 spawnable regions but 5 shards homed over a 5-region map:
        // shards homed in regions this invoker cannot spawn into rotate.
        let spawnable = RegionSet::first_n(2);
        let mut invoker = Invoker::new(NodeId(0), spawnable)
            .with_partition(RegionPartition::new(RegionSet::first_n(5), 5));
        let plan = invoker.plan_placed(SeqNum(1), 2, ShardPlan::SingleHome(ShardId(4)));
        assert_eq!(plan.requests[0].region, Region::NorthCalifornia);
        assert_eq!(plan.requests[1].region, Region::Oregon);
        assert_eq!(invoker.placement_fallbacks(), 1);
    }

    #[test]
    fn region_capacity_limits_the_pin() {
        let mut invoker = geo_invoker(3, 8).with_region_capacity(2);
        // A 2-executor pin fits the capacity …
        let small = invoker.plan_placed(SeqNum(1), 2, ShardPlan::SingleHome(ShardId(1)));
        assert!(small.requests.iter().all(|r| r.region == Region::Oregon));
        // … a 3-executor pin does not and rotates instead.
        let big = invoker.plan_placed(SeqNum(2), 3, ShardPlan::SingleHome(ShardId(1)));
        let distinct: std::collections::BTreeSet<Region> =
            big.requests.iter().map(|r| r.region).collect();
        assert!(distinct.len() > 1, "over-capacity pin must spread");
        assert_eq!(invoker.placement_fallbacks(), 1);
    }

    #[test]
    fn rotation_skips_faulted_regions_when_possible() {
        let mut invoker = Invoker::new(NodeId(0), RegionSet::first_n(3));
        invoker.mark_region_down(Region::Oregon);
        let plan = invoker.plan(SeqNum(1), 3);
        assert!(plan.requests.iter().all(|r| r.region != Region::Oregon));
        // With every region down the plain rotation stands (the cloud
        // rejects; recovery handles it).
        invoker.mark_region_down(Region::NorthCalifornia);
        invoker.mark_region_down(Region::Ohio);
        let plan = invoker.plan(SeqNum(2), 1);
        assert_eq!(plan.requests.len(), 1);
    }
}
