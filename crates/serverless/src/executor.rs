//! The serverless executor (the "function" uploaded to the cloud).
//!
//! The function the paper deploys to AWS Lambda performs four steps
//! (Section VIII): (i) verify the certificate `C`, (ii) execute the
//! transaction, (iii) fetch the necessary read-write sets from the storage
//! database, and (iv) send the result to the verifier. Executors are
//! stateless ("fleeting"), never write to the storage, never talk to each
//! other, and store intermediate results only locally.

use crate::faults::ExecutorBehavior;
use crate::messages::{ExecuteRequest, VerifyMessage};
use sbft_crypto::CryptoHandle;
use sbft_storage::StorageReader;
use sbft_types::{
    ExecutorId, Key, Operation, ReadWriteSet, Region, SbftError, SbftResult, TxnResult, Value,
};
use std::sync::Arc;

/// A spawned executor instance.
pub struct Executor {
    id: ExecutorId,
    region: Region,
    behavior: ExecutorBehavior,
    crypto: CryptoHandle,
    storage: StorageReader,
    /// Shim size, needed to validate certificate membership.
    n_r: usize,
    /// Commit quorum (`2f_R + 1`) the certificate must reach.
    shim_quorum: usize,
}

/// What an executor produced for one `EXECUTE` request.
#[derive(Clone, Debug)]
pub struct ExecutorOutput {
    /// The `VERIFY` messages to deliver to the verifier (one per copy; a
    /// crashed executor produces none, a flooding one produces several).
    pub verify_messages: Vec<VerifyMessage>,
    /// Modeled compute time spent executing the batch (excluding network),
    /// used by the simulator's cost and latency models.
    pub compute: sbft_types::SimDuration,
}

impl Executor {
    /// Creates an executor instance.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        id: ExecutorId,
        region: Region,
        behavior: ExecutorBehavior,
        crypto: CryptoHandle,
        storage: StorageReader,
        n_r: usize,
        shim_quorum: usize,
    ) -> Self {
        Executor {
            id,
            region,
            behavior,
            crypto,
            storage,
            n_r,
            shim_quorum,
        }
    }

    /// This executor's identifier.
    #[must_use]
    pub fn id(&self) -> ExecutorId {
        self.id
    }

    /// The region this executor was spawned in.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// The behaviour assigned to this executor.
    #[must_use]
    pub fn behavior(&self) -> ExecutorBehavior {
        self.behavior
    }

    /// The deterministic value an honest executor writes for a
    /// read-modify-write of `key` with `salt` over `old`.
    #[must_use]
    pub fn rmw_value(key: Key, salt: u64, old: Value) -> Value {
        Value::with_len(
            old.data.wrapping_mul(31).wrapping_add(salt ^ key.0),
            old.logical_len,
        )
    }

    /// Executes one transaction against the current storage state,
    /// returning its result and observed read-write set.
    fn execute_txn(&self, txn: &sbft_types::Transaction) -> TxnResult {
        let mut rwset = ReadWriteSet::new();
        let mut output = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for op in &txn.ops {
            match *op {
                Operation::Read(key) => {
                    let entry = self.storage.fetch(key);
                    rwset.record_read(key, entry.version);
                    output = (output ^ entry.value.data).wrapping_mul(0x1000_0000_01b3);
                }
                Operation::Write(key, value) => {
                    rwset.record_write(key, value);
                    output = (output ^ value.data).wrapping_mul(0x1000_0000_01b3);
                }
                Operation::ReadModifyWrite(key, salt) => {
                    let entry = self.storage.fetch(key);
                    rwset.record_read(key, entry.version);
                    let new = Self::rmw_value(key, salt, entry.value);
                    rwset.record_write(key, new);
                    output = (output ^ new.data).wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        TxnResult {
            txn: txn.id,
            output,
            rwset,
        }
    }

    /// Handles an `EXECUTE` request end to end: certificate validation,
    /// execution, and construction of the `VERIFY` message(s).
    ///
    /// Returns an error if the request is malformed (bad spawner signature
    /// or an invalid certificate) — honest executors refuse to execute such
    /// requests, which is what defeats the duplicate-spawning attacks of
    /// Section V-C.
    pub fn handle_execute(&self, req: &ExecuteRequest) -> SbftResult<ExecutorOutput> {
        // (i) verify the spawner's signature and the certificate C.
        let signing = ExecuteRequest::signing_digest(req.view, req.seq, &req.digest, req.spawner);
        if !self.crypto.verify(
            sbft_types::ComponentId::Node(req.spawner),
            &signing,
            &req.signature,
        ) {
            return Err(SbftError::BadSignature(format!(
                "EXECUTE for seq {:?} not signed by claimed spawner {}",
                req.seq, req.spawner
            )));
        }
        req.certificate.verify(
            self.crypto.provider().key_store(),
            self.shim_quorum,
            self.n_r,
        )?;
        if req.certificate.seq != req.seq || req.certificate.batch_digest != req.digest {
            return Err(SbftError::BadCertificate(
                "certificate does not cover the batch in the EXECUTE message".into(),
            ));
        }

        if !self.behavior.responds() {
            // A crashed / ignoring executor: bill the spawn, produce nothing.
            return Ok(ExecutorOutput {
                verify_messages: Vec::new(),
                compute: sbft_types::SimDuration::ZERO,
            });
        }

        // (ii)+(iii) execute, fetching read-write sets from storage.
        let mut results: Vec<TxnResult> = req.batch.iter().map(|t| self.execute_txn(t)).collect();
        let compute = req.batch.total_execution_cost();

        if !self.behavior.result_is_correct() {
            // A byzantine executor corrupts its outputs (but keeps the shape
            // of the message well-formed, the hardest case to filter). The
            // corruption is salted with the executor id: independently
            // compromised executors do not accidentally agree with each
            // other, so spawning more than `f_E` of them produces the
            // pairwise-divergent digests the Section VI-B whole-batch
            // abort rule exists for (see the `divergence_sweep` binary).
            let salt = 0xdead_beef ^ self.id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for r in &mut results {
                r.output ^= salt;
                for (_, v) in &mut r.rwset.writes {
                    v.data ^= salt;
                }
            }
        }

        // (iv) build the VERIFY message(s).
        let result_digest = VerifyMessage::digest_of_results(req.seq, &results);
        let base = VerifyMessage {
            executor: self.id,
            view: req.view,
            seq: req.seq,
            batch_id: req.batch.id(),
            batch_digest: req.digest,
            results: results.into(),
            result_digest,
            // A refcount bump: the certificate is shared with the EXECUTE
            // message, not copied.
            certificate: Arc::clone(&req.certificate),
            // Echoed so the verifier learns the ordering-time plan from
            // the quorum it counts (trust-but-verify on its side).
            plan: req.plan,
            signature: self.crypto.sign(&result_digest),
        };
        let copies = self.behavior.verify_copies() as usize;
        Ok(ExecutorOutput {
            verify_messages: vec![base; copies],
            compute,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_crypto::certificate::commit_digest;
    use sbft_crypto::{CommitCertificate, CryptoProvider, SimSigner};
    use sbft_storage::{VersionedStore, YcsbTable};
    use sbft_types::{
        Batch, ClientId, ComponentId, NodeId, SeqNum, Transaction, TxnId, ViewNumber,
    };

    struct Fixture {
        provider: Arc<CryptoProvider>,
        store: Arc<VersionedStore>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                provider: CryptoProvider::new(11),
                store: YcsbTable::populate(1_000).store().clone(),
            }
        }

        fn executor(&self, id: u64, behavior: ExecutorBehavior) -> Executor {
            Executor::new(
                ExecutorId(id),
                Region::Oregon,
                behavior,
                self.provider.handle(ComponentId::Executor(ExecutorId(id))),
                StorageReader::new(Arc::clone(&self.store)),
                4,
                3,
            )
        }

        fn execute_request(&self, batch: Batch, spawner: NodeId) -> ExecuteRequest {
            let digest = sbft_consensus_digest(&batch);
            let cd = commit_digest(ViewNumber(0), SeqNum(1), &digest);
            let entries = (0..3u32)
                .map(|n| {
                    let kp = self
                        .provider
                        .key_store()
                        .keypair_for(ComponentId::Node(NodeId(n)));
                    (NodeId(n), SimSigner::sign(&kp, &cd))
                })
                .collect();
            let certificate = Arc::new(CommitCertificate::new(
                ViewNumber(0),
                SeqNum(1),
                digest,
                entries,
            ));
            let signing =
                ExecuteRequest::signing_digest(ViewNumber(0), SeqNum(1), &digest, spawner);
            let signature = self
                .provider
                .handle(ComponentId::Node(spawner))
                .sign(&signing);
            ExecuteRequest {
                view: ViewNumber(0),
                seq: SeqNum(1),
                digest,
                batch,
                certificate,
                plan: sbft_types::ShardPlan::Unplanned,
                spawner,
                signature,
            }
        }
    }

    /// Batch digest helper mirroring `sbft_consensus::messages::batch_digest`
    /// (the serverless crate does not depend on the consensus crate).
    fn sbft_consensus_digest(batch: &Batch) -> sbft_types::Digest {
        let mut values = Vec::new();
        values.push(batch.len() as u64);
        for txn in batch.txns() {
            values.push(u64::from(txn.id.client.0));
            values.push(txn.id.counter);
        }
        sbft_crypto::digest_u64s("test-batch", &values)
    }

    fn batch() -> Batch {
        Batch::new(vec![
            Transaction::new(
                TxnId::new(ClientId(0), 0),
                vec![
                    Operation::Read(Key(1)),
                    Operation::ReadModifyWrite(Key(2), 42),
                ],
            ),
            Transaction::new(
                TxnId::new(ClientId(1), 0),
                vec![Operation::Write(Key(3), Value::new(99))],
            ),
        ])
    }

    #[test]
    fn honest_executor_produces_one_matching_verify() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let e1 = fx.executor(1, ExecutorBehavior::Honest);
        let e2 = fx.executor(2, ExecutorBehavior::Honest);
        let out1 = e1.handle_execute(&req).unwrap();
        let out2 = e2.handle_execute(&req).unwrap();
        assert_eq!(out1.verify_messages.len(), 1);
        let v1 = &out1.verify_messages[0];
        let v2 = &out2.verify_messages[0];
        assert!(
            v1.matches(v2),
            "honest executors must produce matching results"
        );
        assert_ne!(v1.executor, v2.executor);
        assert_eq!(v1.results.len(), 2);
    }

    #[test]
    fn executor_records_reads_and_writes() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let e = fx.executor(1, ExecutorBehavior::Honest);
        let out = e.handle_execute(&req).unwrap();
        let results = &out.verify_messages[0].results;
        // txn 0: read k1 + rmw k2 → 2 reads, 1 write.
        assert_eq!(results[0].rwset.reads.len(), 2);
        assert_eq!(results[0].rwset.writes.len(), 1);
        // txn 1: blind write to k3.
        assert!(results[1].rwset.reads.is_empty());
        assert_eq!(results[1].rwset.writes.len(), 1);
    }

    #[test]
    fn byzantine_result_does_not_match_honest() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let honest = fx
            .executor(1, ExecutorBehavior::Honest)
            .handle_execute(&req)
            .unwrap();
        let lying = fx
            .executor(2, ExecutorBehavior::WrongResult)
            .handle_execute(&req)
            .unwrap();
        assert!(!honest.verify_messages[0].matches(&lying.verify_messages[0]));
    }

    #[test]
    fn crashed_executor_sends_nothing() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let out = fx
            .executor(1, ExecutorBehavior::Crash)
            .handle_execute(&req)
            .unwrap();
        assert!(out.verify_messages.is_empty());
    }

    #[test]
    fn flooding_executor_sends_duplicates() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let out = fx
            .executor(1, ExecutorBehavior::DuplicateVerify { copies: 4 })
            .handle_execute(&req)
            .unwrap();
        assert_eq!(out.verify_messages.len(), 4);
        assert!(out.verify_messages[0].matches(&out.verify_messages[3]));
    }

    #[test]
    fn invalid_certificate_is_refused() {
        let fx = Fixture::new();
        let mut req = fx.execute_request(batch(), NodeId(0));
        Arc::make_mut(&mut req.certificate).entries.truncate(2); // below quorum
        let e = fx.executor(1, ExecutorBehavior::Honest);
        assert!(matches!(
            e.handle_execute(&req),
            Err(SbftError::BadCertificate(_))
        ));
    }

    #[test]
    fn forged_spawner_signature_is_refused() {
        let fx = Fixture::new();
        let mut req = fx.execute_request(batch(), NodeId(0));
        // Claim node 1 spawned it while keeping node 0's signature.
        req.spawner = NodeId(1);
        let e = fx.executor(1, ExecutorBehavior::Honest);
        assert!(matches!(
            e.handle_execute(&req),
            Err(SbftError::BadSignature(_))
        ));
    }

    #[test]
    fn certificate_for_a_different_batch_is_refused() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let other = fx.execute_request(
            Batch::single(Transaction::new(
                TxnId::new(ClientId(9), 9),
                vec![Operation::Read(Key(5))],
            )),
            NodeId(0),
        );
        // Swap in a certificate that covers a different digest.
        let mut forged = req.clone();
        forged.certificate = other.certificate;
        let e = fx.executor(1, ExecutorBehavior::Honest);
        assert!(e.handle_execute(&forged).is_err());
    }

    #[test]
    fn compute_time_reflects_batch_execution_cost() {
        use sbft_types::SimDuration;
        let fx = Fixture::new();
        let b = Batch::new(
            batch()
                .txns()
                .iter()
                .map(|t| t.clone().with_execution_cost(SimDuration::from_millis(10)))
                .collect(),
        );
        let req = fx.execute_request(b, NodeId(0));
        let out = fx
            .executor(1, ExecutorBehavior::Honest)
            .handle_execute(&req)
            .unwrap();
        assert_eq!(out.compute, SimDuration::from_millis(20));
    }

    #[test]
    fn verify_signature_is_checkable_by_the_verifier() {
        let fx = Fixture::new();
        let req = fx.execute_request(batch(), NodeId(0));
        let out = fx
            .executor(1, ExecutorBehavior::Honest)
            .handle_execute(&req)
            .unwrap();
        let v = &out.verify_messages[0];
        assert!(fx.provider.verify(
            ComponentId::Executor(ExecutorId(1)),
            &v.result_digest,
            &v.signature
        ));
    }
}
