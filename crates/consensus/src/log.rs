//! The per-sequence-number consensus log.
//!
//! Each shim node keeps, per sequence number, the pre-prepare it accepted
//! and the prepare/commit votes it has collected. The log also remembers
//! which entries have reached the *prepared* and *committed* states so the
//! quorum checks are idempotent, and it is garbage-collected below the last
//! stable (featherweight) checkpoint.

use crate::messages::{Commit, Prepare};
use sbft_types::{Batch, Digest, NodeId, SeqNum, ShardPlan, Signature, ViewNumber};
use std::collections::BTreeMap;

/// Log entry for one sequence number.
#[derive(Clone, Debug, Default)]
pub struct LogEntry {
    /// View in which the pre-prepare was accepted.
    pub view: Option<ViewNumber>,
    /// Digest of the accepted batch.
    pub digest: Option<Digest>,
    /// The batch itself (present on nodes that received the pre-prepare).
    pub batch: Option<Batch>,
    /// The ordering-time shard plan carried by the accepted pre-prepare
    /// (re-proposals after a view change re-issue it unchanged).
    pub plan: ShardPlan,
    /// Prepare votes collected, by sender.
    pub prepares: BTreeMap<NodeId, Prepare>,
    /// Commit votes collected, by sender.
    pub commits: BTreeMap<NodeId, Commit>,
    /// Whether the entry reached the prepared state.
    pub prepared: bool,
    /// Whether the entry reached the committed state.
    pub committed: bool,
}

impl LogEntry {
    /// Whether a pre-prepare has been accepted for this entry.
    #[must_use]
    pub fn pre_prepared(&self) -> bool {
        self.digest.is_some()
    }

    /// The commit signatures collected so far, as certificate entries.
    #[must_use]
    pub fn certificate_entries(&self) -> Vec<(NodeId, Signature)> {
        self.commits
            .iter()
            .map(|(node, commit)| (*node, commit.signature))
            .collect()
    }
}

/// The ordered log of consensus entries.
#[derive(Clone, Debug, Default)]
pub struct ConsensusLog {
    entries: BTreeMap<SeqNum, LogEntry>,
    /// Everything at or below this sequence number has been garbage
    /// collected (covered by a stable checkpoint).
    stable_seq: SeqNum,
}

impl ConsensusLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `seq`, created on demand.
    pub fn entry_mut(&mut self, seq: SeqNum) -> &mut LogEntry {
        self.entries.entry(seq).or_default()
    }

    /// The entry for `seq`, if any votes or a pre-prepare were recorded.
    #[must_use]
    pub fn entry(&self, seq: SeqNum) -> Option<&LogEntry> {
        self.entries.get(&seq)
    }

    /// Records an accepted pre-prepare. Returns `false` if a *different*
    /// digest was already accepted at this sequence number in the same view
    /// (the equivocation guard of Figure 3, line 10).
    pub fn accept_pre_prepare(
        &mut self,
        seq: SeqNum,
        view: ViewNumber,
        digest: Digest,
        batch: Batch,
        plan: ShardPlan,
    ) -> bool {
        let entry = self.entry_mut(seq);
        if let (Some(v), Some(d)) = (entry.view, entry.digest) {
            if v == view && d != digest {
                return false;
            }
        }
        // A re-proposal in a later view (after a view change) restarts the
        // agreement for this slot: the prepared state from the old view does
        // not carry over, only commitment does.
        if entry.view != Some(view) && !entry.committed {
            entry.prepared = false;
        }
        entry.view = Some(view);
        entry.digest = Some(digest);
        entry.batch = Some(batch);
        entry.plan = plan;
        true
    }

    /// Adds a prepare vote and returns the number of distinct voters.
    pub fn add_prepare(&mut self, prepare: Prepare) -> usize {
        let entry = self.entry_mut(prepare.seq);
        entry.prepares.insert(prepare.sender, prepare);
        entry.prepares.len()
    }

    /// Adds a commit vote and returns the number of distinct voters.
    pub fn add_commit(&mut self, commit: Commit) -> usize {
        let entry = self.entry_mut(commit.seq);
        entry.commits.insert(commit.sender, commit);
        entry.commits.len()
    }

    /// Sequence numbers that are prepared but not yet committed (reported
    /// in `VIEWCHANGE` messages).
    #[must_use]
    pub fn prepared_uncommitted(&self) -> Vec<(SeqNum, ViewNumber, Digest)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.prepared && !e.committed)
            .filter_map(|(seq, e)| Some((*seq, e.view?, e.digest?)))
            .collect()
    }

    /// Highest sequence number with any record in the log.
    #[must_use]
    pub fn max_seq(&self) -> SeqNum {
        self.entries.keys().next_back().copied().unwrap_or_default()
    }

    /// Highest committed sequence number.
    #[must_use]
    pub fn max_committed(&self) -> SeqNum {
        self.entries
            .iter()
            .filter(|(_, e)| e.committed)
            .map(|(s, _)| *s)
            .next_back()
            .unwrap_or_default()
    }

    /// Whether the entry at `seq` is committed.
    #[must_use]
    pub fn is_committed(&self, seq: SeqNum) -> bool {
        self.entries.get(&seq).is_some_and(|e| e.committed)
    }

    /// The last stable checkpoint sequence number.
    #[must_use]
    pub fn stable_seq(&self) -> SeqNum {
        self.stable_seq
    }

    /// Garbage-collects every entry at or below `seq` (a new stable
    /// checkpoint). Entries above are kept.
    pub fn collect_below(&mut self, seq: SeqNum) {
        self.stable_seq = self.stable_seq.max(seq);
        self.entries.retain(|s, _| *s > seq);
    }

    /// Number of live entries (for tests and memory accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no live entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence numbers at or below `seq` that this node has *not*
    /// committed — the gaps a featherweight checkpoint lets a node in the
    /// dark detect.
    #[must_use]
    pub fn missing_up_to(&self, seq: SeqNum) -> Vec<SeqNum> {
        (self.stable_seq.0 + 1..=seq.0)
            .map(SeqNum)
            .filter(|s| !self.is_committed(*s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, MacTag, Operation, Transaction, TxnId};

    fn batch() -> Batch {
        Batch::single(Transaction::new(
            TxnId::new(ClientId(0), 0),
            vec![Operation::Read(Key(1))],
        ))
    }

    fn digest(n: u8) -> Digest {
        Digest::from_bytes([n; 32])
    }

    fn prepare(seq: u64, sender: u32) -> Prepare {
        Prepare {
            view: ViewNumber(0),
            seq: SeqNum(seq),
            digest: digest(1),
            sender: NodeId(sender),
            mac: MacTag::ZERO,
        }
    }

    fn commit(seq: u64, sender: u32) -> Commit {
        Commit {
            view: ViewNumber(0),
            seq: SeqNum(seq),
            digest: digest(1),
            sender: NodeId(sender),
            signature: Signature::ZERO,
        }
    }

    #[test]
    fn accept_pre_prepare_rejects_equivocation() {
        let plan = ShardPlan::Unplanned;
        let mut log = ConsensusLog::new();
        assert!(log.accept_pre_prepare(SeqNum(1), ViewNumber(0), digest(1), batch(), plan));
        // Same digest again is fine (duplicate delivery).
        assert!(log.accept_pre_prepare(SeqNum(1), ViewNumber(0), digest(1), batch(), plan));
        // A different digest at the same (view, seq) is equivocation.
        assert!(!log.accept_pre_prepare(SeqNum(1), ViewNumber(0), digest(2), batch(), plan));
        // A different digest in a *new* view is allowed (view change re-proposal).
        assert!(log.accept_pre_prepare(SeqNum(1), ViewNumber(1), digest(2), batch(), plan));
    }

    #[test]
    fn accepted_plan_is_stored_on_the_entry() {
        let mut log = ConsensusLog::new();
        let plan = ShardPlan::SingleHome(sbft_types::ShardId(3));
        assert!(log.accept_pre_prepare(SeqNum(1), ViewNumber(0), digest(1), batch(), plan));
        assert_eq!(log.entry(SeqNum(1)).unwrap().plan, plan);
    }

    #[test]
    fn votes_count_distinct_senders_only() {
        let mut log = ConsensusLog::new();
        assert_eq!(log.add_prepare(prepare(1, 0)), 1);
        assert_eq!(
            log.add_prepare(prepare(1, 0)),
            1,
            "duplicate sender not counted"
        );
        assert_eq!(log.add_prepare(prepare(1, 1)), 2);
        assert_eq!(log.add_commit(commit(1, 2)), 1);
        assert_eq!(log.add_commit(commit(1, 3)), 2);
    }

    #[test]
    fn certificate_entries_mirror_commit_votes() {
        let mut log = ConsensusLog::new();
        log.add_commit(commit(1, 0));
        log.add_commit(commit(1, 2));
        let entries = log.entry(SeqNum(1)).unwrap().certificate_entries();
        let nodes: Vec<u32> = entries.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 2]);
    }

    #[test]
    fn prepared_uncommitted_reports_in_flight_entries() {
        let mut log = ConsensusLog::new();
        log.accept_pre_prepare(
            SeqNum(1),
            ViewNumber(0),
            digest(1),
            batch(),
            ShardPlan::Unplanned,
        );
        log.entry_mut(SeqNum(1)).prepared = true;
        log.accept_pre_prepare(
            SeqNum(2),
            ViewNumber(0),
            digest(1),
            batch(),
            ShardPlan::Unplanned,
        );
        log.entry_mut(SeqNum(2)).prepared = true;
        log.entry_mut(SeqNum(2)).committed = true;
        let pending = log.prepared_uncommitted();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, SeqNum(1));
    }

    #[test]
    fn garbage_collection_drops_old_entries() {
        let mut log = ConsensusLog::new();
        for s in 1..=10 {
            log.accept_pre_prepare(
                SeqNum(s),
                ViewNumber(0),
                digest(1),
                batch(),
                ShardPlan::Unplanned,
            );
            log.entry_mut(SeqNum(s)).committed = true;
        }
        assert_eq!(log.len(), 10);
        log.collect_below(SeqNum(7));
        assert_eq!(log.len(), 3);
        assert_eq!(log.stable_seq(), SeqNum(7));
        assert!(log.entry(SeqNum(7)).is_none());
        assert!(log.entry(SeqNum(8)).is_some());
    }

    #[test]
    fn missing_up_to_finds_gaps() {
        let mut log = ConsensusLog::new();
        for s in [1u64, 2, 4, 6] {
            log.entry_mut(SeqNum(s)).committed = true;
        }
        assert_eq!(log.missing_up_to(SeqNum(6)), vec![SeqNum(3), SeqNum(5)]);
        assert_eq!(log.max_committed(), SeqNum(6));
        log.collect_below(SeqNum(3));
        // Gaps below the stable checkpoint no longer count as missing.
        assert_eq!(log.missing_up_to(SeqNum(6)), vec![SeqNum(5)]);
    }

    #[test]
    fn max_seq_tracks_highest_entry() {
        let mut log = ConsensusLog::new();
        assert_eq!(log.max_seq(), SeqNum(0));
        log.entry_mut(SeqNum(5));
        log.entry_mut(SeqNum(3));
        assert_eq!(log.max_seq(), SeqNum(5));
    }
}
