//! Consensus messages exchanged between shim nodes.
//!
//! The PBFT messages follow Figure 3 of the paper. `PREPREPARE` and
//! `PREPARE` are authenticated with MACs (cheaper, no non-repudiation
//! needed); `COMMIT` carries a digital signature because the primary later
//! assembles the commit signatures into the execution certificate `C`
//! shipped to the serverless executors. The CFT baseline messages carry no
//! authentication at all, which is exactly why `ServerlessCFT` outperforms
//! PBFT in Figure 7.

use sbft_crypto::{CommitCertificate, U64Hasher};
use sbft_durability::RecoveredEntry;
use sbft_types::{
    Batch, Digest, MacTag, NodeId, SeqNum, ShardPlan, Signature, Transaction, TxnId, ViewNumber,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fixed per-message framing overhead (transport headers, message type
/// tags, lengths) used by the wire-size model.
pub const FRAMING_OVERHEAD: usize = 120;

/// `PREPREPARE(⟨T⟩_C, Δ, k)`: the primary proposes ordering batch `Δ` at
/// sequence `k` in view `v` (MAC-authenticated).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PrePrepare {
    /// Current view.
    pub view: ViewNumber,
    /// Proposed sequence number.
    pub seq: SeqNum,
    /// Digest of the batch, `Δ = H(m)`.
    pub digest: Digest,
    /// The full batch of client transactions.
    pub batch: Batch,
    /// The ordering-time shard plan the batcher computed for this batch.
    /// Replicated alongside the batch so every node (and, after a view
    /// change, every future primary) spawns executors with the same tag.
    /// Deliberately *not* covered by the MAC or the digest: it is a
    /// trust-but-verify hint that the verifier re-derives before acting
    /// on it (see `sbft_types::plan`), so authenticating a byzantine
    /// primary's claim would buy nothing.
    pub plan: ShardPlan,
    /// MAC over the header fields from the primary.
    pub mac: MacTag,
}

/// A 512-bit bloom filter over the transaction ids of a proposed batch,
/// carried inside [`DigestPrePrepare`] (the shape of Iroha's on-demand
/// ordering proposals). Its job is proposal self-consistency: every id the
/// proposal lists must be a member, so a replica can reject a malformed
/// proposal before spending a fetch round-trip, and a replica holding
/// bodies the primary never listed can cheaply see they are not part of
/// the batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TxnBloom {
    bits: [u64; 8],
}

impl TxnBloom {
    /// Number of bits in the filter (64 bytes on the wire).
    pub const BITS: usize = 512;
    /// Number of hash probes per id.
    const K: u64 = 3;

    /// An empty filter.
    #[must_use]
    pub fn new() -> Self {
        TxnBloom { bits: [0; 8] }
    }

    /// A filter containing every id in `ids`.
    #[must_use]
    pub fn from_ids(ids: &[TxnId]) -> Self {
        let mut bloom = TxnBloom::new();
        for id in ids {
            bloom.insert(*id);
        }
        bloom
    }

    /// Splitmix64 finalizer: the mixing function behind the probe indexes.
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// The double-hashing probe sequence for an id.
    fn probes(id: TxnId) -> impl Iterator<Item = usize> {
        let base = Self::mix(u64::from(id.client.0).wrapping_shl(32) ^ id.counter);
        let step = Self::mix(base ^ 0x9e37_79b9_7f4a_7c15) | 1;
        (0..Self::K).map(move |i| (base.wrapping_add(i.wrapping_mul(step)) % 512) as usize)
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: TxnId) {
        for p in Self::probes(id) {
            self.bits[p / 64] |= 1 << (p % 64);
        }
    }

    /// Whether the id may be a member (no false negatives; false positives
    /// at the usual bloom rate — harmless here, membership is only a
    /// pre-check before the digest comparison).
    #[must_use]
    pub fn contains(&self, id: TxnId) -> bool {
        Self::probes(id).all(|p| self.bits[p / 64] & (1 << (p % 64)) != 0)
    }

    /// Bytes this filter occupies on the wire.
    #[must_use]
    pub fn wire_size() -> usize {
        Self::BITS / 8
    }
}

impl Default for TxnBloom {
    fn default() -> Self {
        Self::new()
    }
}

/// `DIGEST-PREPREPARE(Δ, ids, bloom, k)`: the bandwidth-frugal form of the
/// proposal. Instead of re-shipping every transaction body to every
/// replica, the primary sends the batch digest, the ordered transaction
/// ids (compact 4-byte delta encoding on the wire) and a bloom filter over
/// them; replicas reconstruct the batch from the bodies they already hold
/// from client submission and fetch only what they miss via
/// [`BatchFetch`]/[`BatchFill`]. The digest pins the proposal exactly as
/// in the full-body path: no vote is cast before the reconstructed batch
/// hashes to `Δ`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DigestPrePrepare {
    /// Current view.
    pub view: ViewNumber,
    /// Proposed sequence number.
    pub seq: SeqNum,
    /// Digest of the proposed batch, `Δ = H(m)`.
    pub digest: Digest,
    /// Ids of the batch's transactions, in batch order.
    pub txn_ids: Vec<TxnId>,
    /// Bloom filter over `txn_ids` (proposal self-consistency check).
    pub bloom: TxnBloom,
    /// The ordering-time shard plan (same trust-but-verify rules as in
    /// [`PrePrepare`]).
    pub plan: ShardPlan,
    /// MAC over the header fields from the primary.
    pub mac: MacTag,
}

/// `BATCHFETCH`: a replica reconstructing a digest proposal asks the
/// primary for the transaction bodies it misses — or, after a digest
/// mismatch, for the full batch (`full = true`).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BatchFetch {
    /// The requesting replica.
    pub sender: NodeId,
    /// View of the proposal being reconstructed.
    pub view: ViewNumber,
    /// Sequence number of the proposal.
    pub seq: SeqNum,
    /// The proposal digest the request is keyed on.
    pub digest: Digest,
    /// Ids of the bodies the sender misses (empty when `full`).
    pub missing: Vec<TxnId>,
    /// Request the entire batch instead of individual bodies (fallback
    /// after a reconstruction digest mismatch).
    pub full: bool,
    /// MAC over the request header.
    pub mac: MacTag,
}

/// `BATCHFILL`: the bodies answering a [`BatchFetch`]. Unauthenticated —
/// the proposal digest self-certifies the reconstructed batch, so a
/// poisoned fill can only fail the digest check, never corrupt state.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BatchFill {
    /// The responding node.
    pub sender: NodeId,
    /// Sequence number of the proposal being filled.
    pub seq: SeqNum,
    /// The proposal digest the fill is keyed on.
    pub digest: Digest,
    /// The requested transaction bodies (the whole batch when `full`).
    pub bodies: Vec<Transaction>,
    /// Whether this fill carries the entire batch.
    pub full: bool,
}

/// `PREPARE(Δ, k)`: a node supports ordering the batch with digest `Δ` at
/// sequence `k` (MAC-authenticated).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Prepare {
    /// Current view.
    pub view: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the batch.
    pub digest: Digest,
    /// Sender of the message.
    pub sender: NodeId,
    /// MAC over the header fields.
    pub mac: MacTag,
}

/// `⟨COMMIT(Δ, k)⟩_R`: a node commits the batch; digitally signed so the
/// signature can be embedded in the execution certificate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Commit {
    /// Current view.
    pub view: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the batch.
    pub digest: Digest,
    /// Sender of the message.
    pub sender: NodeId,
    /// Digital signature over the commit digest.
    pub signature: Signature,
}

/// A `(seq, digest, view)` tuple proving a request prepared at the sender,
/// carried inside `VIEWCHANGE` messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PreparedProof {
    /// Sequence number of the prepared request.
    pub seq: SeqNum,
    /// Digest of the prepared batch.
    pub digest: Digest,
    /// View in which it prepared.
    pub view: ViewNumber,
}

/// `VIEWCHANGE`: a node requests replacing the primary of `new_view - 1`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ViewChange {
    /// The view the sender wants to move to.
    pub new_view: ViewNumber,
    /// Sender of the message.
    pub sender: NodeId,
    /// Sequence number of the sender's last stable checkpoint.
    pub last_stable_seq: SeqNum,
    /// Requests prepared at the sender above the stable checkpoint.
    pub prepared: Vec<PreparedProof>,
    /// Digital signature over the message digest.
    pub signature: Signature,
}

/// `NEWVIEW`: the primary of the new view proves the view change is
/// justified and re-proposes in-flight requests.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct NewView {
    /// The view being installed.
    pub new_view: ViewNumber,
    /// Sender (the new primary).
    pub sender: NodeId,
    /// The nodes whose `VIEWCHANGE` messages justify this new view.
    pub view_change_senders: Vec<NodeId>,
    /// Pre-prepares re-issued for requests that prepared in earlier views.
    pub reissued: Vec<PrePrepare>,
    /// Digital signature over the message digest.
    pub signature: Signature,
}

/// A featherweight `CHECKPOINT` (Section V-B): only the signed commit
/// certificates since the last checkpoint, because shim nodes neither
/// execute requests nor store application data.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Sequence number this checkpoint covers (inclusive).
    pub seq: SeqNum,
    /// Sender of the message.
    pub sender: NodeId,
    /// Commit certificates for every sequence number since the previous
    /// checkpoint, proving those requests committed. Shared by reference
    /// count with the replica's own certificate store, so building a
    /// checkpoint copies no signatures.
    pub certificates: Vec<Arc<CommitCertificate>>,
    /// Digital signature over the checkpoint digest.
    pub signature: Signature,
}

/// `STATEREQUEST`: a crash-restarted replica asks its peers for the
/// committed suffix above what its durable log reconstructed. Signed so
/// byzantine nodes cannot trigger transfer storms in someone else's name.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StateRequest {
    /// The recovering replica.
    pub sender: NodeId,
    /// Highest sequence number the sender already holds; peers reply
    /// with committed entries strictly above it.
    pub above: SeqNum,
    /// Digital signature over the request digest.
    pub signature: Signature,
}

/// `STATERESPONSE`: a peer ships committed entries (batch + certificate)
/// above the requested floor. Unsigned: each entry's `2f_R + 1`-signer
/// commit certificate self-certifies, so the recovering replica verifies
/// the certificates rather than trusting the sender. The receiver adopts
/// each sequence at most once (duplicated or replayed responses are
/// idempotent), rejects garbage entries per sender, and treats
/// `stable_seq` as a checkpoint-floor claim for the catch-up path when
/// its own floor fell below every peer's retention boundary.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StateResponse {
    /// The responding peer.
    pub sender: NodeId,
    /// The responder's stable-checkpoint floor (tells the recovering
    /// replica how far behind it could possibly be).
    pub stable_seq: SeqNum,
    /// Committed entries above the requested floor, in sequence order.
    pub entries: Vec<RecoveredEntry>,
}

/// CFT (Multi-Paxos-style) accept message from the leader.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CftAccept {
    /// Leader's ballot (plays the role of the view).
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// The batch being replicated.
    pub batch: Batch,
    /// Digest of the batch.
    pub digest: Digest,
    /// The ordering-time shard plan (same trust-but-verify rules as in
    /// [`PrePrepare`]).
    pub plan: ShardPlan,
}

/// CFT acknowledgment from a follower.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CftAccepted {
    /// Leader's ballot.
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the accepted batch.
    pub digest: Digest,
    /// Sender of the acknowledgment.
    pub sender: NodeId,
}

/// CFT commit notification from the leader.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CftDecide {
    /// Leader's ballot.
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the decided batch.
    pub digest: Digest,
}

/// All messages understood by the shim ordering protocols.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ConsensusMessage {
    /// PBFT pre-prepare.
    PrePrepare(PrePrepare),
    /// PBFT pre-prepare in digest-proposal mode (ids + bloom, no bodies).
    DigestPrePrepare(DigestPrePrepare),
    /// Request for missing transaction bodies of a digest proposal.
    BatchFetch(BatchFetch),
    /// Bodies answering a [`BatchFetch`].
    BatchFill(BatchFill),
    /// PBFT prepare.
    Prepare(Prepare),
    /// PBFT commit.
    Commit(Commit),
    /// PBFT view change request.
    ViewChange(ViewChange),
    /// PBFT new-view installation.
    NewView(NewView),
    /// Featherweight checkpoint.
    Checkpoint(Checkpoint),
    /// State-transfer request from a crash-restarted replica.
    StateRequest(StateRequest),
    /// State-transfer response carrying the committed suffix.
    StateResponse(StateResponse),
    /// CFT accept (leader → followers).
    CftAccept(CftAccept),
    /// CFT accepted (follower → leader).
    CftAccepted(CftAccepted),
    /// CFT decide (leader → followers).
    CftDecide(CftDecide),
}

impl ConsensusMessage {
    /// Short name used in traces and metrics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ConsensusMessage::PrePrepare(_) => "PREPREPARE",
            ConsensusMessage::DigestPrePrepare(_) => "DIGEST-PREPREPARE",
            ConsensusMessage::BatchFetch(_) => "BATCHFETCH",
            ConsensusMessage::BatchFill(_) => "BATCHFILL",
            ConsensusMessage::Prepare(_) => "PREPARE",
            ConsensusMessage::Commit(_) => "COMMIT",
            ConsensusMessage::ViewChange(_) => "VIEWCHANGE",
            ConsensusMessage::NewView(_) => "NEWVIEW",
            ConsensusMessage::Checkpoint(_) => "CHECKPOINT",
            ConsensusMessage::StateRequest(_) => "STATEREQUEST",
            ConsensusMessage::StateResponse(_) => "STATERESPONSE",
            ConsensusMessage::CftAccept(_) => "CFT-ACCEPT",
            ConsensusMessage::CftAccepted(_) => "CFT-ACCEPTED",
            ConsensusMessage::CftDecide(_) => "CFT-DECIDE",
        }
    }

    /// Modeled wire size in bytes. With the default 100-transaction batch
    /// the sizes land near the paper's reported numbers
    /// (`PREPREPARE` 5392 B, `PREPARE` 216 B, `COMMIT` 220 B).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            ConsensusMessage::PrePrepare(m) => {
                FRAMING_OVERHEAD + 16 + 32 + 32 + 5 + m.batch.wire_size()
            }
            ConsensusMessage::DigestPrePrepare(m) => {
                // Header (view + seq) + digest + MAC + plan tag + id count
                // + bloom + the id list. The ids ride as a compact 4-byte
                // delta encoding against the batch's first id (consecutive
                // counters from a bounded client set), not as full 12-byte
                // ids — that compaction is the whole point of the message.
                FRAMING_OVERHEAD
                    + 16
                    + 32
                    + 32
                    + 5
                    + 8
                    + TxnBloom::wire_size()
                    + m.txn_ids.len() * 4
            }
            ConsensusMessage::BatchFetch(m) => {
                // Header + sender + digest + MAC + full flag + id count +
                // full 12-byte ids (no delta locality in a miss set).
                FRAMING_OVERHEAD + 16 + 4 + 32 + 32 + 1 + 8 + m.missing.len() * 12
            }
            ConsensusMessage::BatchFill(m) => {
                // Bodies ship in the batch's compact per-txn encoding —
                // digest-verified on arrival, so no client signatures ride
                // along.
                FRAMING_OVERHEAD
                    + 8
                    + 4
                    + 32
                    + 1
                    + 8
                    + m.bodies
                        .iter()
                        .map(|t| 16 + t.ops.len() * 17 + 20)
                        .sum::<usize>()
            }
            ConsensusMessage::Prepare(_) => FRAMING_OVERHEAD + 16 + 32 + 4 + 32,
            ConsensusMessage::Commit(_) => FRAMING_OVERHEAD + 16 + 32 + 4 + 64,
            ConsensusMessage::ViewChange(m) => {
                FRAMING_OVERHEAD + 16 + 4 + 64 + m.prepared.len() * 48
            }
            ConsensusMessage::NewView(m) => {
                // Each justifying view-change sender is charged with the
                // 64-byte signature that proves its VIEWCHANGE (id alone
                // under-counted the proof); each reissued pre-prepare
                // carries its MAC and replicated plan tag like the
                // standalone message does.
                FRAMING_OVERHEAD
                    + 16
                    + 4
                    + 64
                    + m.view_change_senders.len() * (4 + 64)
                    + m.reissued
                        .iter()
                        .map(|pp| 48 + 32 + 5 + pp.batch.wire_size())
                        .sum::<usize>()
            }
            ConsensusMessage::Checkpoint(m) => {
                FRAMING_OVERHEAD
                    + 8
                    + 4
                    + 64
                    + m.certificates.iter().map(|c| c.wire_size()).sum::<usize>()
            }
            ConsensusMessage::StateRequest(_) => FRAMING_OVERHEAD + 4 + 8 + 64,
            ConsensusMessage::StateResponse(m) => {
                FRAMING_OVERHEAD
                    + 4
                    + 8
                    + m.entries
                        .iter()
                        // seq + view + entry framing + replicated plan tag,
                        // then the batch and its self-certifying commit
                        // certificate.
                        .map(|e| 24 + 5 + e.batch.wire_size() + e.certificate.wire_size())
                        .sum::<usize>()
            }
            ConsensusMessage::CftAccept(m) => FRAMING_OVERHEAD + 16 + 32 + 5 + m.batch.wire_size(),
            ConsensusMessage::CftAccepted(_) => FRAMING_OVERHEAD + 16 + 32 + 4,
            ConsensusMessage::CftDecide(_) => FRAMING_OVERHEAD + 16 + 32,
        }
    }

    /// Whether this message is digitally signed (as opposed to MAC-only or
    /// unauthenticated); signed messages cost more CPU in the cost model.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        matches!(
            self,
            ConsensusMessage::Commit(_)
                | ConsensusMessage::ViewChange(_)
                | ConsensusMessage::NewView(_)
                | ConsensusMessage::Checkpoint(_)
                | ConsensusMessage::StateRequest(_)
        )
    }
}

/// The digest a node signs or MACs for a `(view, seq, batch-digest)` header.
#[must_use]
pub fn header_digest(label: &str, view: ViewNumber, seq: SeqNum, digest: &Digest) -> Digest {
    let mut h = U64Hasher::new(label);
    h.push(view.0);
    h.push(seq.0);
    h.push_digest(digest);
    h.finish()
}

/// Digest of a batch of transactions (`Δ = H(m)`): hashes the transaction
/// identifiers and operation structure.
///
/// The result is memoized on the batch value: the primary computes it
/// once when it proposes, every replica computes it once when it checks
/// the `PREPREPARE`, and every clone taken afterwards (log entries,
/// re-proposals, certificates) reuses the cached digest.
#[must_use]
pub fn batch_digest(batch: &Batch) -> Digest {
    batch.digest_memo(|| compute_batch_digest(batch))
}

/// Computes the batch digest from scratch, bypassing the memo (the cache
/// regression tests compare this against [`batch_digest`]).
///
/// The format is streamable: transactions are absorbed one at a time
/// (each is self-delimiting — its operation count precedes its
/// operations) and the batch length seals the hash at the end. That is
/// what lets the batching front-end absorb each transaction as it
/// arrives ([`BatchDigestAccumulator`]) and hand consensus a batch whose
/// digest memo is already filled, taking the whole digest computation
/// off the submit hot path.
#[must_use]
pub fn compute_batch_digest(batch: &Batch) -> Digest {
    let mut acc = BatchDigestAccumulator::new();
    for txn in batch.txns() {
        acc.absorb(txn);
    }
    acc.finish()
}

/// Incrementally computes [`compute_batch_digest`] one transaction at a
/// time, so the cost is paid as transactions arrive instead of all at
/// once when the batch is proposed.
#[derive(Clone, Debug)]
pub struct BatchDigestAccumulator {
    hasher: U64Hasher,
    absorbed: u64,
}

impl BatchDigestAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        BatchDigestAccumulator {
            hasher: U64Hasher::new("sbft-batch"),
            absorbed: 0,
        }
    }

    /// Absorbs the next transaction of the batch (in batch order).
    pub fn absorb(&mut self, txn: &sbft_types::Transaction) {
        self.hasher.push(u64::from(txn.id.client.0));
        self.hasher.push(txn.id.counter);
        self.hasher.push(txn.ops.len() as u64);
        for op in &txn.ops {
            self.hasher.push(op.key().0);
            self.hasher.push(u64::from(op.is_write()));
        }
        self.absorbed += 1;
    }

    /// Number of transactions absorbed so far.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Seals the hash with the batch length and produces the digest.
    #[must_use]
    pub fn finish(self) -> Digest {
        let mut hasher = self.hasher;
        hasher.push(self.absorbed);
        hasher.finish()
    }
}

impl Default for BatchDigestAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, Operation, Transaction, TxnId};

    fn batch(n: usize) -> Batch {
        Batch::new(
            (0..n)
                .map(|i| {
                    Transaction::new(
                        TxnId::new(ClientId(0), i as u64),
                        vec![Operation::Read(Key(i as u64))],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn batch_digest_is_deterministic_and_sensitive() {
        let b = batch(10);
        assert_eq!(batch_digest(&b), batch_digest(&b));
        let mut txns: Vec<Transaction> = batch(10).txns().to_vec();
        txns[3] = Transaction::new(txns[3].id, vec![Operation::ReadModifyWrite(Key(3), 1)]);
        let other = Batch::new(txns);
        assert_ne!(batch_digest(&b), batch_digest(&other));
        assert_ne!(batch_digest(&b), batch_digest(&batch(11)));
    }

    #[test]
    fn batch_digest_memo_matches_fresh_computation_and_follows_clones() {
        let b = batch(25);
        let memoized = batch_digest(&b);
        assert_eq!(memoized, compute_batch_digest(&b));
        assert_eq!(b.cached_digest(), Some(memoized));
        // A clone taken after the computation carries the cache.
        let clone = b.clone();
        assert_eq!(clone.cached_digest(), Some(memoized));
        assert!(clone.shares_txns(&b));
    }

    #[test]
    fn incremental_accumulator_matches_one_shot_digest() {
        for n in [1usize, 7, 100] {
            let b = batch(n);
            let mut acc = BatchDigestAccumulator::new();
            for txn in b.txns() {
                acc.absorb(txn);
            }
            assert_eq!(acc.absorbed(), n as u64);
            assert_eq!(acc.finish(), compute_batch_digest(&b), "batch of {n}");
        }
    }

    #[test]
    fn accumulator_is_length_sealed() {
        // A 2-txn stream and a 3-txn stream sharing a prefix must differ
        // even before the extra transaction is absorbed — the trailing
        // length seal guarantees it.
        let b3 = batch(3);
        let mut two = BatchDigestAccumulator::new();
        two.absorb(&b3.txns()[0]);
        two.absorb(&b3.txns()[1]);
        assert_ne!(two.finish(), compute_batch_digest(&b3));
    }

    #[test]
    fn header_digest_binds_all_fields() {
        let d = batch_digest(&batch(3));
        let base = header_digest("prepare", ViewNumber(0), SeqNum(1), &d);
        assert_ne!(base, header_digest("prepare", ViewNumber(1), SeqNum(1), &d));
        assert_ne!(base, header_digest("prepare", ViewNumber(0), SeqNum(2), &d));
        assert_ne!(base, header_digest("commit", ViewNumber(0), SeqNum(1), &d));
    }

    #[test]
    fn preprepare_size_near_paper_for_batch_100() {
        let b = batch(100);
        let msg = ConsensusMessage::PrePrepare(PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b,
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        let size = msg.wire_size();
        assert!(
            (4_800..=6_500).contains(&size),
            "PREPREPARE size {size} should be near the paper's 5392 B"
        );
    }

    #[test]
    fn prepare_and_commit_sizes_near_paper() {
        let prepare = ConsensusMessage::Prepare(Prepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            mac: MacTag::ZERO,
        });
        let commit = ConsensusMessage::Commit(Commit {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            signature: Signature::ZERO,
        });
        assert!(
            (150..=280).contains(&prepare.wire_size()),
            "{}",
            prepare.wire_size()
        );
        assert!(
            (180..=300).contains(&commit.wire_size()),
            "{}",
            commit.wire_size()
        );
        assert!(commit.wire_size() > prepare.wire_size());
    }

    #[test]
    fn signed_flag_matches_message_kind() {
        let prepare = ConsensusMessage::Prepare(Prepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            mac: MacTag::ZERO,
        });
        let commit = ConsensusMessage::Commit(Commit {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            signature: Signature::ZERO,
        });
        assert!(!prepare.is_signed());
        assert!(commit.is_signed());
        assert_eq!(prepare.kind(), "PREPARE");
        assert_eq!(commit.kind(), "COMMIT");
    }

    #[test]
    fn txn_bloom_has_no_false_negatives_and_few_false_positives() {
        let ids: Vec<TxnId> = (0..100u64)
            .map(|i| TxnId::new(ClientId(i as u32 % 7), i))
            .collect();
        let bloom = TxnBloom::from_ids(&ids);
        for id in &ids {
            assert!(bloom.contains(*id), "no false negatives: {id:?}");
        }
        // 100 ids in 512 bits with k = 3 gives a false-positive rate around
        // 10%; well under half of a disjoint probe set must pass.
        let false_positives = (1_000..3_000u64)
            .map(|i| TxnId::new(ClientId(99), i))
            .filter(|id| bloom.contains(*id))
            .count();
        assert!(
            false_positives < 600,
            "false-positive rate too high: {false_positives}/2000"
        );
        assert!(!TxnBloom::new().contains(ids[0]));
        assert_eq!(TxnBloom::wire_size(), 64);
    }

    #[test]
    fn digest_preprepare_is_far_smaller_than_full_preprepare() {
        let b = batch(100);
        let full = ConsensusMessage::PrePrepare(PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        let ids = b.txn_ids();
        let digest = ConsensusMessage::DigestPrePrepare(DigestPrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            bloom: TxnBloom::from_ids(&ids),
            txn_ids: ids,
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        // Pinned: 120 framing + 16 header + 32 digest + 32 mac + 5 plan +
        // 8 count + 64 bloom + 100 × 4 delta-encoded ids.
        assert_eq!(digest.wire_size(), 677);
        assert!(
            full.wire_size() >= 5 * digest.wire_size(),
            "digest proposal must be at least 5x smaller ({} vs {})",
            full.wire_size(),
            digest.wire_size()
        );
        assert_eq!(digest.kind(), "DIGEST-PREPREPARE");
        assert!(!digest.is_signed(), "digest pre-prepares are MAC-only");
    }

    #[test]
    fn fetch_and_fill_sizes_scale_with_the_missing_set() {
        let b = batch(10);
        let fetch = |missing: Vec<TxnId>| {
            ConsensusMessage::BatchFetch(BatchFetch {
                sender: NodeId(2),
                view: ViewNumber(0),
                seq: SeqNum(1),
                digest: batch_digest(&b),
                missing,
                full: false,
                mac: MacTag::ZERO,
            })
        };
        let empty = fetch(Vec::new());
        let three = fetch(b.txn_ids()[..3].to_vec());
        assert_eq!(three.wire_size() - empty.wire_size(), 3 * 12);
        assert_eq!(three.kind(), "BATCHFETCH");
        let fill = ConsensusMessage::BatchFill(BatchFill {
            sender: NodeId(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            bodies: b.txns()[..3].to_vec(),
            full: false,
        });
        // Bodies ride in the batch's compact per-txn encoding (no client
        // signatures): 16 + 17 + 20 per single-op body here.
        assert_eq!(
            fill.wire_size(),
            FRAMING_OVERHEAD + 8 + 4 + 32 + 1 + 8 + 3 * 53
        );
        assert_eq!(fill.kind(), "BATCHFILL");
        assert!(!fill.is_signed());
    }

    #[test]
    fn newview_and_stateresponse_charge_plan_and_proof_bytes() {
        // Regression for the byte-accounting fix: the replicated plan tag
        // and the justifying certificate bytes used to be omitted, so the
        // messages this crate re-ships batches in under-charged the wire.
        let b = batch(10);
        let pp = PrePrepare {
            view: ViewNumber(1),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        };
        let nv = ConsensusMessage::NewView(NewView {
            new_view: ViewNumber(1),
            sender: NodeId(1),
            view_change_senders: vec![NodeId(1), NodeId(2), NodeId(3)],
            reissued: vec![pp.clone()],
            signature: Signature::ZERO,
        });
        assert_eq!(
            nv.wire_size(),
            FRAMING_OVERHEAD + 16 + 4 + 64 + 3 * (4 + 64) + (48 + 32 + 5 + b.wire_size()),
            "NEWVIEW must charge per-sender proof signatures and the \
             reissued pre-prepares' MAC and plan tag"
        );
        // Signature validity is irrelevant to the wire model.
        let cert = Arc::new(CommitCertificate::new(
            ViewNumber(0),
            SeqNum(1),
            batch_digest(&b),
            (0..3u32).map(|i| (NodeId(i), Signature::ZERO)).collect(),
        ));
        let entry = RecoveredEntry {
            seq: SeqNum(1),
            view: ViewNumber(0),
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
            certificate: Arc::clone(&cert),
        };
        let resp = ConsensusMessage::StateResponse(StateResponse {
            sender: NodeId(0),
            stable_seq: SeqNum(0),
            entries: vec![entry],
        });
        assert_eq!(
            resp.wire_size(),
            FRAMING_OVERHEAD + 4 + 8 + (24 + 5 + b.wire_size() + cert.wire_size()),
            "STATERESPONSE entries must charge the replicated plan tag"
        );
    }

    #[test]
    fn cft_messages_are_smaller_than_bft_counterparts() {
        let b = batch(100);
        let accept = ConsensusMessage::CftAccept(CftAccept {
            ballot: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
        });
        let pp = ConsensusMessage::PrePrepare(PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b,
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        assert!(accept.wire_size() < pp.wire_size());
        let accepted = ConsensusMessage::CftAccepted(CftAccepted {
            ballot: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(0),
        });
        assert!(!accepted.is_signed());
    }
}
