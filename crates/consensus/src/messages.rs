//! Consensus messages exchanged between shim nodes.
//!
//! The PBFT messages follow Figure 3 of the paper. `PREPREPARE` and
//! `PREPARE` are authenticated with MACs (cheaper, no non-repudiation
//! needed); `COMMIT` carries a digital signature because the primary later
//! assembles the commit signatures into the execution certificate `C`
//! shipped to the serverless executors. The CFT baseline messages carry no
//! authentication at all, which is exactly why `ServerlessCFT` outperforms
//! PBFT in Figure 7.

use sbft_crypto::{CommitCertificate, U64Hasher};
use sbft_durability::RecoveredEntry;
use sbft_types::{Batch, Digest, MacTag, NodeId, SeqNum, ShardPlan, Signature, ViewNumber};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fixed per-message framing overhead (transport headers, message type
/// tags, lengths) used by the wire-size model.
pub const FRAMING_OVERHEAD: usize = 120;

/// `PREPREPARE(⟨T⟩_C, Δ, k)`: the primary proposes ordering batch `Δ` at
/// sequence `k` in view `v` (MAC-authenticated).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PrePrepare {
    /// Current view.
    pub view: ViewNumber,
    /// Proposed sequence number.
    pub seq: SeqNum,
    /// Digest of the batch, `Δ = H(m)`.
    pub digest: Digest,
    /// The full batch of client transactions.
    pub batch: Batch,
    /// The ordering-time shard plan the batcher computed for this batch.
    /// Replicated alongside the batch so every node (and, after a view
    /// change, every future primary) spawns executors with the same tag.
    /// Deliberately *not* covered by the MAC or the digest: it is a
    /// trust-but-verify hint that the verifier re-derives before acting
    /// on it (see `sbft_types::plan`), so authenticating a byzantine
    /// primary's claim would buy nothing.
    pub plan: ShardPlan,
    /// MAC over the header fields from the primary.
    pub mac: MacTag,
}

/// `PREPARE(Δ, k)`: a node supports ordering the batch with digest `Δ` at
/// sequence `k` (MAC-authenticated).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Prepare {
    /// Current view.
    pub view: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the batch.
    pub digest: Digest,
    /// Sender of the message.
    pub sender: NodeId,
    /// MAC over the header fields.
    pub mac: MacTag,
}

/// `⟨COMMIT(Δ, k)⟩_R`: a node commits the batch; digitally signed so the
/// signature can be embedded in the execution certificate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Commit {
    /// Current view.
    pub view: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the batch.
    pub digest: Digest,
    /// Sender of the message.
    pub sender: NodeId,
    /// Digital signature over the commit digest.
    pub signature: Signature,
}

/// A `(seq, digest, view)` tuple proving a request prepared at the sender,
/// carried inside `VIEWCHANGE` messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PreparedProof {
    /// Sequence number of the prepared request.
    pub seq: SeqNum,
    /// Digest of the prepared batch.
    pub digest: Digest,
    /// View in which it prepared.
    pub view: ViewNumber,
}

/// `VIEWCHANGE`: a node requests replacing the primary of `new_view - 1`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ViewChange {
    /// The view the sender wants to move to.
    pub new_view: ViewNumber,
    /// Sender of the message.
    pub sender: NodeId,
    /// Sequence number of the sender's last stable checkpoint.
    pub last_stable_seq: SeqNum,
    /// Requests prepared at the sender above the stable checkpoint.
    pub prepared: Vec<PreparedProof>,
    /// Digital signature over the message digest.
    pub signature: Signature,
}

/// `NEWVIEW`: the primary of the new view proves the view change is
/// justified and re-proposes in-flight requests.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct NewView {
    /// The view being installed.
    pub new_view: ViewNumber,
    /// Sender (the new primary).
    pub sender: NodeId,
    /// The nodes whose `VIEWCHANGE` messages justify this new view.
    pub view_change_senders: Vec<NodeId>,
    /// Pre-prepares re-issued for requests that prepared in earlier views.
    pub reissued: Vec<PrePrepare>,
    /// Digital signature over the message digest.
    pub signature: Signature,
}

/// A featherweight `CHECKPOINT` (Section V-B): only the signed commit
/// certificates since the last checkpoint, because shim nodes neither
/// execute requests nor store application data.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Sequence number this checkpoint covers (inclusive).
    pub seq: SeqNum,
    /// Sender of the message.
    pub sender: NodeId,
    /// Commit certificates for every sequence number since the previous
    /// checkpoint, proving those requests committed. Shared by reference
    /// count with the replica's own certificate store, so building a
    /// checkpoint copies no signatures.
    pub certificates: Vec<Arc<CommitCertificate>>,
    /// Digital signature over the checkpoint digest.
    pub signature: Signature,
}

/// `STATEREQUEST`: a crash-restarted replica asks its peers for the
/// committed suffix above what its durable log reconstructed. Signed so
/// byzantine nodes cannot trigger transfer storms in someone else's name.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StateRequest {
    /// The recovering replica.
    pub sender: NodeId,
    /// Highest sequence number the sender already holds; peers reply
    /// with committed entries strictly above it.
    pub above: SeqNum,
    /// Digital signature over the request digest.
    pub signature: Signature,
}

/// `STATERESPONSE`: a peer ships committed entries (batch + certificate)
/// above the requested floor. Unsigned: each entry's `2f_R + 1`-signer
/// commit certificate self-certifies, so the recovering replica verifies
/// the certificates rather than trusting the sender. The receiver adopts
/// each sequence at most once (duplicated or replayed responses are
/// idempotent), rejects garbage entries per sender, and treats
/// `stable_seq` as a checkpoint-floor claim for the catch-up path when
/// its own floor fell below every peer's retention boundary.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StateResponse {
    /// The responding peer.
    pub sender: NodeId,
    /// The responder's stable-checkpoint floor (tells the recovering
    /// replica how far behind it could possibly be).
    pub stable_seq: SeqNum,
    /// Committed entries above the requested floor, in sequence order.
    pub entries: Vec<RecoveredEntry>,
}

/// CFT (Multi-Paxos-style) accept message from the leader.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CftAccept {
    /// Leader's ballot (plays the role of the view).
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// The batch being replicated.
    pub batch: Batch,
    /// Digest of the batch.
    pub digest: Digest,
    /// The ordering-time shard plan (same trust-but-verify rules as in
    /// [`PrePrepare`]).
    pub plan: ShardPlan,
}

/// CFT acknowledgment from a follower.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CftAccepted {
    /// Leader's ballot.
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the accepted batch.
    pub digest: Digest,
    /// Sender of the acknowledgment.
    pub sender: NodeId,
}

/// CFT commit notification from the leader.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CftDecide {
    /// Leader's ballot.
    pub ballot: ViewNumber,
    /// Sequence number.
    pub seq: SeqNum,
    /// Digest of the decided batch.
    pub digest: Digest,
}

/// All messages understood by the shim ordering protocols.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ConsensusMessage {
    /// PBFT pre-prepare.
    PrePrepare(PrePrepare),
    /// PBFT prepare.
    Prepare(Prepare),
    /// PBFT commit.
    Commit(Commit),
    /// PBFT view change request.
    ViewChange(ViewChange),
    /// PBFT new-view installation.
    NewView(NewView),
    /// Featherweight checkpoint.
    Checkpoint(Checkpoint),
    /// State-transfer request from a crash-restarted replica.
    StateRequest(StateRequest),
    /// State-transfer response carrying the committed suffix.
    StateResponse(StateResponse),
    /// CFT accept (leader → followers).
    CftAccept(CftAccept),
    /// CFT accepted (follower → leader).
    CftAccepted(CftAccepted),
    /// CFT decide (leader → followers).
    CftDecide(CftDecide),
}

impl ConsensusMessage {
    /// Short name used in traces and metrics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ConsensusMessage::PrePrepare(_) => "PREPREPARE",
            ConsensusMessage::Prepare(_) => "PREPARE",
            ConsensusMessage::Commit(_) => "COMMIT",
            ConsensusMessage::ViewChange(_) => "VIEWCHANGE",
            ConsensusMessage::NewView(_) => "NEWVIEW",
            ConsensusMessage::Checkpoint(_) => "CHECKPOINT",
            ConsensusMessage::StateRequest(_) => "STATEREQUEST",
            ConsensusMessage::StateResponse(_) => "STATERESPONSE",
            ConsensusMessage::CftAccept(_) => "CFT-ACCEPT",
            ConsensusMessage::CftAccepted(_) => "CFT-ACCEPTED",
            ConsensusMessage::CftDecide(_) => "CFT-DECIDE",
        }
    }

    /// Modeled wire size in bytes. With the default 100-transaction batch
    /// the sizes land near the paper's reported numbers
    /// (`PREPREPARE` 5392 B, `PREPARE` 216 B, `COMMIT` 220 B).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            ConsensusMessage::PrePrepare(m) => {
                FRAMING_OVERHEAD + 16 + 32 + 32 + 5 + m.batch.wire_size()
            }
            ConsensusMessage::Prepare(_) => FRAMING_OVERHEAD + 16 + 32 + 4 + 32,
            ConsensusMessage::Commit(_) => FRAMING_OVERHEAD + 16 + 32 + 4 + 64,
            ConsensusMessage::ViewChange(m) => {
                FRAMING_OVERHEAD + 16 + 4 + 64 + m.prepared.len() * 48
            }
            ConsensusMessage::NewView(m) => {
                FRAMING_OVERHEAD
                    + 16
                    + 4
                    + 64
                    + m.view_change_senders.len() * 4
                    + m.reissued
                        .iter()
                        .map(|pp| 48 + pp.batch.wire_size())
                        .sum::<usize>()
            }
            ConsensusMessage::Checkpoint(m) => {
                FRAMING_OVERHEAD
                    + 8
                    + 4
                    + 64
                    + m.certificates.iter().map(|c| c.wire_size()).sum::<usize>()
            }
            ConsensusMessage::StateRequest(_) => FRAMING_OVERHEAD + 4 + 8 + 64,
            ConsensusMessage::StateResponse(m) => {
                FRAMING_OVERHEAD
                    + 4
                    + 8
                    + m.entries
                        .iter()
                        .map(|e| 24 + e.batch.wire_size() + e.certificate.wire_size())
                        .sum::<usize>()
            }
            ConsensusMessage::CftAccept(m) => FRAMING_OVERHEAD + 16 + 32 + 5 + m.batch.wire_size(),
            ConsensusMessage::CftAccepted(_) => FRAMING_OVERHEAD + 16 + 32 + 4,
            ConsensusMessage::CftDecide(_) => FRAMING_OVERHEAD + 16 + 32,
        }
    }

    /// Whether this message is digitally signed (as opposed to MAC-only or
    /// unauthenticated); signed messages cost more CPU in the cost model.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        matches!(
            self,
            ConsensusMessage::Commit(_)
                | ConsensusMessage::ViewChange(_)
                | ConsensusMessage::NewView(_)
                | ConsensusMessage::Checkpoint(_)
                | ConsensusMessage::StateRequest(_)
        )
    }
}

/// The digest a node signs or MACs for a `(view, seq, batch-digest)` header.
#[must_use]
pub fn header_digest(label: &str, view: ViewNumber, seq: SeqNum, digest: &Digest) -> Digest {
    let mut h = U64Hasher::new(label);
    h.push(view.0);
    h.push(seq.0);
    h.push_digest(digest);
    h.finish()
}

/// Digest of a batch of transactions (`Δ = H(m)`): hashes the transaction
/// identifiers and operation structure.
///
/// The result is memoized on the batch value: the primary computes it
/// once when it proposes, every replica computes it once when it checks
/// the `PREPREPARE`, and every clone taken afterwards (log entries,
/// re-proposals, certificates) reuses the cached digest.
#[must_use]
pub fn batch_digest(batch: &Batch) -> Digest {
    batch.digest_memo(|| compute_batch_digest(batch))
}

/// Computes the batch digest from scratch, bypassing the memo (the cache
/// regression tests compare this against [`batch_digest`]).
///
/// The format is streamable: transactions are absorbed one at a time
/// (each is self-delimiting — its operation count precedes its
/// operations) and the batch length seals the hash at the end. That is
/// what lets the batching front-end absorb each transaction as it
/// arrives ([`BatchDigestAccumulator`]) and hand consensus a batch whose
/// digest memo is already filled, taking the whole digest computation
/// off the submit hot path.
#[must_use]
pub fn compute_batch_digest(batch: &Batch) -> Digest {
    let mut acc = BatchDigestAccumulator::new();
    for txn in batch.txns() {
        acc.absorb(txn);
    }
    acc.finish()
}

/// Incrementally computes [`compute_batch_digest`] one transaction at a
/// time, so the cost is paid as transactions arrive instead of all at
/// once when the batch is proposed.
#[derive(Clone, Debug)]
pub struct BatchDigestAccumulator {
    hasher: U64Hasher,
    absorbed: u64,
}

impl BatchDigestAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        BatchDigestAccumulator {
            hasher: U64Hasher::new("sbft-batch"),
            absorbed: 0,
        }
    }

    /// Absorbs the next transaction of the batch (in batch order).
    pub fn absorb(&mut self, txn: &sbft_types::Transaction) {
        self.hasher.push(u64::from(txn.id.client.0));
        self.hasher.push(txn.id.counter);
        self.hasher.push(txn.ops.len() as u64);
        for op in &txn.ops {
            self.hasher.push(op.key().0);
            self.hasher.push(u64::from(op.is_write()));
        }
        self.absorbed += 1;
    }

    /// Number of transactions absorbed so far.
    #[must_use]
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Seals the hash with the batch length and produces the digest.
    #[must_use]
    pub fn finish(self) -> Digest {
        let mut hasher = self.hasher;
        hasher.push(self.absorbed);
        hasher.finish()
    }
}

impl Default for BatchDigestAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, Operation, Transaction, TxnId};

    fn batch(n: usize) -> Batch {
        Batch::new(
            (0..n)
                .map(|i| {
                    Transaction::new(
                        TxnId::new(ClientId(0), i as u64),
                        vec![Operation::Read(Key(i as u64))],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn batch_digest_is_deterministic_and_sensitive() {
        let b = batch(10);
        assert_eq!(batch_digest(&b), batch_digest(&b));
        let mut txns: Vec<Transaction> = batch(10).txns().to_vec();
        txns[3] = Transaction::new(txns[3].id, vec![Operation::ReadModifyWrite(Key(3), 1)]);
        let other = Batch::new(txns);
        assert_ne!(batch_digest(&b), batch_digest(&other));
        assert_ne!(batch_digest(&b), batch_digest(&batch(11)));
    }

    #[test]
    fn batch_digest_memo_matches_fresh_computation_and_follows_clones() {
        let b = batch(25);
        let memoized = batch_digest(&b);
        assert_eq!(memoized, compute_batch_digest(&b));
        assert_eq!(b.cached_digest(), Some(memoized));
        // A clone taken after the computation carries the cache.
        let clone = b.clone();
        assert_eq!(clone.cached_digest(), Some(memoized));
        assert!(clone.shares_txns(&b));
    }

    #[test]
    fn incremental_accumulator_matches_one_shot_digest() {
        for n in [1usize, 7, 100] {
            let b = batch(n);
            let mut acc = BatchDigestAccumulator::new();
            for txn in b.txns() {
                acc.absorb(txn);
            }
            assert_eq!(acc.absorbed(), n as u64);
            assert_eq!(acc.finish(), compute_batch_digest(&b), "batch of {n}");
        }
    }

    #[test]
    fn accumulator_is_length_sealed() {
        // A 2-txn stream and a 3-txn stream sharing a prefix must differ
        // even before the extra transaction is absorbed — the trailing
        // length seal guarantees it.
        let b3 = batch(3);
        let mut two = BatchDigestAccumulator::new();
        two.absorb(&b3.txns()[0]);
        two.absorb(&b3.txns()[1]);
        assert_ne!(two.finish(), compute_batch_digest(&b3));
    }

    #[test]
    fn header_digest_binds_all_fields() {
        let d = batch_digest(&batch(3));
        let base = header_digest("prepare", ViewNumber(0), SeqNum(1), &d);
        assert_ne!(base, header_digest("prepare", ViewNumber(1), SeqNum(1), &d));
        assert_ne!(base, header_digest("prepare", ViewNumber(0), SeqNum(2), &d));
        assert_ne!(base, header_digest("commit", ViewNumber(0), SeqNum(1), &d));
    }

    #[test]
    fn preprepare_size_near_paper_for_batch_100() {
        let b = batch(100);
        let msg = ConsensusMessage::PrePrepare(PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b,
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        let size = msg.wire_size();
        assert!(
            (4_800..=6_500).contains(&size),
            "PREPREPARE size {size} should be near the paper's 5392 B"
        );
    }

    #[test]
    fn prepare_and_commit_sizes_near_paper() {
        let prepare = ConsensusMessage::Prepare(Prepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            mac: MacTag::ZERO,
        });
        let commit = ConsensusMessage::Commit(Commit {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            signature: Signature::ZERO,
        });
        assert!(
            (150..=280).contains(&prepare.wire_size()),
            "{}",
            prepare.wire_size()
        );
        assert!(
            (180..=300).contains(&commit.wire_size()),
            "{}",
            commit.wire_size()
        );
        assert!(commit.wire_size() > prepare.wire_size());
    }

    #[test]
    fn signed_flag_matches_message_kind() {
        let prepare = ConsensusMessage::Prepare(Prepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            mac: MacTag::ZERO,
        });
        let commit = ConsensusMessage::Commit(Commit {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(1),
            signature: Signature::ZERO,
        });
        assert!(!prepare.is_signed());
        assert!(commit.is_signed());
        assert_eq!(prepare.kind(), "PREPARE");
        assert_eq!(commit.kind(), "COMMIT");
    }

    #[test]
    fn cft_messages_are_smaller_than_bft_counterparts() {
        let b = batch(100);
        let accept = ConsensusMessage::CftAccept(CftAccept {
            ballot: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
        });
        let pp = ConsensusMessage::PrePrepare(PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            batch: b,
            plan: ShardPlan::Unplanned,
            mac: MacTag::ZERO,
        });
        assert!(accept.wire_size() < pp.wire_size());
        let accepted = ConsensusMessage::CftAccepted(CftAccepted {
            ballot: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(0),
        });
        assert!(!accepted.is_signed());
    }
}
