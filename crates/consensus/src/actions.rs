//! Actions emitted by the consensus state machines.
//!
//! The state machines never touch the network or a clock directly; they
//! return a list of [`ConsensusAction`]s that the simulator or the thread
//! runtime interprets. This is what makes the protocols testable in
//! isolation and lets the byzantine-attack layer of `sbft-core` intercept
//! and drop/modify outgoing messages of compromised nodes.

use crate::messages::ConsensusMessage;
use sbft_crypto::CommitCertificate;
use sbft_types::{Batch, NodeId, SeqNum, ShardPlan, SimDuration, ViewNumber};
use std::sync::Arc;

/// Timers a consensus replica can request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConsensusTimer {
    /// The node timer `τ_m` for the request at the given sequence number:
    /// started when a `PREPREPARE` arrives, cancelled on commit, and
    /// triggering a view change on expiry (Section V-A).
    Request(SeqNum),
    /// A timer bounding how long a view change may take before the node
    /// escalates to the next view.
    ViewChange(ViewNumber),
    /// The retransmission timer of a recovering replica's `STATEREQUEST`:
    /// started when recovery broadcasts the request, re-armed with capped
    /// exponential backoff on every expiry, and cancelled when a useful
    /// `STATERESPONSE` arrives. Retries rotate through the peers one at a
    /// time instead of re-broadcasting.
    StateTransfer,
}

/// An action requested by a consensus state machine.
#[derive(Clone, PartialEq, Debug)]
pub enum ConsensusAction {
    /// Send a message to every other shim node.
    Broadcast(ConsensusMessage),
    /// Send a message to one specific shim node.
    Send(NodeId, ConsensusMessage),
    /// The replica has locally committed `batch` at `seq` in `view`; the
    /// certificate carries the `2f_R + 1` commit signatures that the
    /// ServerlessBFT layer ships to the executors. Both the batch and the
    /// certificate are reference-counted handles: emitting this action
    /// never deep-copies transactions or signatures.
    Committed {
        /// View in which the batch committed.
        view: ViewNumber,
        /// Sequence number assigned to the batch.
        seq: SeqNum,
        /// The committed batch.
        batch: Batch,
        /// The ordering-time shard plan replicated with the batch
        /// (trust-but-verify: consumers re-derive it before acting).
        plan: ShardPlan,
        /// Certificate proving the quorum (absent for the CFT/NoShim
        /// baselines, which do not produce signatures).
        certificate: Option<Arc<CommitCertificate>>,
    },
    /// Start (or restart) a timer.
    StartTimer {
        /// Which timer to start.
        timer: ConsensusTimer,
        /// How long until it fires.
        duration: SimDuration,
    },
    /// Cancel a previously started timer.
    CancelTimer(ConsensusTimer),
    /// The replica moved to a new view with the given primary.
    ViewInstalled {
        /// The view that was installed.
        view: ViewNumber,
        /// The primary of that view.
        primary: NodeId,
    },
    /// The replica detected that it had missed committed requests and
    /// caught up from a featherweight checkpoint (used by the nodes-in-dark
    /// recovery experiments).
    CaughtUp {
        /// Highest sequence number covered by the checkpoint.
        up_to: SeqNum,
    },
}

impl ConsensusAction {
    /// Convenience predicate used in tests: does this action broadcast or
    /// send a message of the given kind?
    #[must_use]
    pub fn is_message_kind(&self, kind: &str) -> bool {
        match self {
            ConsensusAction::Broadcast(m) | ConsensusAction::Send(_, m) => m.kind() == kind,
            _ => false,
        }
    }

    /// Returns the committed sequence number if this is a commit action.
    #[must_use]
    pub fn committed_seq(&self) -> Option<SeqNum> {
        match self {
            ConsensusAction::Committed { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

/// Helper for tests and harnesses: extracts all committed sequence numbers
/// from a list of actions, in order.
#[must_use]
pub fn committed_seqs(actions: &[ConsensusAction]) -> Vec<SeqNum> {
    actions
        .iter()
        .filter_map(ConsensusAction::committed_seq)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Digest, MacTag};

    #[test]
    fn message_kind_predicate() {
        let msg = ConsensusMessage::Prepare(crate::messages::Prepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(0),
            mac: MacTag::ZERO,
        });
        let action = ConsensusAction::Broadcast(msg.clone());
        assert!(action.is_message_kind("PREPARE"));
        assert!(!action.is_message_kind("COMMIT"));
        let send = ConsensusAction::Send(NodeId(1), msg);
        assert!(send.is_message_kind("PREPARE"));
    }

    #[test]
    fn committed_seq_extraction() {
        use sbft_types::{Batch, ClientId, Key, Operation, Transaction, TxnId};
        let batch = Batch::single(Transaction::new(
            TxnId::new(ClientId(0), 0),
            vec![Operation::Read(Key(1))],
        ));
        let actions = vec![
            ConsensusAction::CancelTimer(ConsensusTimer::Request(SeqNum(1))),
            ConsensusAction::Committed {
                view: ViewNumber(0),
                seq: SeqNum(1),
                batch,
                plan: ShardPlan::Unplanned,
                certificate: None,
            },
        ];
        assert_eq!(committed_seqs(&actions), vec![SeqNum(1)]);
        assert_eq!(actions[0].committed_seq(), None);
    }

    #[test]
    fn timers_compare_by_kind_and_argument() {
        assert_eq!(
            ConsensusTimer::Request(SeqNum(3)),
            ConsensusTimer::Request(SeqNum(3))
        );
        assert_ne!(
            ConsensusTimer::Request(SeqNum(3)),
            ConsensusTimer::Request(SeqNum(4))
        );
        assert_ne!(
            ConsensusTimer::Request(SeqNum(3)),
            ConsensusTimer::ViewChange(ViewNumber(3))
        );
    }
}
