//! The crash-fault-tolerant baseline (`ServerlessCFT`).
//!
//! Figure 7 compares ServerlessBFT against a shim that runs a crash
//! fault-tolerant protocol "like Paxos": no cryptographic signatures, a
//! majority quorum instead of `2f + 1`, and a linear message pattern
//! (leader → followers → leader → followers). This module implements that
//! baseline as a stable-leader Multi-Paxos-style replication protocol:
//! the leader assigns sequence numbers, followers acknowledge, and the
//! leader broadcasts a decide message once a majority has accepted.
//!
//! Because CFT protocols cannot produce byzantine-proof certificates, the
//! [`ConsensusAction::Committed`] actions it emits carry no certificate;
//! the ServerlessBFT layer skips certificate validation when running this
//! baseline (which is exactly why it is unsafe under byzantine faults and
//! only serves as a performance upper bound for consensus).

use crate::actions::{ConsensusAction, ConsensusTimer};
use crate::messages::{batch_digest, CftAccept, CftAccepted, CftDecide, ConsensusMessage};
use crate::traits::OrderingProtocol;
use sbft_types::{Batch, Digest, FaultParams, NodeId, SeqNum, ShardPlan, SimDuration, ViewNumber};
use std::collections::{BTreeMap, BTreeSet};

/// Per-sequence replication state at the leader.
#[derive(Clone, Debug, Default)]
struct SlotState {
    digest: Option<Digest>,
    batch: Option<Batch>,
    plan: ShardPlan,
    acks: BTreeSet<NodeId>,
    decided: bool,
}

/// A CFT replica (leader or follower).
pub struct CftReplica {
    me: NodeId,
    params: FaultParams,
    node_timeout: SimDuration,
    ballot: ViewNumber,
    next_seq: SeqNum,
    slots: BTreeMap<SeqNum, SlotState>,
    /// Batches accepted as a follower, waiting for the decide message.
    accepted: BTreeMap<SeqNum, (Digest, Batch, ShardPlan)>,
    /// Decide messages that arrived before the corresponding accept
    /// (network reordering); applied as soon as the accept shows up.
    pending_decides: BTreeMap<SeqNum, Digest>,
    decided: BTreeSet<SeqNum>,
}

impl CftReplica {
    /// Creates a CFT replica.
    #[must_use]
    pub fn new(me: NodeId, params: FaultParams, node_timeout: SimDuration) -> Self {
        CftReplica {
            me,
            params,
            node_timeout,
            ballot: ViewNumber(0),
            next_seq: SeqNum(1),
            slots: BTreeMap::new(),
            accepted: BTreeMap::new(),
            pending_decides: BTreeMap::new(),
            decided: BTreeSet::new(),
        }
    }

    /// Majority quorum: ⌊n/2⌋ + 1 (crash faults only).
    #[must_use]
    pub fn majority(&self) -> usize {
        self.params.n_r / 2 + 1
    }

    fn leader_of(&self, ballot: ViewNumber) -> NodeId {
        NodeId::primary_of(ballot, self.params.n_r)
    }

    fn decide_actions(
        &mut self,
        seq: SeqNum,
        _digest: Digest,
        batch: Batch,
        plan: ShardPlan,
    ) -> Vec<ConsensusAction> {
        if !self.decided.insert(seq) {
            return Vec::new();
        }
        vec![
            ConsensusAction::CancelTimer(ConsensusTimer::Request(seq)),
            ConsensusAction::Committed {
                view: self.ballot,
                seq,
                batch,
                plan,
                certificate: None,
            },
        ]
    }

    fn on_accept(&mut self, from: NodeId, msg: CftAccept) -> Vec<ConsensusAction> {
        if from != self.leader_of(msg.ballot) || msg.ballot != self.ballot {
            return Vec::new();
        }
        if batch_digest(&msg.batch) != msg.digest {
            return Vec::new();
        }
        self.accepted
            .insert(msg.seq, (msg.digest, msg.batch.clone(), msg.plan));
        let mut actions = vec![
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::Request(msg.seq),
                duration: self.node_timeout,
            },
            ConsensusAction::Send(
                from,
                ConsensusMessage::CftAccepted(CftAccepted {
                    ballot: msg.ballot,
                    seq: msg.seq,
                    digest: msg.digest,
                    sender: self.me,
                }),
            ),
        ];
        // A decide for this slot may have overtaken the accept.
        if self.pending_decides.remove(&msg.seq) == Some(msg.digest) {
            actions.extend(self.decide_actions(msg.seq, msg.digest, msg.batch, msg.plan));
        }
        actions
    }

    fn on_accepted(&mut self, from: NodeId, msg: CftAccepted) -> Vec<ConsensusAction> {
        if msg.sender != from || msg.ballot != self.ballot || !self.is_primary() {
            return Vec::new();
        }
        let majority = self.majority();
        let Some(slot) = self.slots.get_mut(&msg.seq) else {
            return Vec::new();
        };
        if slot.digest != Some(msg.digest) || slot.decided {
            return Vec::new();
        }
        slot.acks.insert(from);
        if slot.acks.len() < majority {
            return Vec::new();
        }
        slot.decided = true;
        let digest = msg.digest;
        let batch = slot.batch.clone().expect("leader keeps the batch");
        let plan = slot.plan;
        let mut actions = vec![ConsensusAction::Broadcast(ConsensusMessage::CftDecide(
            CftDecide {
                ballot: self.ballot,
                seq: msg.seq,
                digest,
            },
        ))];
        actions.extend(self.decide_actions(msg.seq, digest, batch, plan));
        actions
    }

    fn on_decide(&mut self, from: NodeId, msg: CftDecide) -> Vec<ConsensusAction> {
        if from != self.leader_of(msg.ballot) || msg.ballot != self.ballot {
            return Vec::new();
        }
        let Some((digest, batch, plan)) = self.accepted.get(&msg.seq).cloned() else {
            // The decide overtook the accept; remember it.
            self.pending_decides.insert(msg.seq, msg.digest);
            return Vec::new();
        };
        if digest != msg.digest {
            return Vec::new();
        }
        self.decide_actions(msg.seq, digest, batch, plan)
    }
}

impl OrderingProtocol for CftReplica {
    fn submit_batch(&mut self, batch: Batch, plan: ShardPlan) -> Vec<ConsensusAction> {
        if !self.is_primary() {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.next();
        let digest = batch_digest(&batch);
        let slot = self.slots.entry(seq).or_default();
        slot.digest = Some(digest);
        slot.batch = Some(batch.clone());
        slot.plan = plan;
        slot.acks.insert(self.me);
        let accept = CftAccept {
            ballot: self.ballot,
            seq,
            batch,
            digest,
            plan,
        };
        // A single-node "shim" (degenerate case) decides immediately.
        let mut actions = vec![ConsensusAction::Broadcast(ConsensusMessage::CftAccept(
            accept,
        ))];
        if self.params.n_r == 1 {
            let batch = self.slots[&seq].batch.clone().expect("own batch");
            self.slots.get_mut(&seq).expect("slot").decided = true;
            actions.extend(self.decide_actions(seq, digest, batch, plan));
        }
        actions
    }

    fn handle_message(&mut self, from: NodeId, msg: ConsensusMessage) -> Vec<ConsensusAction> {
        match msg {
            ConsensusMessage::CftAccept(m) => self.on_accept(from, m),
            ConsensusMessage::CftAccepted(m) => self.on_accepted(from, m),
            ConsensusMessage::CftDecide(m) => self.on_decide(from, m),
            // BFT messages are ignored by the CFT baseline.
            _ => Vec::new(),
        }
    }

    fn handle_timer(&mut self, timer: ConsensusTimer) -> Vec<ConsensusAction> {
        match timer {
            ConsensusTimer::Request(seq) if !self.decided.contains(&seq) => {
                // Leader replacement in the CFT baseline: simply move to the
                // next ballot (the experiments never exercise CFT leader
                // failure, but the hook keeps the interface uniform).
                self.request_view_change()
            }
            _ => Vec::new(),
        }
    }

    fn request_view_change(&mut self) -> Vec<ConsensusAction> {
        self.ballot = self.ballot.next();
        vec![ConsensusAction::ViewInstalled {
            view: self.ballot,
            primary: self.leader_of(self.ballot),
        }]
    }

    fn view(&self) -> ViewNumber {
        self.ballot
    }

    fn primary(&self) -> NodeId {
        self.leader_of(self.ballot)
    }

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn name(&self) -> &'static str {
        "CFT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::committed_seqs;
    use sbft_types::{ClientId, Key, Operation, Transaction, TxnId};

    fn batch(counter: u64) -> Batch {
        Batch::single(Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        ))
    }

    fn cluster(n: usize) -> Vec<CftReplica> {
        let params = FaultParams::for_shim_size(n.max(4));
        let params = FaultParams { n_r: n, ..params };
        (0..n as u32)
            .map(|i| CftReplica::new(NodeId(i), params, SimDuration::from_millis(100)))
            .collect()
    }

    /// Delivers actions until quiescence, returning committed seqs per node.
    fn run(
        replicas: &mut [CftReplica],
        origin: usize,
        actions: Vec<ConsensusAction>,
    ) -> Vec<Vec<SeqNum>> {
        let mut committed = vec![Vec::new(); replicas.len()];
        let mut queue: Vec<(usize, usize, ConsensusMessage)> = Vec::new();
        let absorb = |origin: usize,
                      actions: Vec<ConsensusAction>,
                      queue: &mut Vec<(usize, usize, ConsensusMessage)>,
                      committed: &mut Vec<Vec<SeqNum>>| {
            for a in actions {
                match a {
                    ConsensusAction::Broadcast(m) => {
                        for to in 0..committed.len() {
                            if to != origin {
                                queue.push((origin, to, m.clone()));
                            }
                        }
                    }
                    ConsensusAction::Send(to, m) => queue.push((origin, to.0 as usize, m)),
                    ConsensusAction::Committed { seq, .. } => committed[origin].push(seq),
                    _ => {}
                }
            }
        };
        absorb(origin, actions, &mut queue, &mut committed);
        while let Some((from, to, msg)) = queue.pop() {
            let acts = replicas[to].handle_message(NodeId(from as u32), msg);
            absorb(to, acts, &mut queue, &mut committed);
        }
        committed
    }

    #[test]
    fn leader_replicates_and_everyone_decides() {
        let mut replicas = cluster(4);
        let actions = replicas[0].submit_batch(batch(0), ShardPlan::Unplanned);
        let committed = run(&mut replicas, 0, actions);
        for (i, c) in committed.iter().enumerate() {
            assert_eq!(c, &vec![SeqNum(1)], "node {i}");
        }
    }

    #[test]
    fn non_leader_ignores_submissions() {
        let mut replicas = cluster(4);
        assert!(replicas[1]
            .submit_batch(batch(0), ShardPlan::Unplanned)
            .is_empty());
    }

    #[test]
    fn commits_carry_no_certificate() {
        let mut replicas = cluster(4);
        let actions = replicas[0].submit_batch(batch(0), ShardPlan::Unplanned);
        let mut saw_commit = false;
        let mut queue: Vec<(usize, usize, ConsensusMessage)> = Vec::new();
        for a in &actions {
            if let ConsensusAction::Broadcast(m) = a {
                for to in 1..4 {
                    queue.push((0, to, m.clone()));
                }
            }
        }
        while let Some((from, to, msg)) = queue.pop() {
            for a in replicas[to].handle_message(NodeId(from as u32), msg) {
                match a {
                    ConsensusAction::Send(t, m) => queue.push((to, t.0 as usize, m)),
                    ConsensusAction::Broadcast(m) => {
                        for t in 0..4 {
                            if t != to {
                                queue.push((to, t, m.clone()));
                            }
                        }
                    }
                    ConsensusAction::Committed { certificate, .. } => {
                        saw_commit = true;
                        assert!(certificate.is_none());
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_commit);
    }

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(cluster(4)[0].majority(), 3);
        assert_eq!(cluster(5)[0].majority(), 3);
        assert_eq!(cluster(8)[0].majority(), 5);
    }

    #[test]
    fn sequence_numbers_advance_per_submission() {
        let mut replicas = cluster(4);
        let a1 = replicas[0].submit_batch(batch(0), ShardPlan::Unplanned);
        let _ = run(&mut replicas, 0, a1);
        let a2 = replicas[0].submit_batch(batch(1), ShardPlan::Unplanned);
        let committed = run(&mut replicas, 0, a2);
        assert_eq!(committed[0], vec![SeqNum(2)]);
    }

    #[test]
    fn mismatched_digest_accept_rejected() {
        let mut replicas = cluster(4);
        let b = batch(0);
        let msg = ConsensusMessage::CftAccept(CftAccept {
            ballot: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            batch: b,
            plan: ShardPlan::Unplanned,
        });
        assert!(replicas[1].handle_message(NodeId(0), msg).is_empty());
    }

    #[test]
    fn timer_on_undecided_slot_changes_leader() {
        let mut replicas = cluster(4);
        let actions = replicas[1].handle_timer(ConsensusTimer::Request(SeqNum(1)));
        assert!(matches!(
            actions.first(),
            Some(ConsensusAction::ViewInstalled { view, .. }) if *view == ViewNumber(1)
        ));
        assert!(committed_seqs(&actions).is_empty());
    }

    #[test]
    fn name_reports_cft() {
        assert_eq!(cluster(4)[0].name(), "CFT");
    }
}
