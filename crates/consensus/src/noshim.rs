//! The `NoShim` baseline: no consensus at all.
//!
//! Figure 7's `NOSHIM` configuration "represents the experiment where there
//! is no shim; no BFT consensus takes place. All the clients send their
//! requests to a node, which instantaneously spawns executors." This
//! state machine simply assigns the next sequence number and reports the
//! batch as committed — it is the throughput upper bound of the
//! architecture and also approximates the serverless-edge designs of
//! Aslanpour et al. and Baresi et al. discussed in the related work.

use crate::actions::{ConsensusAction, ConsensusTimer};
use crate::messages::ConsensusMessage;
use crate::traits::OrderingProtocol;
use sbft_types::{Batch, NodeId, SeqNum, ShardPlan, ViewNumber};

/// The trivial single-node "ordering" protocol.
pub struct NoShim {
    me: NodeId,
    next_seq: SeqNum,
    committed: u64,
}

impl NoShim {
    /// Creates the no-consensus node.
    #[must_use]
    pub fn new(me: NodeId) -> Self {
        NoShim {
            me,
            next_seq: SeqNum(1),
            committed: 0,
        }
    }

    /// Number of batches committed so far.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

impl OrderingProtocol for NoShim {
    fn submit_batch(&mut self, batch: Batch, plan: ShardPlan) -> Vec<ConsensusAction> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.next();
        self.committed += 1;
        vec![ConsensusAction::Committed {
            view: ViewNumber(0),
            seq,
            batch,
            plan,
            certificate: None,
        }]
    }

    fn handle_message(&mut self, _from: NodeId, _msg: ConsensusMessage) -> Vec<ConsensusAction> {
        Vec::new()
    }

    fn handle_timer(&mut self, _timer: ConsensusTimer) -> Vec<ConsensusAction> {
        Vec::new()
    }

    fn request_view_change(&mut self) -> Vec<ConsensusAction> {
        Vec::new()
    }

    fn view(&self) -> ViewNumber {
        ViewNumber(0)
    }

    fn primary(&self) -> NodeId {
        self.me
    }

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn name(&self) -> &'static str {
        "NoShim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, Operation, Transaction, TxnId};

    fn batch(counter: u64) -> Batch {
        Batch::single(Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        ))
    }

    #[test]
    fn every_submission_commits_immediately() {
        let mut node = NoShim::new(NodeId(0));
        for i in 1..=5u64 {
            let actions = node.submit_batch(batch(i), ShardPlan::Unplanned);
            assert_eq!(actions.len(), 1);
            match &actions[0] {
                ConsensusAction::Committed {
                    seq, certificate, ..
                } => {
                    assert_eq!(*seq, SeqNum(i));
                    assert!(certificate.is_none());
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(node.committed(), 5);
    }

    #[test]
    fn is_always_its_own_primary() {
        let node = NoShim::new(NodeId(3));
        assert!(node.is_primary());
        assert_eq!(node.primary(), NodeId(3));
        assert_eq!(node.name(), "NoShim");
    }

    #[test]
    fn messages_and_timers_are_ignored() {
        let mut node = NoShim::new(NodeId(0));
        assert!(node
            .handle_timer(ConsensusTimer::Request(SeqNum(1)))
            .is_empty());
        assert!(node.request_view_change().is_empty());
        assert_eq!(node.view(), ViewNumber(0));
    }
}
