//! # sbft-consensus
//!
//! The shim ordering substrate: the consensus protocols edge devices run to
//! agree on the order of client batches before executors are spawned.
//!
//! * [`pbft`] — a from-scratch PBFT replica (Castro & Liskov '99) with the
//!   three normal-case phases (`PREPREPARE` / `PREPARE` / `COMMIT`), view
//!   changes, new-view installation and the paper's *featherweight
//!   checkpoints* (Section V-B): checkpoint messages carry only the signed
//!   commit certificates accumulated since the last checkpoint, because
//!   shim nodes neither execute requests nor store data.
//! * [`cft`] — a crash-fault-tolerant primary/backup protocol in the style
//!   of Multi-Paxos, used for the `ServerlessCFT` baseline of Figure 7 (no
//!   signatures, majority quorums, linear message pattern).
//! * [`noshim`] — the `NoShim` baseline: no consensus at all, every
//!   submitted batch is committed immediately by the receiving node.
//! * [`batcher`] — the batching front-end that groups client transactions
//!   into consensus batches (Figure 6(iii)–(iv)).
//!
//! All protocols are deterministic state machines: they consume messages
//! and timer expirations and emit [`actions::ConsensusAction`]s. The
//! simulator and the thread runtime interpret those actions; the byzantine
//! behaviours of Section V (request suppression, nodes in dark,
//! equivocation) are injected *around* the honest state machines by
//! `sbft-core::attacks`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod actions;
pub mod batcher;
pub mod cft;
pub mod log;
pub mod messages;
pub mod noshim;
pub mod pbft;
pub mod traits;

pub use actions::{ConsensusAction, ConsensusTimer};
pub use batcher::{Batcher, SignedBatch};
pub use cft::CftReplica;
pub use messages::{
    BatchDigestAccumulator, Checkpoint, Commit, ConsensusMessage, NewView, PrePrepare, Prepare,
    StateRequest, StateResponse, ViewChange,
};
pub use noshim::NoShim;
pub use pbft::PbftReplica;
pub use traits::{OrderingProtocol, RecoveryStats};
