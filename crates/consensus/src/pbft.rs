//! The PBFT replica state machine.
//!
//! Shim nodes run PBFT (Castro & Liskov '99) to order client batches
//! (Section IV-B): the primary assigns a sequence number and broadcasts a
//! MAC-authenticated `PREPREPARE`; nodes answer with `PREPARE` messages;
//! once a node has `2f_R + 1` matching prepares it broadcasts a digitally
//! signed `COMMIT`; `2f_R + 1` matching commits make the request
//! *committed* and their signatures form the execution certificate `C`.
//!
//! The module also implements:
//!
//! * the **view change** protocol used to replace a faulty primary
//!   (Section V-A4): `2f_R + 1` `VIEWCHANGE` messages let the next primary
//!   install a new view via `NEWVIEW`, re-proposing prepared requests;
//! * the paper's **featherweight checkpoints** (Section V-B): every
//!   `checkpoint_interval` sequence numbers a node broadcasts only the
//!   commit certificates it collected since the last checkpoint, letting
//!   nodes kept in the dark catch up and letting everyone garbage-collect
//!   the log.
//!
//! Byzantine behaviour is *not* implemented here — honest replicas only.
//! The attack layer of `sbft-core` perturbs the actions of compromised
//! nodes (dropping pre-prepares, equivocating, suppressing spawns) before
//! they reach the network.

use crate::actions::{ConsensusAction, ConsensusTimer};
use crate::log::ConsensusLog;
use crate::messages::{
    batch_digest, header_digest, BatchFetch, BatchFill, Checkpoint, Commit, ConsensusMessage,
    DigestPrePrepare, NewView, PrePrepare, Prepare, PreparedProof, StateRequest, StateResponse,
    TxnBloom, ViewChange,
};
use crate::traits::{OrderingProtocol, RecoveryStats};
use sbft_crypto::certificate::commit_digest;
use sbft_crypto::{CommitCertificate, CryptoHandle};
use sbft_durability::RecoveredEntry;
use sbft_telemetry::{Counter, Registry};
use sbft_types::{
    Batch, ComponentId, Digest, FaultParams, NodeId, SeqNum, ShardPlan, SimDuration, Transaction,
    TxnId, ViewNumber,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// A PBFT replica running on one shim node.
pub struct PbftReplica {
    me: NodeId,
    params: FaultParams,
    crypto: CryptoHandle,
    node_timeout: SimDuration,
    checkpoint_interval: u64,

    view: ViewNumber,
    in_view_change: bool,
    next_seq: SeqNum,
    log: ConsensusLog,

    /// Commit certificates accumulated since the last stable checkpoint,
    /// held by reference count: the `Committed` action and every
    /// featherweight checkpoint share the same allocation instead of
    /// copying the signature set.
    pending_certs: BTreeMap<SeqNum, Arc<CommitCertificate>>,
    /// Checkpoint votes collected, per checkpoint sequence number.
    checkpoint_votes: BTreeMap<SeqNum, BTreeMap<NodeId, Checkpoint>>,
    /// View-change votes collected, per target view.
    view_change_votes: BTreeMap<ViewNumber, BTreeMap<NodeId, ViewChange>>,

    /// Retransmission attempts made for the in-flight `STATEREQUEST`;
    /// `None` when no state transfer is pending. Bounded by
    /// [`STATE_RETRY_BUDGET`].
    state_transfer_attempt: Option<u32>,
    /// Sequence numbers already adopted from a `STATERESPONSE` — the
    /// adopt-once ledger: overlapping suffixes from several peers (or
    /// duplicated responses on a lossy network) seat each entry exactly
    /// once. Pruned below the stable floor at every checkpoint/catch-up.
    adopted_from_peers: BTreeSet<SeqNum>,
    /// Garbage `STATERESPONSE` entries rejected, per sender.
    bad_responses: BTreeMap<NodeId, u64>,
    /// Snapshot-floor claims observed in `STATERESPONSE`s, per sender:
    /// `f_r + 1` claims at or above a floor prove at least one honest
    /// replica garbage-collected it, authorising checkpoint catch-up.
    floor_claims: BTreeMap<NodeId, SeqNum>,
    /// Total `STATEREQUEST` retransmissions sent.
    retries: u64,
    /// Total checkpoint catch-ups performed.
    catch_ups: u64,

    /// Whether proposals are broadcast by digest (`DIGEST-PREPREPARE`)
    /// instead of with full bodies.
    digest_mode: bool,
    /// Transaction bodies observed from client submission (and promoted
    /// from verified fills), keyed by id — the pool digest proposals are
    /// reconstructed from. GC'd on the shim's checkpoint rhythm via
    /// [`OrderingProtocol::gc_bodies`].
    body_cache: BTreeMap<TxnId, Transaction>,
    /// Digest proposals accepted for reconstruction but not yet voted on
    /// (bodies still missing, or awaiting the full-batch fallback).
    pending_digest: BTreeMap<SeqNum, PendingProposal>,
    /// Bodies found in the cache during reconstruction.
    cache_hits: Counter,
    /// Bodies that had to be fetched.
    cache_misses: Counter,
    /// `BATCHFETCH` messages sent (including retransmissions).
    fetches_sent: Counter,
    /// `BATCHFILL` messages served to fetching peers.
    fills_served: Counter,
    /// Reconstruction digest mismatches that triggered the full-batch
    /// fallback.
    fallbacks: Counter,
}

/// A digest proposal whose batch is still being reconstructed. The entry
/// holds everything needed to vote once the last body lands — and keeps
/// fetched bodies quarantined away from the shared cache until the
/// reconstructed batch hashes to the proposal digest, so a poisoned fill
/// can never plant a wrong body under a correct id.
struct PendingProposal {
    view: ViewNumber,
    digest: Digest,
    txn_ids: Vec<TxnId>,
    plan: ShardPlan,
    /// Ids whose bodies are neither cached nor received yet.
    missing: BTreeSet<TxnId>,
    /// Bodies received via `BATCHFILL`, quarantined until the digest
    /// verifies.
    received: BTreeMap<TxnId, Transaction>,
    /// `BATCHFETCH` transmissions so far (bounded by
    /// [`FETCH_RETRY_BUDGET`] before the request timer escalates to a
    /// view change).
    fetch_attempts: u32,
    /// Whether the full-batch fallback has been requested after a
    /// reconstruction mismatch.
    full_requested: bool,
    /// The last peer that filled bodies into this proposal — the node a
    /// digest mismatch is counted against (the primary when the local
    /// cache alone produced the mismatch).
    last_filler: Option<NodeId>,
}

/// How many times a replica retransmits a `BATCHFETCH` for one proposal
/// (rotating through the peers) before the request timer escalates to a
/// view change.
const FETCH_RETRY_BUDGET: u32 = 4;

/// How many times a recovering replica retransmits its `STATEREQUEST`
/// (with capped exponential backoff, rotating through the peers) before
/// giving up and relying on the regular protocol to make progress.
const STATE_RETRY_BUDGET: u32 = 8;

impl PbftReplica {
    /// Creates a replica.
    #[must_use]
    pub fn new(
        me: NodeId,
        params: FaultParams,
        crypto: CryptoHandle,
        node_timeout: SimDuration,
        checkpoint_interval: u64,
    ) -> Self {
        assert!(
            checkpoint_interval > 0,
            "checkpoint interval must be positive"
        );
        PbftReplica {
            me,
            params,
            crypto,
            node_timeout,
            checkpoint_interval,
            view: ViewNumber(0),
            in_view_change: false,
            next_seq: SeqNum(1),
            log: ConsensusLog::new(),
            pending_certs: BTreeMap::new(),
            checkpoint_votes: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            state_transfer_attempt: None,
            adopted_from_peers: BTreeSet::new(),
            bad_responses: BTreeMap::new(),
            floor_claims: BTreeMap::new(),
            retries: 0,
            catch_ups: 0,
            digest_mode: false,
            body_cache: BTreeMap::new(),
            pending_digest: BTreeMap::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            fetches_sent: Counter::new(),
            fills_served: Counter::new(),
            fallbacks: Counter::new(),
        }
    }

    /// Enables (or disables) digest proposals: the primary broadcasts
    /// `DIGEST-PREPREPARE` (ids + bloom filter, no bodies) and replicas
    /// reconstruct batches from their body caches, fetching only what
    /// they miss. Every node of a shim must agree on the mode.
    #[must_use]
    pub fn with_digest_proposals(mut self, enabled: bool) -> Self {
        self.digest_mode = enabled;
        self
    }

    /// Whether digest proposals are enabled on this replica.
    #[must_use]
    pub fn digest_proposals_enabled(&self) -> bool {
        self.digest_mode
    }

    /// Number of transaction bodies currently cached (tests and GC
    /// accounting).
    #[must_use]
    pub fn body_cache_len(&self) -> usize {
        self.body_cache.len()
    }

    /// Cumulative digest-mode counters: cache hits, misses, fetches sent,
    /// fills served, full-batch fallbacks (tests; experiments read the
    /// registry).
    #[must_use]
    pub fn digest_stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.cache_hits.get(),
            self.cache_misses.get(),
            self.fetches_sent.get(),
            self.fills_served.get(),
            self.fallbacks.get(),
        )
    }

    /// Garbage `STATERESPONSE` entries rejected from one specific peer
    /// (tests pin the liar's tally through this).
    #[must_use]
    pub fn bad_state_responses_from(&self, peer: NodeId) -> u64 {
        self.bad_responses.get(&peer).copied().unwrap_or(0)
    }

    /// The fault parameters this replica was configured with.
    #[must_use]
    pub fn params(&self) -> &FaultParams {
        &self.params
    }

    /// Read access to the consensus log (tests and metrics).
    #[must_use]
    pub fn log(&self) -> &ConsensusLog {
        &self.log
    }

    /// Whether this replica is currently running a view change.
    #[must_use]
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    fn quorum(&self) -> usize {
        self.params.shim_quorum()
    }

    fn primary_of(&self, view: ViewNumber) -> NodeId {
        NodeId::primary_of(view, self.params.n_r)
    }

    fn make_prepare(&self, view: ViewNumber, seq: SeqNum, digest: Digest) -> Prepare {
        let header = header_digest("prepare", view, seq, &digest);
        Prepare {
            view,
            seq,
            digest,
            sender: self.me,
            mac: self.crypto.broadcast_mac(&header),
        }
    }

    fn make_commit(&self, view: ViewNumber, seq: SeqNum, digest: Digest) -> Commit {
        let signed = commit_digest(view, seq, &digest);
        Commit {
            view,
            seq,
            digest,
            sender: self.me,
            signature: self.crypto.sign(&signed),
        }
    }

    /// Counts votes whose digest and view match the accepted pre-prepare.
    fn matching_prepares(&self, seq: SeqNum) -> usize {
        let Some(entry) = self.log.entry(seq) else {
            return 0;
        };
        let (Some(digest), Some(view)) = (entry.digest, entry.view) else {
            return 0;
        };
        entry
            .prepares
            .values()
            .filter(|p| p.digest == digest && p.view == view)
            .count()
    }

    fn matching_commits(&self, seq: SeqNum) -> usize {
        let Some(entry) = self.log.entry(seq) else {
            return 0;
        };
        let (Some(digest), Some(view)) = (entry.digest, entry.view) else {
            return 0;
        };
        entry
            .commits
            .values()
            .filter(|c| c.digest == digest && c.view == view)
            .count()
    }

    /// Runs the node-side handling of an accepted pre-prepare: broadcast a
    /// prepare, start the request timer, and re-evaluate quorums.
    fn after_pre_prepare(
        &mut self,
        view: ViewNumber,
        seq: SeqNum,
        digest: Digest,
    ) -> Vec<ConsensusAction> {
        let mut actions = Vec::new();
        let prepare = self.make_prepare(view, seq, digest);
        self.log.add_prepare(prepare);
        actions.push(ConsensusAction::StartTimer {
            timer: ConsensusTimer::Request(seq),
            duration: self.node_timeout,
        });
        actions.push(ConsensusAction::Broadcast(ConsensusMessage::Prepare(
            prepare,
        )));
        actions.extend(self.check_prepared(seq));
        actions
    }

    fn check_prepared(&mut self, seq: SeqNum) -> Vec<ConsensusAction> {
        let mut actions = Vec::new();
        let quorum = self.quorum();
        let ready = {
            let Some(entry) = self.log.entry(seq) else {
                return actions;
            };
            entry.pre_prepared() && !entry.prepared && self.matching_prepares(seq) >= quorum
        };
        if !ready {
            return actions;
        }
        let (view, digest) = {
            let entry = self.log.entry_mut(seq);
            entry.prepared = true;
            (
                entry.view.expect("prepared entry has view"),
                entry.digest.expect("digest"),
            )
        };
        let commit = self.make_commit(view, seq, digest);
        self.log.add_commit(commit);
        actions.push(ConsensusAction::Broadcast(ConsensusMessage::Commit(commit)));
        actions.extend(self.check_committed(seq));
        actions
    }

    fn check_committed(&mut self, seq: SeqNum) -> Vec<ConsensusAction> {
        let mut actions = Vec::new();
        let quorum = self.quorum();
        let ready = {
            let Some(entry) = self.log.entry(seq) else {
                return actions;
            };
            entry.prepared && !entry.committed && self.matching_commits(seq) >= quorum
        };
        if !ready {
            return actions;
        }
        let (view, digest, batch, plan, cert_entries) = {
            let entry = self.log.entry_mut(seq);
            entry.committed = true;
            let digest = entry.digest.expect("committed entry has digest");
            let view_of_entry = entry.view.expect("committed entry has view");
            let entries: Vec<_> = entry
                .commits
                .values()
                .filter(|c| c.digest == digest && c.view == view_of_entry)
                .map(|c| (c.sender, c.signature))
                .collect();
            (
                entry.view.expect("view"),
                digest,
                entry.batch.clone().expect("committed entry has batch"),
                entry.plan,
                entries,
            )
        };
        let certificate = Arc::new(CommitCertificate::new(view, seq, digest, cert_entries));
        self.pending_certs.insert(seq, Arc::clone(&certificate));
        actions.push(ConsensusAction::CancelTimer(ConsensusTimer::Request(seq)));
        actions.push(ConsensusAction::Committed {
            view,
            seq,
            batch,
            plan,
            certificate: Some(certificate),
        });
        actions.extend(self.maybe_emit_checkpoint(seq));
        actions
    }

    /// Broadcasts a featherweight checkpoint when `seq` closes an interval.
    fn maybe_emit_checkpoint(&mut self, seq: SeqNum) -> Vec<ConsensusAction> {
        if !seq.0.is_multiple_of(self.checkpoint_interval) || seq <= self.log.stable_seq() {
            return Vec::new();
        }
        let certificates: Vec<_> = self
            .pending_certs
            .range(SeqNum(self.log.stable_seq().0 + 1)..=seq)
            .map(|(_, c)| Arc::clone(c))
            .collect();
        let digest = sbft_crypto::digest_u64s("checkpoint", &[seq.0, certificates.len() as u64]);
        let checkpoint = Checkpoint {
            seq,
            sender: self.me,
            certificates,
            signature: self.crypto.sign(&digest),
        };
        let mut actions = vec![ConsensusAction::Broadcast(ConsensusMessage::Checkpoint(
            checkpoint.clone(),
        ))];
        actions.extend(self.record_checkpoint_vote(checkpoint));
        actions
    }

    fn record_checkpoint_vote(&mut self, checkpoint: Checkpoint) -> Vec<ConsensusAction> {
        let seq = checkpoint.seq;
        let votes = self.checkpoint_votes.entry(seq).or_default();
        votes.insert(checkpoint.sender, checkpoint);
        // A checkpoint becomes stable once f_R + 1 nodes vouch for it: at
        // least one honest node has the certificates.
        if self.checkpoint_votes[&seq].len() < self.params.f_r + 1 || seq <= self.log.stable_seq() {
            return Vec::new();
        }
        let mut actions = Vec::new();
        // Adopt certificates for sequence numbers we never committed
        // ourselves: either we were kept in the dark for them, or the
        // checkpoint overtook our own in-flight commit (message reordering).
        let missing = self.log.missing_up_to(seq);
        if !missing.is_empty() {
            let vote_with_certs = self.checkpoint_votes[&seq]
                .values()
                .max_by_key(|c| c.certificates.len())
                .cloned();
            if let Some(vote) = vote_with_certs {
                let mut was_dark = false;
                for cert in &vote.certificates {
                    if missing.contains(&cert.seq)
                        && cert
                            .verify(
                                self.crypto.provider().key_store(),
                                self.quorum(),
                                self.params.n_r,
                            )
                            .is_ok()
                    {
                        let entry = self.log.entry_mut(cert.seq);
                        entry.committed = true;
                        entry.prepared = true;
                        entry.view = Some(cert.view);
                        entry.digest = Some(cert.batch_digest);
                        let batch = entry.batch.clone();
                        let plan = entry.plan;
                        actions.push(ConsensusAction::CancelTimer(ConsensusTimer::Request(
                            cert.seq,
                        )));
                        if let Some(batch) = batch {
                            // We had accepted the pre-prepare (so we hold
                            // the batch) and only missed the commit quorum:
                            // deliver it as a normal commit so the
                            // ServerlessBFT layer can act on it.
                            actions.push(ConsensusAction::Committed {
                                view: cert.view,
                                seq: cert.seq,
                                batch,
                                plan,
                                certificate: Some(Arc::clone(cert)),
                            });
                        } else {
                            // Truly in the dark for this request: we only
                            // learn that it committed, not its contents.
                            was_dark = true;
                        }
                    }
                }
                if was_dark {
                    actions.push(ConsensusAction::CaughtUp { up_to: seq });
                }
            }
        }
        self.log.collect_below(seq);
        self.pending_certs.retain(|s, _| *s > seq);
        self.checkpoint_votes.retain(|s, _| *s > seq);
        self.adopted_from_peers.retain(|s| *s > seq);
        actions
    }

    /// Starts (or joins) a view change towards `target` (at least
    /// `view + 1`).
    fn start_view_change(&mut self, target: ViewNumber) -> Vec<ConsensusAction> {
        let target = if target > self.view {
            target
        } else {
            self.view.next()
        };
        // Already voted for this target? Don't re-broadcast.
        if self
            .view_change_votes
            .get(&target)
            .is_some_and(|v| v.contains_key(&self.me))
        {
            return Vec::new();
        }
        self.in_view_change = true;
        // In-flight digest reconstructions die with the view: only
        // *prepared* proposals survive a view change, and a proposal only
        // prepares after its batch reconstructed. The new primary
        // re-issues survivors as full pre-prepares.
        self.pending_digest.clear();
        let prepared = self
            .log
            .prepared_uncommitted()
            .into_iter()
            .map(|(seq, view, digest)| PreparedProof { seq, digest, view })
            .collect::<Vec<_>>();
        let digest = sbft_crypto::digest_u64s(
            "viewchange",
            &[target.0, self.log.stable_seq().0, prepared.len() as u64],
        );
        let vc = ViewChange {
            new_view: target,
            sender: self.me,
            last_stable_seq: self.log.stable_seq(),
            prepared,
            signature: self.crypto.sign(&digest),
        };
        let mut actions = vec![
            ConsensusAction::Broadcast(ConsensusMessage::ViewChange(vc.clone())),
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::ViewChange(target),
                duration: self.node_timeout.saturating_mul(2),
            },
        ];
        actions.extend(self.record_view_change_vote(vc));
        actions
    }

    fn record_view_change_vote(&mut self, vc: ViewChange) -> Vec<ConsensusAction> {
        let target = vc.new_view;
        if target <= self.view {
            return Vec::new();
        }
        self.view_change_votes
            .entry(target)
            .or_default()
            .insert(vc.sender, vc);
        let votes = self.view_change_votes[&target].len();
        let mut actions = Vec::new();

        // Join the view change once f_R + 1 nodes ask for it (at least one
        // honest node timed out), even if our own timer has not fired.
        if votes > self.params.f_r && !self.view_change_votes[&target].contains_key(&self.me) {
            actions.extend(self.start_view_change(target));
            return actions;
        }

        // The designated primary of the target view installs it once it has
        // a 2f_R + 1 quorum of view-change votes.
        if self.primary_of(target) == self.me && votes >= self.params.view_change_quorum() {
            actions.extend(self.install_new_view_as_primary(target));
        }
        actions
    }

    fn install_new_view_as_primary(&mut self, target: ViewNumber) -> Vec<ConsensusAction> {
        let senders: Vec<NodeId> = self.view_change_votes[&target].keys().copied().collect();
        // Re-propose every request that prepared but did not commit, so it
        // survives the view change (Theorem VII.2's argument).
        let mut reissued = Vec::new();
        let pending: Vec<(SeqNum, Digest)> = self
            .log
            .prepared_uncommitted()
            .into_iter()
            .map(|(seq, _, digest)| (seq, digest))
            .collect();
        for (seq, digest) in pending {
            let Some(entry) = self.log.entry(seq) else {
                continue;
            };
            let plan = entry.plan;
            if let Some(batch) = entry.batch.clone() {
                let header = header_digest("preprepare", target, seq, &digest);
                reissued.push(PrePrepare {
                    view: target,
                    seq,
                    digest,
                    batch,
                    plan,
                    mac: self.crypto.broadcast_mac(&header),
                });
            }
        }
        let digest = sbft_crypto::digest_u64s(
            "newview",
            &[target.0, senders.len() as u64, reissued.len() as u64],
        );
        let new_view_msg = NewView {
            new_view: target,
            sender: self.me,
            view_change_senders: senders,
            reissued: reissued.clone(),
            signature: self.crypto.sign(&digest),
        };
        let mut actions = vec![ConsensusAction::Broadcast(ConsensusMessage::NewView(
            new_view_msg,
        ))];
        actions.extend(self.install_view(target));
        // The new primary re-runs consensus for the re-issued requests.
        for pp in reissued {
            let seq = pp.seq;
            let digest = pp.digest;
            if self
                .log
                .accept_pre_prepare(seq, target, digest, pp.batch.clone(), pp.plan)
            {
                actions.extend(self.after_pre_prepare(target, seq, digest));
            }
        }
        actions
    }

    fn install_view(&mut self, view: ViewNumber) -> Vec<ConsensusAction> {
        self.view = view;
        self.in_view_change = false;
        self.view_change_votes.retain(|v, _| *v > view);
        // Reconstructions keyed to the replaced view are dead; the new
        // primary's NEWVIEW re-proposes anything that prepared.
        self.pending_digest.clear();
        // The new primary continues the sequence space after the highest
        // sequence number that actually reached the prepared or committed
        // state. Sequence numbers that a byzantine primary "used" without
        // letting any request prepare are reused, so no permanent gap is
        // left in front of the verifier's k_max (PBFT fills such gaps with
        // null requests; reusing them for real batches is equivalent here
        // because nothing could have committed at those numbers).
        let highest_prepared = self
            .log
            .prepared_uncommitted()
            .iter()
            .map(|(s, _, _)| s.0)
            .max()
            .unwrap_or(0);
        let highest_relevant = self
            .log
            .max_committed()
            .0
            .max(highest_prepared)
            .max(self.log.stable_seq().0);
        self.next_seq = SeqNum(highest_relevant + 1);
        vec![
            ConsensusAction::CancelTimer(ConsensusTimer::ViewChange(view)),
            ConsensusAction::ViewInstalled {
                view,
                primary: self.primary_of(view),
            },
        ]
    }

    // ----- digest proposals -------------------------------------------------

    /// The peer a `BATCHFETCH` attempt targets: the primary of the
    /// proposal's view first, then rotation through the other replicas so
    /// a silent or partitioned primary cannot starve reconstruction (any
    /// replica that accepted the proposal holds the batch).
    fn fetch_target(&self, view: ViewNumber, attempt: u32) -> NodeId {
        let n = self.params.n_r as u32;
        let primary = self.primary_of(view);
        let mut target = NodeId((primary.0 + attempt) % n.max(1));
        if target == self.me {
            target = NodeId((target.0 + 1) % n.max(1));
        }
        target
    }

    /// Sends (or retransmits) the `BATCHFETCH` for a pending proposal and
    /// restarts its request timer.
    fn send_fetch(&mut self, seq: SeqNum) -> Vec<ConsensusAction> {
        let Some(pending) = self.pending_digest.get_mut(&seq) else {
            return Vec::new();
        };
        let attempt = pending.fetch_attempts;
        pending.fetch_attempts += 1;
        let fetch = BatchFetch {
            sender: self.me,
            view: pending.view,
            seq,
            digest: pending.digest,
            missing: if pending.full_requested {
                Vec::new()
            } else {
                pending.missing.iter().copied().collect()
            },
            full: pending.full_requested,
            mac: self.crypto.broadcast_mac(&header_digest(
                "batchfetch",
                pending.view,
                seq,
                &pending.digest,
            )),
        };
        let target = self.fetch_target(fetch.view, attempt);
        self.fetches_sent.inc();
        vec![
            ConsensusAction::Send(target, ConsensusMessage::BatchFetch(fetch)),
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::Request(seq),
                duration: self.node_timeout,
            },
        ]
    }

    /// Tries to finish reconstructing a pending digest proposal: if no
    /// bodies are missing, assembles the batch in proposal order, checks
    /// it against the proposal digest, and either votes (digest matches —
    /// quarantined bodies are promoted into the shared cache) or falls
    /// back to a full-batch fetch (mismatch — a poisoned fill or a lying
    /// primary; the mismatch is counted against the last filler, or the
    /// primary when the local cache alone produced it).
    fn try_complete_reconstruction(&mut self, seq: SeqNum) -> Vec<ConsensusAction> {
        let Some(pending) = self.pending_digest.get(&seq) else {
            return Vec::new();
        };
        if !pending.missing.is_empty() {
            return Vec::new();
        }
        let bodies: Vec<Transaction> = pending
            .txn_ids
            .iter()
            .filter_map(|id| {
                pending
                    .received
                    .get(id)
                    .or_else(|| self.body_cache.get(id))
                    .cloned()
            })
            .collect();
        let pending = self.pending_digest.get_mut(&seq).expect("checked above");
        if bodies.len() != pending.txn_ids.len() {
            // A GC raced the reconstruction out of its cached bodies;
            // refetch everything still absent.
            let held: BTreeSet<TxnId> = bodies.iter().map(|t| t.id).collect();
            pending.missing = pending
                .txn_ids
                .iter()
                .filter(|id| !held.contains(id))
                .copied()
                .collect();
            return self.send_fetch(seq);
        }
        let batch = Batch::new(bodies);
        if batch_digest(&batch) == pending.digest {
            let (view, digest, plan) = (pending.view, pending.digest, pending.plan);
            let received = std::mem::take(&mut pending.received);
            self.pending_digest.remove(&seq);
            self.body_cache.extend(received);
            if !self.log.accept_pre_prepare(seq, view, digest, batch, plan) {
                // Equivocation: a different digest already occupies the slot.
                return self.start_view_change(self.view.next());
            }
            return self.after_pre_prepare(view, seq, digest);
        }
        // Reconstruction mismatch. Quarantined bodies are discarded (never
        // promoted), the mismatch is counted against whoever supplied the
        // wrong material, and the full batch is requested — which the
        // digest check on arrival still pins, so a lying primary can only
        // stall into a view change, never corrupt state.
        let (proposal_view, last_filler) = (pending.view, pending.last_filler);
        pending.received.clear();
        pending.last_filler = None;
        let first_fallback = !pending.full_requested;
        pending.full_requested = true;
        let blamed = last_filler.unwrap_or_else(|| self.primary_of(proposal_view));
        *self.bad_responses.entry(blamed).or_insert(0) += 1;
        self.fallbacks.inc();
        if first_fallback {
            self.send_fetch(seq)
        } else {
            // Already on the fallback path and the full batch *still*
            // mismatched: leave the request timer to escalate.
            Vec::new()
        }
    }

    fn on_digest_pre_prepare(
        &mut self,
        from: NodeId,
        dpp: DigestPrePrepare,
    ) -> Vec<ConsensusAction> {
        // Same well-formedness gate as a full pre-prepare.
        if self.in_view_change
            || dpp.view != self.view
            || from != self.primary_of(dpp.view)
            || dpp.seq <= self.log.stable_seq()
        {
            return Vec::new();
        }
        let header = header_digest("digest-preprepare", dpp.view, dpp.seq, &dpp.digest);
        if !self
            .crypto
            .verify_broadcast_mac(ComponentId::Node(from), &header, &dpp.mac)
        {
            return Vec::new();
        }
        // Proposal self-consistency: a non-empty, duplicate-free id list
        // every member of which hits the bloom filter. Malformed proposals
        // are dropped before any fetch bandwidth is spent on them.
        if dpp.txn_ids.is_empty()
            || dpp.txn_ids.iter().collect::<BTreeSet<_>>().len() != dpp.txn_ids.len()
            || dpp.txn_ids.iter().any(|id| !dpp.bloom.contains(*id))
        {
            return Vec::new();
        }
        // Equivocation checks against both the log and the pending set:
        // two different digests proposed at one sequence number of one
        // view expose the primary.
        if let Some(entry) = self.log.entry(dpp.seq) {
            if entry.view == Some(dpp.view) {
                match entry.digest {
                    Some(d) if d != dpp.digest => return self.start_view_change(self.view.next()),
                    Some(_) => return Vec::new(), // duplicate of an accepted proposal
                    None => {}
                }
            }
        }
        if let Some(pending) = self.pending_digest.get(&dpp.seq) {
            if pending.view == dpp.view {
                if pending.digest != dpp.digest {
                    return self.start_view_change(self.view.next());
                }
                return Vec::new(); // duplicate of an in-flight reconstruction
            }
        }
        // Reconstruct from the body cache; fetch only what is missing.
        let missing: BTreeSet<TxnId> = dpp
            .txn_ids
            .iter()
            .filter(|id| !self.body_cache.contains_key(id))
            .copied()
            .collect();
        self.cache_hits
            .add((dpp.txn_ids.len() - missing.len()) as u64);
        self.cache_misses.add(missing.len() as u64);
        let need_fetch = !missing.is_empty();
        self.pending_digest.insert(
            dpp.seq,
            PendingProposal {
                view: dpp.view,
                digest: dpp.digest,
                txn_ids: dpp.txn_ids,
                plan: dpp.plan,
                missing,
                received: BTreeMap::new(),
                fetch_attempts: 0,
                full_requested: false,
                last_filler: None,
            },
        );
        if need_fetch {
            self.send_fetch(dpp.seq)
        } else {
            self.try_complete_reconstruction(dpp.seq)
        }
    }

    fn on_batch_fetch(&mut self, from: NodeId, bf: BatchFetch) -> Vec<ConsensusAction> {
        if bf.sender != from || from == self.me {
            return Vec::new();
        }
        let header = header_digest("batchfetch", bf.view, bf.seq, &bf.digest);
        if !self
            .crypto
            .verify_broadcast_mac(ComponentId::Node(from), &header, &bf.mac)
        {
            return Vec::new();
        }
        // Serve from the log: any node that accepted the proposal (the
        // primary always, any reconstructed replica eventually) holds the
        // batch under exactly this digest.
        let Some(batch) = self
            .log
            .entry(bf.seq)
            .filter(|e| e.digest == Some(bf.digest))
            .and_then(|e| e.batch.clone())
        else {
            return Vec::new();
        };
        let bodies: Vec<Transaction> = if bf.full {
            batch.txns().to_vec()
        } else {
            let wanted: BTreeSet<TxnId> = bf.missing.iter().copied().collect();
            batch
                .iter()
                .filter(|t| wanted.contains(&t.id))
                .cloned()
                .collect()
        };
        if bodies.is_empty() {
            return Vec::new();
        }
        self.fills_served.inc();
        vec![ConsensusAction::Send(
            from,
            ConsensusMessage::BatchFill(BatchFill {
                sender: self.me,
                seq: bf.seq,
                digest: bf.digest,
                bodies,
                full: bf.full,
            }),
        )]
    }

    fn on_batch_fill(&mut self, from: NodeId, bf: BatchFill) -> Vec<ConsensusAction> {
        if bf.sender != from {
            return Vec::new();
        }
        let Some(pending) = self.pending_digest.get_mut(&bf.seq) else {
            return Vec::new();
        };
        if pending.digest != bf.digest {
            return Vec::new();
        }
        if bf.full != pending.full_requested {
            // A stale per-body fill after we fell back (or vice versa);
            // only the currently requested shape is accepted.
            return Vec::new();
        }
        pending.last_filler = Some(from);
        if bf.full {
            // The full batch replaces reconstruction wholesale: quarantine
            // all bodies and let the digest check arbitrate.
            let expected: BTreeSet<TxnId> = pending.txn_ids.iter().copied().collect();
            if bf.bodies.len() != expected.len()
                || bf.bodies.iter().any(|t| !expected.contains(&t.id))
            {
                *self.bad_responses.entry(from).or_insert(0) += 1;
                return Vec::new();
            }
            pending.received = bf.bodies.into_iter().map(|t| (t.id, t)).collect();
            pending.missing.clear();
        } else {
            // Quarantine only bodies we actually asked for; everything
            // else is unsolicited and dropped.
            for body in bf.bodies {
                if pending.missing.remove(&body.id) {
                    pending.received.insert(body.id, body);
                }
            }
            if !pending.missing.is_empty() {
                return Vec::new();
            }
        }
        self.try_complete_reconstruction(bf.seq)
    }

    // ----- message handlers -------------------------------------------------

    fn on_pre_prepare(&mut self, from: NodeId, pp: PrePrepare) -> Vec<ConsensusAction> {
        // Well-formedness checks (Figure 3, line 10).
        if self.in_view_change
            || pp.view != self.view
            || from != self.primary_of(pp.view)
            || pp.sender_ok(from)
            || pp.seq <= self.log.stable_seq()
        {
            return Vec::new();
        }
        let header = header_digest("preprepare", pp.view, pp.seq, &pp.digest);
        if !self
            .crypto
            .verify_broadcast_mac(ComponentId::Node(from), &header, &pp.mac)
        {
            return Vec::new();
        }
        if batch_digest(&pp.batch) != pp.digest {
            return Vec::new();
        }
        if !self
            .log
            .accept_pre_prepare(pp.seq, pp.view, pp.digest, pp.batch.clone(), pp.plan)
        {
            // Equivocation detected: the primary proposed two different
            // batches at the same sequence number.
            return self.start_view_change(self.view.next());
        }
        self.after_pre_prepare(pp.view, pp.seq, pp.digest)
    }

    fn on_prepare(&mut self, from: NodeId, p: Prepare) -> Vec<ConsensusAction> {
        // Votes from earlier views or below the stable checkpoint are stale;
        // votes for the current or a *later* view are kept (they may have
        // overtaken the NEWVIEW message that installs that view).
        if p.sender != from || p.view < self.view || p.seq <= self.log.stable_seq() {
            return Vec::new();
        }
        let header = header_digest("prepare", p.view, p.seq, &p.digest);
        if !self
            .crypto
            .verify_broadcast_mac(ComponentId::Node(from), &header, &p.mac)
        {
            return Vec::new();
        }
        self.log.add_prepare(p);
        self.check_prepared(p.seq)
    }

    fn on_commit(&mut self, from: NodeId, c: Commit) -> Vec<ConsensusAction> {
        if c.sender != from || c.view < self.view || c.seq <= self.log.stable_seq() {
            return Vec::new();
        }
        let signed = commit_digest(c.view, c.seq, &c.digest);
        if !self
            .crypto
            .verify(ComponentId::Node(from), &signed, &c.signature)
        {
            return Vec::new();
        }
        self.log.add_commit(c);
        self.check_committed(c.seq)
    }

    fn on_view_change(&mut self, from: NodeId, vc: ViewChange) -> Vec<ConsensusAction> {
        if vc.sender != from {
            return Vec::new();
        }
        let digest = sbft_crypto::digest_u64s(
            "viewchange",
            &[
                vc.new_view.0,
                vc.last_stable_seq.0,
                vc.prepared.len() as u64,
            ],
        );
        if !self
            .crypto
            .verify(ComponentId::Node(from), &digest, &vc.signature)
        {
            return Vec::new();
        }
        self.record_view_change_vote(vc)
    }

    fn on_new_view(&mut self, from: NodeId, nv: NewView) -> Vec<ConsensusAction> {
        if nv.sender != from
            || nv.new_view <= self.view
            || from != self.primary_of(nv.new_view)
            || nv.view_change_senders.iter().collect::<BTreeSet<_>>().len()
                < self.params.view_change_quorum()
        {
            return Vec::new();
        }
        let digest = sbft_crypto::digest_u64s(
            "newview",
            &[
                nv.new_view.0,
                nv.view_change_senders.len() as u64,
                nv.reissued.len() as u64,
            ],
        );
        if !self
            .crypto
            .verify(ComponentId::Node(from), &digest, &nv.signature)
        {
            return Vec::new();
        }
        let mut actions = self.install_view(nv.new_view);
        for pp in nv.reissued {
            let header = header_digest("preprepare", pp.view, pp.seq, &pp.digest);
            if pp.view == self.view
                && batch_digest(&pp.batch) == pp.digest
                && self
                    .crypto
                    .verify_broadcast_mac(ComponentId::Node(from), &header, &pp.mac)
                && self.log.accept_pre_prepare(
                    pp.seq,
                    pp.view,
                    pp.digest,
                    pp.batch.clone(),
                    pp.plan,
                )
            {
                actions.extend(self.after_pre_prepare(pp.view, pp.seq, pp.digest));
            }
        }
        actions
    }

    fn on_checkpoint(&mut self, from: NodeId, cp: Checkpoint) -> Vec<ConsensusAction> {
        if cp.sender != from {
            return Vec::new();
        }
        let digest =
            sbft_crypto::digest_u64s("checkpoint", &[cp.seq.0, cp.certificates.len() as u64]);
        if !self
            .crypto
            .verify(ComponentId::Node(from), &digest, &cp.signature)
        {
            return Vec::new();
        }
        self.record_checkpoint_vote(cp)
    }

    fn on_state_request(&mut self, from: NodeId, req: StateRequest) -> Vec<ConsensusAction> {
        if req.sender != from {
            return Vec::new();
        }
        let digest = state_request_digest(req.sender, req.above);
        if !self
            .crypto
            .verify(ComponentId::Node(from), &digest, &req.signature)
        {
            return Vec::new();
        }
        // Ship every committed entry above the requested floor for which
        // we still hold both the batch and the certificate (everything
        // since our last stable checkpoint; older entries were garbage
        // collected and are covered by checkpoint catch-up instead).
        let entries: Vec<RecoveredEntry> = self
            .pending_certs
            .range(SeqNum(req.above.0 + 1)..)
            .filter_map(|(seq, cert)| {
                let entry = self.log.entry(*seq)?;
                let batch = entry.batch.clone()?;
                entry.committed.then(|| RecoveredEntry {
                    seq: *seq,
                    view: cert.view,
                    batch,
                    plan: entry.plan,
                    certificate: Arc::clone(cert),
                })
            })
            .collect();
        if entries.is_empty() && self.log.stable_seq() <= req.above {
            // Nothing the requester is missing; stay silent.
            return Vec::new();
        }
        vec![ConsensusAction::Send(
            from,
            ConsensusMessage::StateResponse(StateResponse {
                sender: self.me,
                stable_seq: self.log.stable_seq(),
                entries,
            }),
        )]
    }

    fn on_state_response(&mut self, from: NodeId, resp: StateResponse) -> Vec<ConsensusAction> {
        if resp.sender != from {
            return Vec::new();
        }
        // First pass: validate. The response is unsigned; each entry must
        // self-certify (the certificate carries a commit quorum and the
        // batch must hash to the digest the quorum signed). Garbage —
        // mismatched or invalid certificates, digest mismatches, a stale
        // view claim contradicting the certificate — is rejected and
        // counted against the sender, never seated. Entries already held
        // (or already adopted from another peer's overlapping suffix) are
        // skipped silently: the adopt-once ledger makes duplicated and
        // overlapping responses idempotent.
        let mut valid = Vec::new();
        let mut duplicates = 0usize;
        let mut garbage = 0u64;
        for e in resp.entries {
            if e.seq <= self.log.stable_seq()
                || self.log.is_committed(e.seq)
                || self.adopted_from_peers.contains(&e.seq)
            {
                duplicates += 1;
                continue;
            }
            if e.certificate.seq != e.seq
                || e.view != e.certificate.view
                || e.certificate
                    .verify(
                        self.crypto.provider().key_store(),
                        self.quorum(),
                        self.params.n_r,
                    )
                    .is_err()
                || batch_digest(&e.batch) != e.certificate.batch_digest
            {
                garbage += 1;
                continue;
            }
            valid.push(e);
        }
        if garbage > 0 {
            *self.bad_responses.entry(from).or_insert(0) += garbage;
        }

        let mut actions = Vec::new();
        let mut useful = duplicates > 0 && garbage == 0;

        // Checkpoint catch-up: the responder's snapshot floor is above
        // everything we hold, so the suffix below it is gone from peer
        // retention. Adopting the floor is safe once it is *proven* — a
        // certified entry above it in the same response — or *vouched* by
        // `f_r + 1` distinct peers claiming at least that floor (at least
        // one of them honest).
        let floor = resp.stable_seq;
        let claim = self.floor_claims.entry(from).or_insert(SeqNum(0));
        *claim = (*claim).max(floor);
        if floor > self.log.max_committed().max(self.log.stable_seq()) {
            let proven = valid.iter().any(|e| e.seq > floor);
            let vouched =
                self.floor_claims.values().filter(|s| **s >= floor).count() > self.params.f_r;
            if proven || vouched {
                self.log.collect_below(floor);
                self.pending_certs.retain(|s, _| *s > floor);
                self.checkpoint_votes.retain(|s, _| *s > floor);
                self.adopted_from_peers.retain(|s| *s > floor);
                self.next_seq = self.next_seq.max(SeqNum(floor.0 + 1));
                self.catch_ups += 1;
                useful = true;
                actions.push(ConsensusAction::CaughtUp { up_to: floor });
            }
        }

        for e in valid {
            if e.seq <= self.log.stable_seq() {
                // Covered by a floor adopted above.
                continue;
            }
            let entry = self.log.entry_mut(e.seq);
            entry.committed = true;
            entry.prepared = true;
            entry.view = Some(e.certificate.view);
            entry.digest = Some(e.certificate.batch_digest);
            entry.batch = Some(e.batch.clone());
            entry.plan = e.plan;
            self.pending_certs.insert(e.seq, Arc::clone(&e.certificate));
            self.adopted_from_peers.insert(e.seq);
            self.next_seq = self.next_seq.max(SeqNum(e.seq.0 + 1));
            useful = true;
            actions.push(ConsensusAction::CancelTimer(ConsensusTimer::Request(e.seq)));
            actions.push(ConsensusAction::Committed {
                view: e.certificate.view,
                seq: e.seq,
                batch: e.batch,
                plan: e.plan,
                certificate: Some(e.certificate),
            });
        }

        // A useful response ends the retransmission schedule.
        if useful && self.state_transfer_attempt.take().is_some() {
            actions.push(ConsensusAction::CancelTimer(ConsensusTimer::StateTransfer));
        }
        actions
    }

    /// The highest sequence this replica can prove committed — what a
    /// retransmitted `STATEREQUEST` asks above.
    fn transfer_floor(&self) -> SeqNum {
        self.log.max_committed().max(self.log.stable_seq())
    }

    /// Capped exponential backoff for the `STATEREQUEST` retransmission
    /// timer: `node_timeout / 2` doubling per attempt, capped at
    /// `4 × node_timeout`.
    fn state_retry_backoff(&self, attempt: u32) -> SimDuration {
        let base = (self.node_timeout.as_micros() / 2).max(1);
        let cap = self.node_timeout.as_micros().saturating_mul(4).max(1);
        SimDuration::from_micros(base.saturating_mul(1 << attempt.min(16)).min(cap))
    }

    /// The peer a retransmission attempt targets: retries rotate through
    /// the other replicas one at a time, so a silent, partitioned or
    /// lying peer cannot starve recovery.
    fn rotation_peer(&self, attempt: u32) -> NodeId {
        let n = self.params.n_r as u32;
        let others = n.saturating_sub(1).max(1);
        let k = attempt.saturating_sub(1) % others;
        NodeId((self.me.0 + 1 + k) % n.max(1))
    }

    /// Expiry of the `STATEREQUEST` retransmission timer: re-sign the
    /// request at the current transfer floor (adopted entries raise it,
    /// shrinking retransmitted suffixes) and send it to the next peer in
    /// rotation, backing off exponentially until the budget is spent.
    fn retransmit_state_request(&mut self) -> Vec<ConsensusAction> {
        let Some(attempt) = self.state_transfer_attempt else {
            return Vec::new();
        };
        if attempt >= STATE_RETRY_BUDGET {
            self.state_transfer_attempt = None;
            return Vec::new();
        }
        let attempt = attempt + 1;
        self.state_transfer_attempt = Some(attempt);
        self.retries += 1;
        let above = self.transfer_floor();
        let digest = state_request_digest(self.me, above);
        let req = StateRequest {
            sender: self.me,
            above,
            signature: self.crypto.sign(&digest),
        };
        vec![
            ConsensusAction::Send(
                self.rotation_peer(attempt),
                ConsensusMessage::StateRequest(req),
            ),
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::StateTransfer,
                duration: self.state_retry_backoff(attempt),
            },
        ]
    }
}

/// The digest a recovering replica signs over its `STATEREQUEST`.
fn state_request_digest(sender: NodeId, above: SeqNum) -> Digest {
    sbft_crypto::digest_u64s("staterequest", &[u64::from(sender.0), above.0])
}

impl PrePrepare {
    /// Helper used by the replica's well-formedness check: pre-prepares are
    /// only sent by the primary, so a mismatched relayer is rejected. (The
    /// message itself does not carry a sender field; this returns `false`,
    /// meaning "no inconsistency", and exists to keep the check list
    /// aligned with Figure 3.)
    #[allow(clippy::unused_self)]
    fn sender_ok(&self, _from: NodeId) -> bool {
        false
    }
}

impl OrderingProtocol for PbftReplica {
    fn submit_batch(&mut self, batch: Batch, plan: ShardPlan) -> Vec<ConsensusAction> {
        if !self.is_primary() || self.in_view_change {
            return Vec::new();
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.next();
        let digest = batch_digest(&batch);
        if !self
            .log
            .accept_pre_prepare(seq, self.view, digest, batch.clone(), plan)
        {
            return Vec::new();
        }
        let proposal = if self.digest_mode {
            // Bandwidth-frugal proposal: ids + bloom filter, no bodies.
            // Replicas rebuild the batch from client submissions and
            // fetch only what they miss; the digest pins the contents.
            let txn_ids = batch.txn_ids();
            let header = header_digest("digest-preprepare", self.view, seq, &digest);
            ConsensusMessage::DigestPrePrepare(DigestPrePrepare {
                view: self.view,
                seq,
                digest,
                bloom: TxnBloom::from_ids(&txn_ids),
                txn_ids,
                plan,
                mac: self.crypto.broadcast_mac(&header),
            })
        } else {
            let header = header_digest("preprepare", self.view, seq, &digest);
            ConsensusMessage::PrePrepare(PrePrepare {
                view: self.view,
                seq,
                digest,
                batch,
                plan,
                mac: self.crypto.broadcast_mac(&header),
            })
        };
        let mut actions = vec![ConsensusAction::Broadcast(proposal)];
        actions.extend(self.after_pre_prepare(self.view, seq, digest));
        actions
    }

    fn handle_message(&mut self, from: NodeId, msg: ConsensusMessage) -> Vec<ConsensusAction> {
        match msg {
            ConsensusMessage::PrePrepare(pp) => self.on_pre_prepare(from, pp),
            ConsensusMessage::DigestPrePrepare(dpp) => self.on_digest_pre_prepare(from, dpp),
            ConsensusMessage::BatchFetch(bf) => self.on_batch_fetch(from, bf),
            ConsensusMessage::BatchFill(bf) => self.on_batch_fill(from, bf),
            ConsensusMessage::Prepare(p) => self.on_prepare(from, p),
            ConsensusMessage::Commit(c) => self.on_commit(from, c),
            ConsensusMessage::ViewChange(vc) => self.on_view_change(from, vc),
            ConsensusMessage::NewView(nv) => self.on_new_view(from, nv),
            ConsensusMessage::Checkpoint(cp) => self.on_checkpoint(from, cp),
            ConsensusMessage::StateRequest(req) => self.on_state_request(from, req),
            ConsensusMessage::StateResponse(resp) => self.on_state_response(from, resp),
            // CFT messages are ignored by a BFT replica.
            _ => Vec::new(),
        }
    }

    fn handle_timer(&mut self, timer: ConsensusTimer) -> Vec<ConsensusAction> {
        match timer {
            ConsensusTimer::Request(seq) => {
                if self.log.is_committed(seq) || seq <= self.log.stable_seq() {
                    Vec::new()
                } else if self
                    .pending_digest
                    .get(&seq)
                    .is_some_and(|p| p.fetch_attempts <= FETCH_RETRY_BUDGET)
                {
                    // Reconstruction is still fetching bodies; retransmit
                    // (rotating to another peer) before blaming the
                    // primary. The retry budget bounds how long a lossy
                    // fetch link can defer the view change.
                    self.send_fetch(seq)
                } else {
                    // The primary failed to complete consensus in time.
                    self.start_view_change(self.view.next())
                }
            }
            ConsensusTimer::ViewChange(target) => {
                if self.view >= target {
                    Vec::new()
                } else {
                    // The view change itself stalled; escalate further.
                    self.start_view_change(target.next())
                }
            }
            ConsensusTimer::StateTransfer => self.retransmit_state_request(),
        }
    }

    fn request_view_change(&mut self) -> Vec<ConsensusAction> {
        self.start_view_change(self.view.next())
    }

    fn install_recovered(
        &mut self,
        entries: Vec<RecoveredEntry>,
        stable: SeqNum,
        view: ViewNumber,
    ) -> Vec<ConsensusAction> {
        self.view = self.view.max(view);
        self.in_view_change = false;
        if stable > SeqNum(0) {
            self.log.collect_below(stable);
        }
        // Re-seat the durable committed suffix. No `Committed` action is
        // emitted for these: the caller already acted on them before the
        // crash (the WAL record was synced after the fact) and re-seating
        // must not re-spawn executors.
        let mut max_seq = stable;
        for e in entries {
            max_seq = max_seq.max(e.seq);
            let entry = self.log.entry_mut(e.seq);
            entry.committed = true;
            entry.prepared = true;
            entry.view = Some(e.view);
            entry.digest = Some(e.certificate.batch_digest);
            entry.batch = Some(e.batch);
            entry.plan = e.plan;
            self.pending_certs.insert(e.seq, e.certificate);
        }
        self.next_seq = self.next_seq.max(SeqNum(max_seq.0 + 1));
        // Everything above the durable suffix was lost with the process;
        // ask the peers for it. The broadcast is backed by a
        // retransmission timer: on a lossy or partitioned network the
        // request is re-sent with capped exponential backoff, rotating
        // through the peers, until a useful response lands or the retry
        // budget is spent.
        self.state_transfer_attempt = Some(0);
        let digest = state_request_digest(self.me, max_seq);
        vec![
            ConsensusAction::Broadcast(ConsensusMessage::StateRequest(StateRequest {
                sender: self.me,
                above: max_seq,
                signature: self.crypto.sign(&digest),
            })),
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::StateTransfer,
                duration: self.state_retry_backoff(0),
            },
        ]
    }

    fn view(&self) -> ViewNumber {
        self.view
    }

    fn primary(&self) -> NodeId {
        self.primary_of(self.view)
    }

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            bad_state_responses: self.bad_responses.values().sum(),
            state_request_retries: self.retries,
            catch_ups: self.catch_ups,
        }
    }

    fn offer_body(&mut self, txn: Transaction) -> Vec<ConsensusAction> {
        if !self.digest_mode {
            return Vec::new();
        }
        let id = txn.id;
        self.body_cache.insert(id, txn);
        // The body may be the last piece of an in-flight reconstruction
        // (client broadcast racing the proposal).
        let completable: Vec<SeqNum> = self
            .pending_digest
            .iter_mut()
            .filter_map(|(seq, p)| (p.missing.remove(&id) && p.missing.is_empty()).then_some(*seq))
            .collect();
        let mut actions = Vec::new();
        for seq in completable {
            actions.extend(self.try_complete_reconstruction(seq));
        }
        actions
    }

    fn gc_bodies(&mut self, protected: &HashSet<TxnId>) {
        self.body_cache.retain(|id, _| protected.contains(id));
    }

    fn pending_reconstructions(&self) -> Vec<SeqNum> {
        self.pending_digest.keys().copied().collect()
    }

    fn cached_bodies(&self) -> usize {
        self.body_cache.len()
    }

    fn register_metrics(&mut self, registry: &Registry, prefix: &str) {
        self.cache_hits = registry.counter(&format!("{prefix}.digest.cache_hits"));
        self.cache_misses = registry.counter(&format!("{prefix}.digest.cache_misses"));
        self.fetches_sent = registry.counter(&format!("{prefix}.digest.fetches_sent"));
        self.fills_served = registry.counter(&format!("{prefix}.digest.fills_served"));
        self.fallbacks = registry.counter(&format!("{prefix}.digest.fallbacks"));
    }

    fn name(&self) -> &'static str {
        "PBFT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::committed_seqs;
    use sbft_crypto::CryptoProvider;
    use sbft_types::{ClientId, Key, Operation, Transaction, TxnId};

    /// A tiny in-memory shim network delivering consensus messages until
    /// quiescence. Nodes listed in `down` receive nothing and send nothing.
    struct TestShim {
        replicas: Vec<PbftReplica>,
        down: BTreeSet<NodeId>,
        /// Nodes kept "in the dark": they do not receive the normal-case
        /// consensus messages (a byzantine primary excludes them) but still
        /// receive checkpoints and view-change traffic from honest peers.
        dark: BTreeSet<NodeId>,
        /// Committed (node, seq, batch-len) triples observed.
        committed: Vec<(NodeId, SeqNum, usize)>,
        /// The batches delivered by Committed actions (zero-copy checks).
        committed_batches: Vec<(NodeId, Batch)>,
        certificates: Vec<Arc<CommitCertificate>>,
        caught_up: Vec<(NodeId, SeqNum)>,
        provider: std::sync::Arc<CryptoProvider>,
    }

    impl TestShim {
        fn new(n: usize) -> Self {
            let provider = CryptoProvider::new(7);
            let params = FaultParams::for_shim_size(n);
            let replicas = (0..n as u32)
                .map(|i| {
                    PbftReplica::new(
                        NodeId(i),
                        params,
                        provider.handle(ComponentId::Node(NodeId(i))),
                        SimDuration::from_millis(100),
                        4,
                    )
                })
                .collect();
            TestShim {
                replicas,
                down: BTreeSet::new(),
                dark: BTreeSet::new(),
                committed: Vec::new(),
                committed_batches: Vec::new(),
                certificates: Vec::new(),
                caught_up: Vec::new(),
                provider,
            }
        }

        /// A shim whose replicas run in digest-proposal mode.
        fn new_digest(n: usize) -> Self {
            let mut shim = TestShim::new(n);
            shim.replicas = shim
                .replicas
                .drain(..)
                .map(|r| r.with_digest_proposals(true))
                .collect();
            shim
        }

        /// Feeds every replica's body cache with the batch's transactions
        /// (models the client broadcast that warms the caches), running
        /// any actions a completed reconstruction produces.
        fn offer_to_all(&mut self, batch: &Batch) {
            for i in 0..self.replicas.len() {
                for txn in batch.txns() {
                    let actions = self.replicas[i].offer_body(txn.clone());
                    self.run_actions(NodeId(i as u32), actions);
                }
            }
        }

        fn blocked(&self, to: NodeId, msg: &ConsensusMessage) -> bool {
            if self.down.contains(&to) {
                return true;
            }
            if self.dark.contains(&to) {
                // A node in the dark misses the normal-case traffic only.
                return matches!(
                    msg,
                    ConsensusMessage::PrePrepare(_)
                        | ConsensusMessage::Prepare(_)
                        | ConsensusMessage::Commit(_)
                );
            }
            false
        }

        fn run_actions(&mut self, origin: NodeId, actions: Vec<ConsensusAction>) {
            // FIFO delivery: messages are handled in the order they were
            // sent, as they would be over per-connection sockets.
            let mut queue: std::collections::VecDeque<(NodeId, NodeId, ConsensusMessage)> =
                std::collections::VecDeque::new();
            self.collect(origin, actions, &mut queue);
            while let Some((from, to, msg)) = queue.pop_front() {
                if self.blocked(to, &msg) || self.down.contains(&from) {
                    continue;
                }
                let acts = self.replicas[to.0 as usize].handle_message(from, msg);
                self.collect(to, acts, &mut queue);
            }
        }

        fn collect(
            &mut self,
            origin: NodeId,
            actions: Vec<ConsensusAction>,
            queue: &mut std::collections::VecDeque<(NodeId, NodeId, ConsensusMessage)>,
        ) {
            for action in actions {
                match action {
                    ConsensusAction::Broadcast(msg) => {
                        if self.down.contains(&origin) {
                            continue;
                        }
                        for r in &self.replicas {
                            let id = r.node_id();
                            if id != origin && !self.down.contains(&id) {
                                queue.push_back((origin, id, msg.clone()));
                            }
                        }
                    }
                    ConsensusAction::Send(to, msg)
                        if !self.down.contains(&origin) && !self.down.contains(&to) =>
                    {
                        queue.push_back((origin, to, msg));
                    }
                    ConsensusAction::Committed {
                        seq,
                        batch,
                        certificate,
                        ..
                    } => {
                        self.committed.push((origin, seq, batch.len()));
                        self.committed_batches.push((origin, batch));
                        if let Some(cert) = certificate {
                            self.certificates.push(cert);
                        }
                    }
                    ConsensusAction::CaughtUp { up_to } => {
                        self.caught_up.push((origin, up_to));
                    }
                    _ => {}
                }
            }
        }

        fn submit_to_primary(&mut self, batch: Batch) {
            let primary = self.replicas[0].primary();
            let actions =
                self.replicas[primary.0 as usize].submit_batch(batch, ShardPlan::Unplanned);
            self.run_actions(primary, actions);
        }

        fn committed_by(&self, node: NodeId) -> Vec<SeqNum> {
            self.committed
                .iter()
                .filter(|(n, _, _)| *n == node)
                .map(|(_, s, _)| *s)
                .collect()
        }
    }

    fn batch(counter: u64) -> Batch {
        Batch::single(Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        ))
    }

    #[test]
    fn normal_case_commits_on_every_replica() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        for i in 0..4u32 {
            assert_eq!(shim.committed_by(NodeId(i)), vec![SeqNum(1)], "node {i}");
        }
    }

    #[test]
    fn committed_batches_share_storage_with_the_submitted_batch() {
        // Zero-copy hand-off: the batch the primary submits travels through
        // PREPREPARE, every replica's log and the Committed action as a
        // refcount bump — all four replicas deliver the *same* transaction
        // allocation, never a deep clone.
        let mut shim = TestShim::new(4);
        let submitted = batch(0);
        let primary = shim.replicas[0].primary();
        let actions =
            shim.replicas[primary.0 as usize].submit_batch(submitted.clone(), ShardPlan::Unplanned);
        shim.run_actions(primary, actions);
        assert_eq!(shim.committed_batches.len(), 4, "all replicas committed");
        for (node, b) in &shim.committed_batches {
            assert!(
                b.shares_txns(&submitted),
                "node {node} must deliver the submitted batch's storage"
            );
        }
        // The delivered digest is memoized once and carried by every clone.
        assert!(shim.committed_batches[0].1.cached_digest().is_some());
    }

    #[test]
    fn certificates_from_commit_quorum_verify() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        assert!(!shim.certificates.is_empty());
        let store = shim.provider.key_store();
        for cert in &shim.certificates {
            assert!(cert.verify(store, 3, 4).is_ok());
            assert_eq!(cert.seq, SeqNum(1));
        }
    }

    #[test]
    fn sequence_numbers_increase_monotonically() {
        let mut shim = TestShim::new(4);
        for i in 0..5 {
            shim.submit_to_primary(batch(i));
        }
        for i in 0..4u32 {
            assert_eq!(
                shim.committed_by(NodeId(i)),
                (1..=5).map(SeqNum).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn non_primary_ignores_submitted_batches() {
        let mut shim = TestShim::new(4);
        let actions = shim.replicas[2].submit_batch(batch(0), ShardPlan::Unplanned);
        assert!(actions.is_empty());
    }

    #[test]
    fn larger_shim_commits_too() {
        let mut shim = TestShim::new(8);
        shim.submit_to_primary(batch(0));
        shim.submit_to_primary(batch(1));
        for i in 0..8u32 {
            assert_eq!(shim.committed_by(NodeId(i)).len(), 2, "node {i}");
        }
    }

    #[test]
    fn commits_survive_one_crashed_backup() {
        let mut shim = TestShim::new(4);
        shim.down.insert(NodeId(3));
        shim.submit_to_primary(batch(0));
        for i in 0..3u32 {
            assert_eq!(shim.committed_by(NodeId(i)), vec![SeqNum(1)]);
        }
        assert!(shim.committed_by(NodeId(3)).is_empty());
    }

    #[test]
    fn no_commit_without_quorum() {
        let mut shim = TestShim::new(4);
        shim.down.insert(NodeId(2));
        shim.down.insert(NodeId(3));
        shim.submit_to_primary(batch(0));
        assert!(shim.committed.is_empty(), "2 of 4 nodes cannot commit");
    }

    #[test]
    fn request_timer_expiry_triggers_view_change() {
        let mut shim = TestShim::new(4);
        // Node 1 accepted a pre-prepare but consensus never finishes
        // (simulate by timing out directly).
        let actions = shim.replicas[1].handle_timer(ConsensusTimer::Request(SeqNum(1)));
        assert!(
            actions.iter().any(|a| a.is_message_kind("VIEWCHANGE")),
            "timeout must broadcast a view change: {actions:?}"
        );
        assert!(shim.replicas[1].in_view_change());
    }

    #[test]
    fn view_change_elects_next_primary_and_resumes() {
        let mut shim = TestShim::new(4);
        // The primary (node 0) goes silent.
        shim.down.insert(NodeId(0));
        // All remaining nodes time out on a request the primary suppressed
        // (timers fire at roughly the same time, before any view-change
        // traffic is exchanged).
        let pending: Vec<(NodeId, Vec<ConsensusAction>)> = (1..4u32)
            .map(|i| {
                (
                    NodeId(i),
                    shim.replicas[i as usize].handle_timer(ConsensusTimer::Request(SeqNum(1))),
                )
            })
            .collect();
        for (origin, actions) in pending {
            shim.run_actions(origin, actions);
        }
        for i in 1..4u32 {
            assert_eq!(shim.replicas[i as usize].view(), ViewNumber(1), "node {i}");
            assert_eq!(shim.replicas[i as usize].primary(), NodeId(1));
            assert!(!shim.replicas[i as usize].in_view_change());
        }
        // The new primary can order new batches.
        let actions = shim.replicas[1].submit_batch(batch(7), ShardPlan::Unplanned);
        shim.run_actions(NodeId(1), actions);
        for i in 1..4u32 {
            assert!(!shim.committed_by(NodeId(i)).is_empty(), "node {i}");
        }
    }

    #[test]
    fn explicit_view_change_request_is_honoured() {
        let mut shim = TestShim::new(4);
        shim.down.insert(NodeId(0));
        let pending: Vec<(NodeId, Vec<ConsensusAction>)> = (1..4u32)
            .map(|i| (NodeId(i), shim.replicas[i as usize].request_view_change()))
            .collect();
        for (origin, actions) in pending {
            shim.run_actions(origin, actions);
        }
        assert_eq!(shim.replicas[1].view(), ViewNumber(1));
    }

    #[test]
    fn prepared_requests_survive_view_change() {
        let mut shim = TestShim::new(4);
        // Run a full consensus first so nodes have state, then suppress the
        // primary before it can propose seq 2 and make sure a prepared
        // entry at the new primary is re-proposed.
        shim.submit_to_primary(batch(0));
        // Manually inject a prepared-but-uncommitted entry at node 1 (as if
        // commits were lost).
        let b = batch(1);
        let digest = batch_digest(&b);
        shim.replicas[1].log.accept_pre_prepare(
            SeqNum(2),
            ViewNumber(0),
            digest,
            b.clone(),
            ShardPlan::Unplanned,
        );
        shim.replicas[1].log.entry_mut(SeqNum(2)).prepared = true;
        shim.down.insert(NodeId(0));
        let pending: Vec<(NodeId, Vec<ConsensusAction>)> = (1..4u32)
            .map(|i| {
                (
                    NodeId(i),
                    shim.replicas[i as usize].handle_timer(ConsensusTimer::Request(SeqNum(2))),
                )
            })
            .collect();
        for (origin, actions) in pending {
            shim.run_actions(origin, actions);
        }
        // Node 1 is the new primary and re-proposed seq 2; everyone commits it.
        for i in 1..4u32 {
            assert!(
                shim.committed_by(NodeId(i)).contains(&SeqNum(2)),
                "node {i} must commit the re-proposed request: {:?}",
                shim.committed_by(NodeId(i))
            );
        }
    }

    #[test]
    fn plan_tag_replicates_to_every_log_and_survives_reproposal() {
        let plan = ShardPlan::SingleHome(sbft_types::ShardId(2));
        // Normal case: the tag lands in every replica's log entry.
        let mut shim = TestShim::new(4);
        let primary = shim.replicas[0].primary();
        let actions = shim.replicas[primary.0 as usize].submit_batch(batch(0), plan);
        shim.run_actions(primary, actions);
        for r in &shim.replicas {
            assert_eq!(
                r.log().entry(SeqNum(1)).expect("entry").plan,
                plan,
                "node {} must replicate the tag",
                r.node_id()
            );
        }
        // View change: a prepared-but-uncommitted tagged proposal at the
        // next primary is re-issued with the tag intact and commits.
        let mut shim = TestShim::new(4);
        let b = batch(1);
        let digest = batch_digest(&b);
        shim.replicas[1]
            .log
            .accept_pre_prepare(SeqNum(1), ViewNumber(0), digest, b, plan);
        shim.replicas[1].log.entry_mut(SeqNum(1)).prepared = true;
        shim.down.insert(NodeId(0));
        let pending: Vec<(NodeId, Vec<ConsensusAction>)> = (1..4u32)
            .map(|i| {
                (
                    NodeId(i),
                    shim.replicas[i as usize].handle_timer(ConsensusTimer::Request(SeqNum(1))),
                )
            })
            .collect();
        for (origin, actions) in pending {
            shim.run_actions(origin, actions);
        }
        for i in 1..4u32 {
            assert!(shim.committed_by(NodeId(i)).contains(&SeqNum(1)));
            assert_eq!(
                shim.replicas[i as usize]
                    .log()
                    .entry(SeqNum(1))
                    .expect("entry")
                    .plan,
                plan,
                "node {i} must re-learn the tag from the re-proposal"
            );
        }
    }

    #[test]
    fn equivocating_pre_prepare_is_rejected() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        // Forge a second pre-prepare for seq 1 with a different batch,
        // correctly MACed by the primary's handle.
        let evil = batch(99);
        let digest = batch_digest(&evil);
        let header = header_digest("preprepare", ViewNumber(0), SeqNum(1), &digest);
        let primary_handle = shim.provider.handle(ComponentId::Node(NodeId(0)));
        let pp = PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest,
            batch: evil,
            plan: ShardPlan::Unplanned,
            mac: primary_handle.broadcast_mac(&header),
        };
        let actions = shim.replicas[1].handle_message(NodeId(0), ConsensusMessage::PrePrepare(pp));
        // The node detects equivocation and asks for a view change rather
        // than accepting the conflicting proposal.
        assert!(actions.iter().any(|a| a.is_message_kind("VIEWCHANGE")));
        assert!(committed_seqs(&actions).is_empty());
    }

    #[test]
    fn pre_prepare_with_bad_mac_or_wrong_sender_ignored() {
        let mut shim = TestShim::new(4);
        let b = batch(0);
        let digest = batch_digest(&b);
        let pp = PrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest,
            batch: b.clone(),
            plan: ShardPlan::Unplanned,
            mac: sbft_types::MacTag::ZERO,
        };
        // Bad MAC.
        assert!(shim.replicas[1]
            .handle_message(NodeId(0), ConsensusMessage::PrePrepare(pp.clone()))
            .is_empty());
        // Correct MAC but sent by a non-primary node.
        let header = header_digest("preprepare", ViewNumber(0), SeqNum(1), &digest);
        let not_primary = shim.provider.handle(ComponentId::Node(NodeId(2)));
        let pp2 = PrePrepare {
            mac: not_primary.broadcast_mac(&header),
            ..pp
        };
        assert!(shim.replicas[1]
            .handle_message(NodeId(2), ConsensusMessage::PrePrepare(pp2))
            .is_empty());
    }

    #[test]
    fn commit_with_forged_signature_does_not_count() {
        let mut shim = TestShim::new(4);
        let c = Commit {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            sender: NodeId(3),
            signature: sbft_types::Signature::ZERO,
        };
        assert!(shim.replicas[1]
            .handle_message(NodeId(3), ConsensusMessage::Commit(c))
            .is_empty());
    }

    #[test]
    fn checkpoints_garbage_collect_the_log() {
        let mut shim = TestShim::new(4);
        // Checkpoint interval in the test shim is 4.
        for i in 0..4 {
            shim.submit_to_primary(batch(i));
        }
        for r in &shim.replicas {
            assert_eq!(r.log().stable_seq(), SeqNum(4), "node {}", r.node_id());
            assert!(r.log().is_empty(), "log must be garbage collected");
        }
        // Consensus continues normally after the checkpoint.
        shim.submit_to_primary(batch(5));
        for i in 0..4u32 {
            assert!(shim.committed_by(NodeId(i)).contains(&SeqNum(5)));
        }
    }

    #[test]
    fn node_in_dark_catches_up_from_featherweight_checkpoint() {
        let mut shim = TestShim::new(4);
        // Node 3 is kept in the dark by a clever primary: it misses every
        // PREPREPARE/PREPARE/COMMIT, but the honest nodes' featherweight
        // checkpoints still reach it.
        shim.dark.insert(NodeId(3));
        for i in 0..4 {
            shim.submit_to_primary(batch(i));
        }
        // It never committed anything itself …
        assert!(shim.committed_by(NodeId(3)).is_empty());
        // … but the checkpoint at seq 4 (interval = 4) brought it up to date.
        assert!(
            shim.caught_up
                .iter()
                .any(|(n, s)| *n == NodeId(3) && *s == SeqNum(4)),
            "dark node must report catching up: {:?}",
            shim.caught_up
        );
        assert_eq!(shim.replicas[3].log().stable_seq(), SeqNum(4));
        // The other nodes committed normally.
        for i in 0..3u32 {
            assert_eq!(shim.committed_by(NodeId(i)).len(), 4, "node {i}");
        }
    }

    #[test]
    fn timer_for_committed_request_is_a_no_op() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        let actions = shim.replicas[1].handle_timer(ConsensusTimer::Request(SeqNum(1)));
        assert!(actions.is_empty());
    }

    #[test]
    fn crashed_replica_with_empty_log_state_transfers_everything() {
        let mut shim = TestShim::new(4);
        for i in 0..3 {
            shim.submit_to_primary(batch(i));
        }
        // Node 3 crashes with no durable log at all: replace it with a
        // fresh replica and run recovery.
        let params = FaultParams::for_shim_size(4);
        shim.replicas[3] = PbftReplica::new(
            NodeId(3),
            params,
            shim.provider.handle(ComponentId::Node(NodeId(3))),
            SimDuration::from_millis(100),
            4,
        );
        let before = shim.committed_by(NodeId(3)).len();
        let actions = shim.replicas[3].install_recovered(Vec::new(), SeqNum(0), ViewNumber(0));
        assert!(
            actions.iter().any(|a| a.is_message_kind("STATEREQUEST")),
            "recovery must ask peers for the suffix: {actions:?}"
        );
        shim.run_actions(NodeId(3), actions);
        let recovered: Vec<SeqNum> = shim.committed_by(NodeId(3))[before..].to_vec();
        assert_eq!(recovered, vec![SeqNum(1), SeqNum(2), SeqNum(3)]);
        // The replica is live again: a new batch commits on it normally.
        shim.submit_to_primary(batch(9));
        assert!(shim.committed_by(NodeId(3)).contains(&SeqNum(4)));
    }

    #[test]
    fn recovered_suffix_is_reseated_without_reemitting_commits() {
        let mut shim = TestShim::new(4);
        for i in 0..2 {
            shim.submit_to_primary(batch(i));
        }
        // Capture node 3's committed state as its "durable log" contents.
        let entries: Vec<RecoveredEntry> = (1..=2)
            .map(|s| {
                let entry = shim.replicas[3].log().entry(SeqNum(s)).expect("entry");
                RecoveredEntry {
                    seq: SeqNum(s),
                    view: ViewNumber(0),
                    batch: entry.batch.clone().expect("batch"),
                    plan: entry.plan,
                    certificate: Arc::clone(&shim.replicas[3].pending_certs[&SeqNum(s)]),
                }
            })
            .collect();
        let params = FaultParams::for_shim_size(4);
        shim.replicas[3] = PbftReplica::new(
            NodeId(3),
            params,
            shim.provider.handle(ComponentId::Node(NodeId(3))),
            SimDuration::from_millis(100),
            4,
        );
        let before = shim.committed.len();
        let actions = shim.replicas[3].install_recovered(entries, SeqNum(0), ViewNumber(0));
        shim.run_actions(NodeId(3), actions);
        // Nothing was missing, so re-seating produced no Committed actions
        // anywhere (peers had nothing above seq 2 either).
        assert_eq!(shim.committed.len(), before, "no re-delivery");
        assert!(shim.replicas[3].log().is_committed(SeqNum(1)));
        assert!(shim.replicas[3].log().is_committed(SeqNum(2)));
        // And ordering continues at the right sequence number.
        shim.submit_to_primary(batch(5));
        assert!(shim.committed_by(NodeId(3)).contains(&SeqNum(3)));
    }

    #[test]
    fn forged_state_request_and_bogus_response_are_ignored() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        // A state request whose signature does not verify is dropped.
        let req = StateRequest {
            sender: NodeId(3),
            above: SeqNum(0),
            signature: sbft_types::Signature::ZERO,
        };
        assert!(shim.replicas[1]
            .handle_message(NodeId(3), ConsensusMessage::StateRequest(req))
            .is_empty());
        // A response whose entry certificate does not verify is dropped.
        let bogus = StateResponse {
            sender: NodeId(2),
            stable_seq: SeqNum(0),
            entries: vec![RecoveredEntry {
                seq: SeqNum(7),
                view: ViewNumber(0),
                batch: batch(7),
                plan: ShardPlan::Unplanned,
                certificate: Arc::new(CommitCertificate::new(
                    ViewNumber(0),
                    SeqNum(7),
                    batch_digest(&batch(7)),
                    vec![(NodeId(0), sbft_types::Signature::ZERO)],
                )),
            }],
        };
        assert!(shim.replicas[1]
            .handle_message(NodeId(2), ConsensusMessage::StateResponse(bogus))
            .is_empty());
        assert!(!shim.replicas[1].log().is_committed(SeqNum(7)));
    }

    #[test]
    fn state_response_with_mismatched_batch_is_rejected() {
        // A byzantine responder ships a *valid* certificate but pairs it
        // with a different batch; the digest check must catch it.
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        let cert = Arc::clone(&shim.certificates[0]);
        let evil = StateResponse {
            sender: NodeId(2),
            stable_seq: SeqNum(0),
            entries: vec![RecoveredEntry {
                seq: cert.seq,
                view: cert.view,
                batch: batch(99),
                plan: ShardPlan::Unplanned,
                certificate: cert,
            }],
        };
        // Reset node 3 so the entry is genuinely missing there.
        let params = FaultParams::for_shim_size(4);
        shim.replicas[3] = PbftReplica::new(
            NodeId(3),
            params,
            shim.provider.handle(ComponentId::Node(NodeId(3))),
            SimDuration::from_millis(100),
            4,
        );
        let actions =
            shim.replicas[3].handle_message(NodeId(2), ConsensusMessage::StateResponse(evil));
        assert!(actions.is_empty());
        assert!(!shim.replicas[3].log().is_committed(SeqNum(1)));
    }

    /// A freshly constructed replica standing in for node `i` after a
    /// crash that lost its entire durable state.
    fn fresh_replica(shim: &TestShim, i: u32) -> PbftReplica {
        PbftReplica::new(
            NodeId(i),
            FaultParams::for_shim_size(4),
            shim.provider.handle(ComponentId::Node(NodeId(i))),
            SimDuration::from_millis(100),
            4,
        )
    }

    /// A correctly signed `STATEREQUEST` from `sender` (tests play the
    /// recovering node's part by hand to control message delivery).
    fn signed_request(shim: &TestShim, sender: NodeId, above: SeqNum) -> StateRequest {
        let digest = state_request_digest(sender, above);
        StateRequest {
            sender,
            above,
            signature: shim
                .provider
                .handle(ComponentId::Node(sender))
                .sign(&digest),
        }
    }

    /// Extracts the `STATERESPONSE` out of a peer's reply actions.
    fn response_of(actions: &[ConsensusAction]) -> StateResponse {
        actions
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Send(_, ConsensusMessage::StateResponse(r)) => Some(r.clone()),
                _ => None,
            })
            .expect("peer must answer with a STATERESPONSE")
    }

    #[test]
    fn state_request_is_retransmitted_with_rotation_and_backoff() {
        let shim = TestShim::new(4);
        let mut replica = fresh_replica(&shim, 3);
        // Recovery arms the retransmission timer alongside the broadcast.
        let actions = replica.install_recovered(Vec::new(), SeqNum(0), ViewNumber(0));
        assert!(actions.iter().any(|a| matches!(
            a,
            ConsensusAction::StartTimer {
                timer: ConsensusTimer::StateTransfer,
                ..
            }
        )));
        // Nobody answers (total loss). Each expiry re-sends to the next
        // peer in rotation with an exponentially growing, capped backoff.
        let mut targets = Vec::new();
        let mut backoffs = Vec::new();
        for _ in 0..STATE_RETRY_BUDGET {
            let acts = replica.handle_timer(ConsensusTimer::StateTransfer);
            for a in &acts {
                match a {
                    ConsensusAction::Send(to, ConsensusMessage::StateRequest(_)) => {
                        targets.push(*to);
                    }
                    ConsensusAction::StartTimer {
                        timer: ConsensusTimer::StateTransfer,
                        duration,
                    } => backoffs.push(*duration),
                    _ => {}
                }
            }
        }
        // Rotation covers every peer, never the replica itself.
        assert_eq!(
            targets[..4],
            [NodeId(0), NodeId(1), NodeId(2), NodeId(0)],
            "retries must rotate through the peers"
        );
        // Doubling from node_timeout / 2, capped at 4 × node_timeout.
        assert_eq!(backoffs[0], SimDuration::from_millis(100));
        assert_eq!(backoffs[1], SimDuration::from_millis(200));
        assert_eq!(backoffs[2], SimDuration::from_millis(400));
        assert_eq!(backoffs[3], SimDuration::from_millis(400), "capped");
        // The budget bounds the schedule: the next expiry is a no-op.
        assert!(replica
            .handle_timer(ConsensusTimer::StateTransfer)
            .is_empty());
        assert_eq!(
            replica.recovery_stats().state_request_retries,
            u64::from(STATE_RETRY_BUDGET)
        );
    }

    #[test]
    fn duplicate_and_overlapping_state_responses_adopt_once() {
        let mut shim = TestShim::new(4);
        for i in 0..2 {
            shim.submit_to_primary(batch(i));
        }
        // Two peers answer the same request — overlapping suffixes, as a
        // lossy network's retransmissions routinely produce.
        let req = signed_request(&shim, NodeId(3), SeqNum(0));
        let from_1 = response_of(
            &shim.replicas[1].handle_message(NodeId(3), ConsensusMessage::StateRequest(req)),
        );
        let from_2 = response_of(
            &shim.replicas[2].handle_message(NodeId(3), ConsensusMessage::StateRequest(req)),
        );
        shim.replicas[3] = fresh_replica(&shim, 3);
        shim.replicas[3].install_recovered(Vec::new(), SeqNum(0), ViewNumber(0));
        let first = shim.replicas[3]
            .handle_message(NodeId(1), ConsensusMessage::StateResponse(from_1.clone()));
        assert_eq!(committed_seqs(&first), vec![SeqNum(1), SeqNum(2)]);
        // The overlapping response from the second peer — and a verbatim
        // duplicate of the first — seat nothing again.
        let second =
            shim.replicas[3].handle_message(NodeId(2), ConsensusMessage::StateResponse(from_2));
        assert!(committed_seqs(&second).is_empty(), "no double adoption");
        let dup =
            shim.replicas[3].handle_message(NodeId(1), ConsensusMessage::StateResponse(from_1));
        assert!(dup.is_empty(), "duplicate response is fully idempotent");
        assert_eq!(shim.replicas[3].recovery_stats().bad_state_responses, 0);
    }

    #[test]
    fn garbage_state_response_entries_are_counted_per_sender() {
        let mut shim = TestShim::new(4);
        shim.submit_to_primary(batch(0));
        let cert = Arc::clone(&shim.certificates[0]);
        shim.replicas[3] = fresh_replica(&shim, 3);
        shim.replicas[3].install_recovered(Vec::new(), SeqNum(0), ViewNumber(0));
        // A valid certificate paired with the wrong batch (digest
        // mismatch) and a stale view claim contradicting its certificate:
        // both rejected, both charged to the lying sender.
        let evil = StateResponse {
            sender: NodeId(2),
            stable_seq: SeqNum(0),
            entries: vec![
                RecoveredEntry {
                    seq: cert.seq,
                    view: cert.view,
                    batch: batch(99),
                    plan: ShardPlan::Unplanned,
                    certificate: Arc::clone(&cert),
                },
                RecoveredEntry {
                    seq: cert.seq,
                    view: cert.view.next(),
                    batch: batch(0),
                    plan: ShardPlan::Unplanned,
                    certificate: Arc::clone(&cert),
                },
            ],
        };
        let actions =
            shim.replicas[3].handle_message(NodeId(2), ConsensusMessage::StateResponse(evil));
        assert!(actions.is_empty(), "garbage must seat nothing");
        assert!(!shim.replicas[3].log().is_committed(SeqNum(1)));
        assert_eq!(shim.replicas[3].bad_state_responses_from(NodeId(2)), 2);
        assert_eq!(shim.replicas[3].bad_state_responses_from(NodeId(1)), 0);
        assert_eq!(shim.replicas[3].recovery_stats().bad_state_responses, 2);
        // The honest suffix still lands afterwards: the liar burned no
        // state, only its own tally.
        let req = signed_request(&shim, NodeId(3), SeqNum(0));
        let honest = response_of(
            &shim.replicas[1].handle_message(NodeId(3), ConsensusMessage::StateRequest(req)),
        );
        let adopted =
            shim.replicas[3].handle_message(NodeId(1), ConsensusMessage::StateResponse(honest));
        assert_eq!(committed_seqs(&adopted), vec![SeqNum(1)]);
    }

    #[test]
    fn recovering_replica_below_peer_retention_catches_up() {
        let mut shim = TestShim::new(4);
        // Node 3 is down while five batches commit; the checkpoint at
        // seq 4 (interval = 4) stabilises on the live nodes and they
        // garbage-collect below it — node 3's floor (0) is now beneath
        // everyone's retention boundary.
        shim.down.insert(NodeId(3));
        for i in 0..5 {
            shim.submit_to_primary(batch(i));
        }
        assert_eq!(shim.replicas[0].log().stable_seq(), SeqNum(4));
        shim.down.clear();
        shim.replicas[3] = fresh_replica(&shim, 3);
        let actions = shim.replicas[3].install_recovered(Vec::new(), SeqNum(0), ViewNumber(0));
        shim.run_actions(NodeId(3), actions);
        // The recovering node adopted the peers' snapshot floor and the
        // certified suffix above it — exactly once despite three
        // overlapping responses.
        assert!(
            shim.caught_up
                .iter()
                .any(|(n, s)| *n == NodeId(3) && *s == SeqNum(4)),
            "catch-up must be reported: {:?}",
            shim.caught_up
        );
        assert_eq!(shim.replicas[3].recovery_stats().catch_ups, 1);
        assert_eq!(shim.replicas[3].log().stable_seq(), SeqNum(4));
        assert_eq!(shim.committed_by(NodeId(3)), vec![SeqNum(5)]);
        // And it is live again at the right sequence number.
        shim.submit_to_primary(batch(9));
        assert!(shim.committed_by(NodeId(3)).contains(&SeqNum(6)));
    }

    #[test]
    fn f_plus_one_view_changes_pull_in_honest_nodes() {
        let mut shim = TestShim::new(4);
        // Only nodes 1 and 2 (f_r + 1 = 2 of them) time out, yet the view
        // change completes because the remaining honest nodes join once
        // they see f_r + 1 requests.
        let a1 = shim.replicas[1].request_view_change();
        shim.run_actions(NodeId(1), a1);
        // A single vote must not move anyone yet.
        assert_eq!(shim.replicas[3].view(), ViewNumber(0));
        let a2 = shim.replicas[2].request_view_change();
        shim.run_actions(NodeId(2), a2);
        assert_eq!(
            shim.replicas[3].view(),
            ViewNumber(1),
            "node 3 joined and installed"
        );
        assert_eq!(
            shim.replicas[0].view(),
            ViewNumber(1),
            "old primary moves along too"
        );
    }

    // ----- digest proposals -------------------------------------------------

    /// A multi-transaction batch whose bodies can be fed to caches.
    fn wide_batch(counter_base: u64, n: usize) -> Batch {
        Batch::new(
            (0..n as u64)
                .map(|i| {
                    Transaction::new(
                        TxnId::new(ClientId(1), counter_base + i),
                        vec![Operation::Read(Key(counter_base + i))],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn digest_mode_with_warm_caches_commits_without_fetching() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 5);
        shim.offer_to_all(&b);
        shim.submit_to_primary(b.clone());
        for i in 0..4u32 {
            assert_eq!(shim.committed_by(NodeId(i)), vec![SeqNum(1)], "node {i}");
        }
        for i in 1..4usize {
            let (hits, misses, fetches, _, fallbacks) = shim.replicas[i].digest_stats();
            assert_eq!(hits, 5, "node {i} reconstructs fully from cache");
            assert_eq!(misses, 0);
            assert_eq!(fetches, 0, "warm caches must not fetch");
            assert_eq!(fallbacks, 0);
        }
    }

    #[test]
    fn digest_mode_with_cold_caches_fetches_and_commits() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 5);
        // No bodies offered anywhere: every replica misses everything and
        // fetches from the primary inside the same message cascade.
        shim.submit_to_primary(b.clone());
        for i in 0..4u32 {
            assert_eq!(shim.committed_by(NodeId(i)), vec![SeqNum(1)], "node {i}");
        }
        for i in 1..4usize {
            let (hits, misses, fetches, _, fallbacks) = shim.replicas[i].digest_stats();
            assert_eq!(hits, 0);
            assert_eq!(misses, 5, "node {i} missed every body");
            assert_eq!(fetches, 1, "one fetch covers all misses");
            assert_eq!(fallbacks, 0);
        }
        let (_, _, _, fills, _) = shim.replicas[0].digest_stats();
        assert_eq!(fills, 3, "the primary served one fill per replica");
        // Fetched bodies were promoted into the caches after verification.
        assert_eq!(shim.replicas[1].body_cache_len(), 5);
    }

    #[test]
    fn offer_body_completes_a_pending_reconstruction() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 3);
        // Warm all but one body on node 1 so the proposal leaves a gap.
        for txn in &b.txns()[..2] {
            let _ = shim.replicas[1].offer_body(txn.clone());
        }
        let actions = shim.replicas[0].submit_batch(b.clone(), ShardPlan::Unplanned);
        let proposal = actions
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Broadcast(m @ ConsensusMessage::DigestPrePrepare(_)) => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("digest proposal broadcast");
        let on_dpp = shim.replicas[1].handle_message(NodeId(0), proposal);
        assert!(
            on_dpp
                .iter()
                .any(|a| matches!(a, ConsensusAction::Send(_, ConsensusMessage::BatchFetch(f)) if f.missing.len() == 1)),
            "the gap must trigger a one-body fetch"
        );
        assert_eq!(shim.replicas[1].pending_reconstructions(), vec![SeqNum(1)]);
        // The client broadcast lands before any fill: reconstruction
        // completes and the replica votes.
        let done = shim.replicas[1].offer_body(b.txns()[2].clone());
        assert!(
            done.iter()
                .any(|a| matches!(a, ConsensusAction::Broadcast(ConsensusMessage::Prepare(_)))),
            "completing the reconstruction must cast the prepare vote"
        );
        assert!(shim.replicas[1].pending_reconstructions().is_empty());
    }

    #[test]
    fn lying_primary_digest_falls_back_and_is_counted() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 3);
        shim.offer_to_all(&b);
        // The primary advertises a digest that does not match the bodies.
        let wrong = Digest::from_bytes([9; 32]);
        let ids = b.txn_ids();
        let header = header_digest("digest-preprepare", ViewNumber(0), SeqNum(1), &wrong);
        let mac = shim
            .provider
            .handle(ComponentId::Node(NodeId(0)))
            .broadcast_mac(&header);
        let dpp = ConsensusMessage::DigestPrePrepare(DigestPrePrepare {
            view: ViewNumber(0),
            seq: SeqNum(1),
            digest: wrong,
            bloom: TxnBloom::from_ids(&ids),
            txn_ids: ids,
            plan: ShardPlan::Unplanned,
            mac,
        });
        let actions = shim.replicas[1].handle_message(NodeId(0), dpp);
        // No vote; instead the full-batch fallback goes out and the
        // mismatch is pinned on the primary.
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ConsensusAction::Broadcast(ConsensusMessage::Prepare(_)))),
            "a digest mismatch must never produce a vote"
        );
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ConsensusAction::Send(_, ConsensusMessage::BatchFetch(f)) if f.full
            )),
            "mismatch must fall back to a full-batch fetch"
        );
        assert_eq!(shim.replicas[1].bad_state_responses_from(NodeId(0)), 1);
        let (_, _, _, _, fallbacks) = shim.replicas[1].digest_stats();
        assert_eq!(fallbacks, 1);
        // The fetch retry budget eventually escalates to a view change —
        // the lying primary cannot stall forever.
        let mut escalated = Vec::new();
        for _ in 0..=FETCH_RETRY_BUDGET + 1 {
            escalated.extend(shim.replicas[1].handle_timer(ConsensusTimer::Request(SeqNum(1))));
        }
        assert!(
            escalated.iter().any(|a| matches!(
                a,
                ConsensusAction::Broadcast(ConsensusMessage::ViewChange(_))
            )),
            "the exhausted fetch budget must escalate to a view change"
        );
        assert!(shim.replicas[1].in_view_change());
        assert!(shim.replicas[1].pending_reconstructions().is_empty());
    }

    #[test]
    fn poisoned_fill_is_quarantined_and_the_filler_blamed() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 3);
        // Node 1 holds all bodies but the last.
        for txn in &b.txns()[..2] {
            let _ = shim.replicas[1].offer_body(txn.clone());
        }
        let actions = shim.replicas[0].submit_batch(b.clone(), ShardPlan::Unplanned);
        let proposal = actions
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Broadcast(m @ ConsensusMessage::DigestPrePrepare(_)) => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("digest proposal broadcast");
        let _ = shim.replicas[1].handle_message(NodeId(0), proposal);
        // Node 2 answers the fetch with a wrong body under the right id.
        let missing_id = b.txns()[2].id;
        let poisoned = ConsensusMessage::BatchFill(BatchFill {
            sender: NodeId(2),
            seq: SeqNum(1),
            digest: batch_digest(&b),
            bodies: vec![Transaction::new(
                missing_id,
                vec![Operation::Read(Key(999))],
            )],
            full: false,
        });
        let after = shim.replicas[1].handle_message(NodeId(2), poisoned);
        assert!(
            !after
                .iter()
                .any(|a| matches!(a, ConsensusAction::Broadcast(ConsensusMessage::Prepare(_)))),
            "a poisoned fill must never produce a vote"
        );
        assert_eq!(
            shim.replicas[1].bad_state_responses_from(NodeId(2)),
            1,
            "the mismatch counts against the filler"
        );
        assert_eq!(
            shim.replicas[1].body_cache_len(),
            2,
            "the poisoned body must never enter the shared cache"
        );
        // The honest full fallback from the primary still completes.
        let fallback_fetch = after
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Send(_, m @ ConsensusMessage::BatchFetch(f)) if f.full => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("full fallback fetch");
        let fill_actions = shim.replicas[0].handle_message(NodeId(1), fallback_fetch);
        let fill = fill_actions
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Send(to, m @ ConsensusMessage::BatchFill(_))
                    if *to == NodeId(1) =>
                {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("primary serves the full batch");
        let done = shim.replicas[1].handle_message(NodeId(0), fill);
        assert!(
            done.iter()
                .any(|a| matches!(a, ConsensusAction::Broadcast(ConsensusMessage::Prepare(_)))),
            "the verified full batch must finally produce the vote"
        );
    }

    #[test]
    fn equivocating_digest_proposals_trigger_view_change() {
        let mut shim = TestShim::new_digest(4);
        let b1 = wide_batch(0, 3);
        let b2 = wide_batch(100, 3);
        let make = |batch: &Batch, provider: &std::sync::Arc<CryptoProvider>| {
            let digest = batch_digest(batch);
            let ids = batch.txn_ids();
            let header = header_digest("digest-preprepare", ViewNumber(0), SeqNum(1), &digest);
            ConsensusMessage::DigestPrePrepare(DigestPrePrepare {
                view: ViewNumber(0),
                seq: SeqNum(1),
                digest,
                bloom: TxnBloom::from_ids(&ids),
                txn_ids: ids,
                plan: ShardPlan::Unplanned,
                mac: provider
                    .handle(ComponentId::Node(NodeId(0)))
                    .broadcast_mac(&header),
            })
        };
        let first = make(&b1, &shim.provider);
        let second = make(&b2, &shim.provider);
        let _ = shim.replicas[1].handle_message(NodeId(0), first);
        let actions = shim.replicas[1].handle_message(NodeId(0), second);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ConsensusAction::Broadcast(ConsensusMessage::ViewChange(_))
            )),
            "two digests at one sequence number expose the primary"
        );
        assert!(shim.replicas[1].in_view_change());
    }

    #[test]
    fn gc_bodies_keeps_only_protected_ids() {
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 4);
        for txn in b.txns() {
            let _ = shim.replicas[1].offer_body(txn.clone());
        }
        assert_eq!(shim.replicas[1].body_cache_len(), 4);
        let protected: HashSet<TxnId> = b.txns()[..2].iter().map(|t| t.id).collect();
        shim.replicas[1].gc_bodies(&protected);
        assert_eq!(shim.replicas[1].body_cache_len(), 2);
        shim.replicas[1].gc_bodies(&HashSet::new());
        assert_eq!(shim.replicas[1].body_cache_len(), 0);
    }

    #[test]
    fn digest_prepared_proposals_survive_view_change_as_full_reissues() {
        // A proposal that reconstructed and prepared (but did not commit)
        // must survive the view change: the new primary holds the
        // reconstructed batch and re-issues it as a *full* pre-prepare.
        let mut shim = TestShim::new_digest(4);
        let b = wide_batch(0, 3);
        shim.offer_to_all(&b);
        // Nodes 0..3 exchange the proposal and prepares, but commits are
        // swallowed: deliver the proposal and prepares manually.
        let actions = shim.replicas[0].submit_batch(b.clone(), ShardPlan::Unplanned);
        let proposal = actions
            .iter()
            .find_map(|a| match a {
                ConsensusAction::Broadcast(m @ ConsensusMessage::DigestPrePrepare(_)) => {
                    Some(m.clone())
                }
                _ => None,
            })
            .expect("digest proposal broadcast");
        let mut prepares: Vec<(NodeId, ConsensusMessage)> = actions
            .iter()
            .filter_map(|a| match a {
                ConsensusAction::Broadcast(m @ ConsensusMessage::Prepare(_)) => {
                    Some((NodeId(0), m.clone()))
                }
                _ => None,
            })
            .collect();
        for i in 1..4u32 {
            let acts = shim.replicas[i as usize].handle_message(NodeId(0), proposal.clone());
            for a in acts {
                if let ConsensusAction::Broadcast(m @ ConsensusMessage::Prepare(_)) = a {
                    prepares.push((NodeId(i), m));
                }
            }
        }
        for (from, p) in prepares {
            for i in 0..4u32 {
                if NodeId(i) != from {
                    let _ = shim.replicas[i as usize].handle_message(from, p.clone());
                }
            }
        }
        assert!(shim.replicas[1].log().entry(SeqNum(1)).unwrap().prepared);
        // View change: node 1 becomes primary of view 1 and must re-issue
        // the prepared request with its full body.
        let mut vc_msgs = Vec::new();
        for i in [1u32, 2, 3] {
            let acts = shim.replicas[i as usize].request_view_change();
            for a in acts {
                if let ConsensusAction::Broadcast(m @ ConsensusMessage::ViewChange(_)) = a {
                    vc_msgs.push((NodeId(i), m));
                }
            }
        }
        let mut reissued_full = false;
        for (from, vc) in vc_msgs {
            let acts = shim.replicas[1].handle_message(from, vc.clone());
            for a in &acts {
                if let ConsensusAction::Broadcast(ConsensusMessage::NewView(nv)) = a {
                    reissued_full =
                        !nv.reissued.is_empty() && nv.reissued.iter().all(|pp| pp.batch == b);
                }
            }
        }
        assert!(
            reissued_full,
            "the new primary must re-issue the reconstructed batch in full"
        );
    }
}
