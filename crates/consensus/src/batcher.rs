//! The batching front-end.
//!
//! "We also require clients and edge nodes to employ batching and run
//! consensuses on batches of 100 client transactions" (Section IX, Setup).
//! The batcher accumulates incoming client transactions at the primary and
//! releases a batch either when it reaches the configured size or when the
//! batch timeout expires (so a lightly loaded system does not wait
//! forever). Figure 6(iii)–(iv) sweeps the batch size from 10 to 8000.

use sbft_types::{Batch, SimDuration, SimTime, Transaction};

/// Accumulates client transactions into consensus batches.
#[derive(Debug)]
pub struct Batcher {
    batch_size: usize,
    max_wait: SimDuration,
    pending: Vec<Transaction>,
    oldest_pending: Option<SimTime>,
}

impl Batcher {
    /// Creates a batcher releasing batches of `batch_size` transactions, or
    /// earlier once the oldest pending transaction has waited `max_wait`.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: usize, max_wait: SimDuration) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            batch_size,
            max_wait,
            pending: Vec::with_capacity(batch_size),
            oldest_pending: None,
        }
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of transactions waiting for a batch.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Adds a transaction; returns a full batch if the size threshold is
    /// reached.
    pub fn push(&mut self, txn: Transaction, now: SimTime) -> Option<Batch> {
        if self.pending.is_empty() {
            self.oldest_pending = Some(now);
        }
        self.pending.push(txn);
        if self.pending.len() >= self.batch_size {
            return self.flush();
        }
        None
    }

    /// Releases whatever is pending if the oldest transaction has waited at
    /// least `max_wait` (called on a periodic tick).
    pub fn poll(&mut self, now: SimTime) -> Option<Batch> {
        match self.oldest_pending {
            Some(oldest) if now.since(oldest) >= self.max_wait && !self.pending.is_empty() => {
                self.flush()
            }
            _ => None,
        }
    }

    /// Releases all pending transactions as a batch immediately.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest_pending = None;
        let txns = std::mem::take(&mut self.pending);
        Some(Batch::new(txns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, Operation, TxnId};

    fn txn(counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        )
    }

    #[test]
    fn releases_full_batches() {
        let mut b = Batcher::new(3, SimDuration::from_millis(10));
        assert!(b.push(txn(0), SimTime::ZERO).is_none());
        assert!(b.push(txn(1), SimTime::ZERO).is_none());
        let batch = b.push(txn(2), SimTime::ZERO).expect("full batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn poll_releases_stale_partial_batches() {
        let mut b = Batcher::new(100, SimDuration::from_millis(10));
        b.push(txn(0), SimTime::from_millis(0));
        assert!(b.poll(SimTime::from_millis(5)).is_none(), "not stale yet");
        let batch = b.poll(SimTime::from_millis(10)).expect("timeout flush");
        assert_eq!(batch.len(), 1);
        assert!(
            b.poll(SimTime::from_millis(20)).is_none(),
            "nothing pending"
        );
    }

    #[test]
    fn flush_empties_pending() {
        let mut b = Batcher::new(10, SimDuration::from_millis(10));
        assert!(b.flush().is_none());
        b.push(txn(0), SimTime::ZERO);
        b.push(txn(1), SimTime::ZERO);
        assert_eq!(b.flush().unwrap().len(), 2);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn wait_clock_resets_after_release() {
        let mut b = Batcher::new(2, SimDuration::from_millis(10));
        b.push(txn(0), SimTime::from_millis(0));
        let _ = b.push(txn(1), SimTime::from_millis(1)).unwrap();
        // New transaction arrives much later; its own clock starts now.
        b.push(txn(2), SimTime::from_millis(100));
        assert!(b.poll(SimTime::from_millis(105)).is_none());
        assert!(b.poll(SimTime::from_millis(110)).is_some());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::new(0, SimDuration::ZERO);
    }
}
