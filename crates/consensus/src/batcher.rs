//! The batching front-end and the amortised batch-authentication path.
//!
//! "We also require clients and edge nodes to employ batching and run
//! consensuses on batches of 100 client transactions" (Section IX, Setup).
//! The batcher accumulates incoming client transactions at the primary and
//! releases a batch either when it reaches the configured size or when the
//! batch timeout expires (so a lightly loaded system does not wait
//! forever). Figure 6(iii)–(iv) sweeps the batch size from 10 to 8000.
//!
//! # Amortised batch crypto
//!
//! The batcher is where the primary's two per-batch crypto costs get
//! amortised across transaction arrivals instead of being paid in one
//! lump on the submit hot path:
//!
//! * **Client authentication.** Each pushed transaction carries its
//!   (memoized) signing digest and the client's signature; the signature
//!   folds into a running [`AggregateSignature`]. A released
//!   [`SignedBatch`] is verified with **one** aggregate check
//!   ([`SignedBatch::verify_and_prune`]); only when that check fails does
//!   the bisecting fallback pinpoint — and prune — the offending
//!   transactions.
//! * **The wire digest `Δ = H(m)`.** A running
//!   [`BatchDigestAccumulator`] absorbs each transaction on push, so the
//!   released batch's digest memo is already filled and
//!   [`crate::messages::batch_digest`] is a cache hit when the primary
//!   proposes.
//!
//! # Per-shard ordering lanes
//!
//! With the ordering-time shard planner active
//! ([`Batcher::with_shard_lanes`]) the batcher keeps one independent lane
//! per execution shard plus one *cross* lane: the shim classifies every
//! transaction's declared read-write set against the shard map and pushes
//! it into its home lane ([`Batcher::push_planned`]). Each lane fills,
//! times out and releases independently, so a released batch is either
//! entirely single-home — tagged [`ShardPlan::SingleHome`], its apply
//! work lands on exactly one shard with no cross-shard coordination — or
//! explicitly [`ShardPlan::CrossHome`], detected at batching time and
//! destined for the lock-ordered committer path instead of being
//! discovered late in the verifier's apply stage. The plan tag rides on
//! the released [`SignedBatch`] and from there through `PREPREPARE`,
//! `EXECUTE` and `VERIFY` (trust-but-verify; see `sbft_types::plan`).

use crate::messages::BatchDigestAccumulator;
use sbft_crypto::{AggregateSignature, CryptoProvider};
use sbft_telemetry::{Counter, Registry};
use sbft_types::{
    Batch, ComponentId, Digest, ShardId, ShardPlan, Signature, SimDuration, SimTime, Transaction,
    TxnId,
};

/// A released batch plus the client-authentication material needed to
/// verify it in one aggregate check.
#[derive(Clone, Debug)]
pub struct SignedBatch {
    batch: Batch,
    /// The ordering-time shard plan of the batch (the lane it was
    /// assembled in, or [`ShardPlan::Unplanned`] without lanes).
    plan: ShardPlan,
    /// Per-transaction signing digests, in batch order.
    digests: Vec<Digest>,
    /// Per-transaction client signatures, in batch order (needed only by
    /// the bisecting fallback).
    signatures: Vec<Signature>,
    /// The fold of `signatures`.
    aggregate: AggregateSignature,
}

impl SignedBatch {
    /// A signed batch with a single transaction (unbatched operation).
    #[must_use]
    pub fn single(txn: Transaction, digest: Digest, signature: Signature) -> Self {
        Self::single_planned(txn, digest, signature, ShardPlan::Unplanned)
    }

    /// Like [`Self::single`], with an ordering-time plan already
    /// computed for the transaction (unbatched operation under the
    /// shard planner).
    #[must_use]
    pub fn single_planned(
        txn: Transaction,
        digest: Digest,
        signature: Signature,
        plan: ShardPlan,
    ) -> Self {
        SignedBatch {
            batch: Batch::single(txn),
            plan,
            digests: vec![digest],
            signatures: vec![signature],
            aggregate: AggregateSignature::from_signatures([&signature]),
        }
    }

    /// The ordering-time shard plan of this batch. Pruning offenders
    /// keeps the tag valid: a subset of a single-home batch is still
    /// single-home, and a cross-home tag only costs the conservative
    /// path.
    #[must_use]
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// The batch awaiting verification.
    #[must_use]
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Number of transactions in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether the batch is empty (never true for released batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The aggregate of the batch's client signatures.
    #[must_use]
    pub fn aggregate(&self) -> &AggregateSignature {
        &self.aggregate
    }

    /// Authenticates the whole batch with one aggregate signature check.
    ///
    /// On the fast path (every client signature valid — the always case
    /// with honest clients) this costs a single fold-and-compare over
    /// cached key schedules and returns the batch **unchanged, by move**:
    /// the `Arc` storage built by the batcher flows on to consensus
    /// untouched. When the aggregate check fails, the bisecting fallback
    /// locates the offending transactions; they are pruned (and reported,
    /// with the forged signature each carried, as the second tuple
    /// element) and the surviving transactions are re-batched. Returns
    /// `None` for the batch if nothing survives.
    #[must_use]
    pub fn verify_and_prune(
        self,
        provider: &CryptoProvider,
    ) -> (Option<Batch>, Vec<(TxnId, Signature)>) {
        let claims: Vec<(ComponentId, Digest)> = self
            .batch
            .txns()
            .iter()
            .zip(&self.digests)
            .map(|(txn, digest)| (ComponentId::Client(txn.id.client), *digest))
            .collect();
        if provider.verify_aggregate(&claims, &self.aggregate) {
            return (Some(self.batch), Vec::new());
        }
        // Slow path: some signature is invalid. Bisect to find which.
        let full: Vec<(ComponentId, Digest, Signature)> = claims
            .iter()
            .zip(&self.signatures)
            .map(|((signer, digest), sig)| (*signer, *digest, *sig))
            .collect();
        let offenders = provider.locate_invalid_signatures(&full);
        debug_assert!(
            !offenders.is_empty(),
            "a failed aggregate always bisects to at least one offender"
        );
        let rejected: Vec<(TxnId, Signature)> = offenders
            .iter()
            .map(|&i| (self.batch.txns()[i].id, self.signatures[i]))
            .collect();
        let mut next_offender = offenders.into_iter().peekable();
        let retained: Vec<Transaction> = self
            .batch
            .txns()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                if next_offender.peek() == Some(i) {
                    next_offender.next();
                    false
                } else {
                    true
                }
            })
            .map(|(_, txn)| txn.clone())
            .collect();
        let batch = (!retained.is_empty()).then(|| Batch::new(retained));
        (batch, rejected)
    }
}

/// One independent batching lane: its own pending list, authentication
/// material, running wire digest and staleness clock.
#[derive(Debug)]
struct Lane {
    pending: Vec<Transaction>,
    digests: Vec<Digest>,
    signatures: Vec<Signature>,
    aggregate: AggregateSignature,
    digest_acc: BatchDigestAccumulator,
    oldest_pending: Option<SimTime>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            pending: Vec::with_capacity(capacity),
            digests: Vec::with_capacity(capacity),
            signatures: Vec::with_capacity(capacity),
            aggregate: AggregateSignature::identity(),
            digest_acc: BatchDigestAccumulator::new(),
            oldest_pending: None,
        }
    }

    fn push(&mut self, txn: Transaction, digest: Digest, signature: Signature, now: SimTime) {
        if self.pending.is_empty() {
            self.oldest_pending = Some(now);
        }
        self.digest_acc.absorb(&txn);
        self.aggregate.fold(&signature);
        self.pending.push(txn);
        self.digests.push(digest);
        self.signatures.push(signature);
    }

    fn stale(&self, now: SimTime, max_wait: SimDuration) -> bool {
        match self.oldest_pending {
            Some(oldest) => !self.pending.is_empty() && now.since(oldest) >= max_wait,
            None => false,
        }
    }

    /// Releases the lane's content as one batch tagged `plan`. The
    /// released batch carries its wire digest pre-memoized.
    fn take(&mut self, plan: ShardPlan) -> Option<SignedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest_pending = None;
        let txns = std::mem::take(&mut self.pending);
        let digests = std::mem::take(&mut self.digests);
        let signatures = std::mem::take(&mut self.signatures);
        let aggregate = std::mem::replace(&mut self.aggregate, AggregateSignature::identity());
        let acc = std::mem::take(&mut self.digest_acc);
        let batch = Batch::new(txns);
        let wire_digest = acc.finish();
        let filled = batch.digest_memo(|| wire_digest);
        debug_assert_eq!(filled, wire_digest, "digest memo must take our value");
        Some(SignedBatch {
            batch,
            plan,
            digests,
            signatures,
            aggregate,
        })
    }
}

/// Accumulates signed client transactions into consensus batches —
/// either one global lane (classic batching) or one lane per execution
/// shard plus a cross lane (the ordering-time shard planner).
#[derive(Debug)]
pub struct Batcher {
    batch_size: usize,
    max_wait: SimDuration,
    /// One lane without the planner; `home_lanes + 1` lanes with it
    /// (index `home_lanes` is the cross lane).
    lanes: Vec<Lane>,
    /// Number of per-shard home lanes (0 = unlaned).
    home_lanes: usize,
    /// Batches released because a lane reached the size threshold.
    released_full: Counter,
    /// Batches released because the oldest pending transaction waited
    /// out `max_wait` (the periodic poll).
    released_timeout: Counter,
    /// Batches released before their own timeout because another lane's
    /// staleness triggered the global drain.
    global_drains: Counter,
}

impl Batcher {
    /// Creates a batcher releasing batches of `batch_size` transactions, or
    /// earlier once the oldest pending transaction has waited `max_wait`.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: usize, max_wait: SimDuration) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            batch_size,
            max_wait,
            lanes: vec![Lane::new(batch_size)],
            home_lanes: 0,
            released_full: Counter::new(),
            released_timeout: Counter::new(),
            global_drains: Counter::new(),
        }
    }

    /// Creates a batcher with one ordering lane per execution shard plus
    /// a cross lane: single-home transactions assemble into batches that
    /// release tagged [`ShardPlan::SingleHome`]; transactions spanning
    /// shards (or unclassifiable ones) assemble in the cross lane and
    /// release tagged [`ShardPlan::CrossHome`].
    ///
    /// # Panics
    /// Panics if `batch_size` or `num_shards` is zero.
    #[must_use]
    pub fn with_shard_lanes(batch_size: usize, max_wait: SimDuration, num_shards: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(num_shards > 0, "shard lanes need at least one shard");
        Batcher {
            batch_size,
            max_wait,
            lanes: (0..=num_shards).map(|_| Lane::new(batch_size)).collect(),
            home_lanes: num_shards,
            released_full: Counter::new(),
            released_timeout: Counter::new(),
            global_drains: Counter::new(),
        }
    }

    /// Re-homes the release counters into `registry` under
    /// `<prefix>.batcher.*` (the shim node passes its own prefix).
    pub fn register_metrics(&mut self, registry: &Registry, prefix: &str) {
        self.released_full = registry.counter(&format!("{prefix}.batcher.released_full"));
        self.released_timeout = registry.counter(&format!("{prefix}.batcher.released_timeout"));
        self.global_drains = registry.counter(&format!("{prefix}.batcher.global_drains"));
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of lanes (1 without the planner, shards + 1 with it).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of transactions waiting across all lanes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.pending.len()).sum()
    }

    /// Identifiers of every transaction waiting across all lanes (the
    /// shim's never-validated expiry spares these — a pending
    /// transaction must not lose its duplicate suppression).
    #[must_use]
    pub fn pending_txn_ids(&self) -> Vec<TxnId> {
        self.lanes
            .iter()
            .flat_map(|l| l.pending.iter().map(|t| t.id))
            .collect()
    }

    /// The plan a batch released from lane `idx` carries.
    fn lane_plan(&self, idx: usize) -> ShardPlan {
        if self.home_lanes == 0 {
            ShardPlan::Unplanned
        } else if idx < self.home_lanes {
            ShardPlan::SingleHome(ShardId(idx as u32))
        } else {
            ShardPlan::CrossHome
        }
    }

    /// The lane a transaction with ordering-time plan `plan` assembles in.
    fn lane_of(&self, plan: ShardPlan) -> usize {
        if self.home_lanes == 0 {
            return 0;
        }
        match plan {
            ShardPlan::SingleHome(s) if (s.0 as usize) < self.home_lanes => s.0 as usize,
            // Cross-home and unclassifiable transactions share the cross
            // lane (a no-key transaction is harmless there).
            _ => self.home_lanes,
        }
    }

    /// Adds a signed transaction (its memoized signing digest plus the
    /// client's signature over it); returns a full batch if the size
    /// threshold is reached. The signature folds into the running
    /// aggregate and the transaction is absorbed into the running wire
    /// digest, so releasing a batch costs O(1) hashing.
    pub fn push(
        &mut self,
        txn: Transaction,
        digest: Digest,
        signature: Signature,
        now: SimTime,
    ) -> Option<SignedBatch> {
        self.push_planned(txn, digest, signature, now, ShardPlan::Unplanned)
    }

    /// Like [`Self::push`], but steering the transaction into the lane
    /// of its ordering-time plan (the shard-aware planner's entry
    /// point). Without shard lanes the plan is ignored and everything
    /// shares the single lane.
    pub fn push_planned(
        &mut self,
        txn: Transaction,
        digest: Digest,
        signature: Signature,
        now: SimTime,
        plan: ShardPlan,
    ) -> Option<SignedBatch> {
        let idx = self.lane_of(plan);
        let release = {
            let lane = &mut self.lanes[idx];
            lane.push(txn, digest, signature, now);
            lane.pending.len() >= self.batch_size
        };
        if release {
            let plan = self.lane_plan(idx);
            self.released_full.inc();
            return self.lanes[idx].take(plan);
        }
        None
    }

    /// Releases the next lane due under the timeout rule (called on a
    /// periodic tick; call repeatedly until `None` to drain fully).
    ///
    /// A lane is *due* when its own oldest pending transaction has
    /// waited `max_wait` — and, once any lane is stale, every other
    /// non-empty lane becomes due too (the **global drain**): under
    /// light load with many shard lanes, transactions that arrived
    /// after the triggering one would otherwise each sit out their own
    /// full timeout. Piggybacked lanes release first, so the stale lane
    /// keeps the trigger alive until everything pending is out.
    pub fn poll(&mut self, now: SimTime) -> Option<SignedBatch> {
        let max_wait = self.max_wait;
        if !self.lanes.iter().any(|l| l.stale(now, max_wait)) {
            return None;
        }
        let piggyback = (0..self.lanes.len())
            .find(|&i| !self.lanes[i].pending.is_empty() && !self.lanes[i].stale(now, max_wait));
        let (idx, was_stale) = match piggyback {
            Some(i) => (i, false),
            None => (
                (0..self.lanes.len()).find(|&i| self.lanes[i].stale(now, max_wait))?,
                true,
            ),
        };
        let plan = self.lane_plan(idx);
        let released = self.lanes[idx].take(plan);
        if released.is_some() {
            if was_stale {
                self.released_timeout.inc();
            } else {
                self.global_drains.inc();
            }
        }
        released
    }

    /// Releases the next non-empty lane as a batch immediately (call
    /// repeatedly until `None` to flush everything). The released batch
    /// carries its wire digest pre-memoized.
    pub fn flush(&mut self) -> Option<SignedBatch> {
        let idx = (0..self.lanes.len()).find(|i| !self.lanes[*i].pending.is_empty())?;
        let plan = self.lane_plan(idx);
        self.lanes[idx].take(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::compute_batch_digest;
    use sbft_types::{ClientId, Key, Operation, TxnId};
    use std::sync::Arc;

    fn txn(counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        )
    }

    /// Pushes with placeholder authentication material (tests that only
    /// exercise sizing/timing).
    fn push_plain(b: &mut Batcher, t: Transaction, now: SimTime) -> Option<SignedBatch> {
        b.push(t, Digest::ZERO, Signature::ZERO, now)
    }

    #[test]
    fn release_counters_track_full_and_timeout() {
        let registry = Registry::new();
        let mut b = Batcher::new(2, SimDuration::from_millis(5));
        b.register_metrics(&registry, "shim.0");
        push_plain(&mut b, txn(0), SimTime::ZERO);
        assert!(push_plain(&mut b, txn(1), SimTime::ZERO).is_some());
        assert_eq!(registry.counter_value("shim.0.batcher.released_full"), 1);
        push_plain(&mut b, txn(2), SimTime::ZERO);
        assert!(b.poll(SimTime::from_millis(10)).is_some());
        assert_eq!(registry.counter_value("shim.0.batcher.released_timeout"), 1);
        assert_eq!(registry.counter_value("shim.0.batcher.released_full"), 1);
    }

    #[test]
    fn releases_full_batches() {
        let mut b = Batcher::new(3, SimDuration::from_millis(10));
        assert!(push_plain(&mut b, txn(0), SimTime::ZERO).is_none());
        assert!(push_plain(&mut b, txn(1), SimTime::ZERO).is_none());
        let batch = push_plain(&mut b, txn(2), SimTime::ZERO).expect("full batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn poll_releases_stale_partial_batches() {
        let mut b = Batcher::new(100, SimDuration::from_millis(10));
        push_plain(&mut b, txn(0), SimTime::from_millis(0));
        assert!(b.poll(SimTime::from_millis(5)).is_none(), "not stale yet");
        let batch = b.poll(SimTime::from_millis(10)).expect("timeout flush");
        assert_eq!(batch.len(), 1);
        assert!(
            b.poll(SimTime::from_millis(20)).is_none(),
            "nothing pending"
        );
    }

    #[test]
    fn flush_empties_pending() {
        let mut b = Batcher::new(10, SimDuration::from_millis(10));
        assert!(b.flush().is_none());
        push_plain(&mut b, txn(0), SimTime::ZERO);
        push_plain(&mut b, txn(1), SimTime::ZERO);
        assert_eq!(b.flush().unwrap().len(), 2);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batch_size(), 10);
    }

    #[test]
    fn wait_clock_resets_after_release() {
        let mut b = Batcher::new(2, SimDuration::from_millis(10));
        push_plain(&mut b, txn(0), SimTime::from_millis(0));
        let _ = push_plain(&mut b, txn(1), SimTime::from_millis(1)).unwrap();
        // New transaction arrives much later; its own clock starts now.
        push_plain(&mut b, txn(2), SimTime::from_millis(100));
        assert!(b.poll(SimTime::from_millis(105)).is_none());
        assert!(b.poll(SimTime::from_millis(110)).is_some());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::new(0, SimDuration::ZERO);
    }

    #[test]
    fn released_batches_carry_a_prefilled_wire_digest() {
        let mut b = Batcher::new(4, SimDuration::from_millis(10));
        for i in 0..3 {
            assert!(push_plain(&mut b, txn(i), SimTime::ZERO).is_none());
        }
        let released = push_plain(&mut b, txn(3), SimTime::ZERO).expect("full");
        let cached = released
            .batch()
            .cached_digest()
            .expect("digest memo filled at release");
        assert_eq!(cached, compute_batch_digest(released.batch()));
        // The accumulator reset cleanly: the next (partial) batch digests
        // correctly too, and differs, being a different batch.
        for i in 10..13 {
            assert!(push_plain(&mut b, txn(i), SimTime::ZERO).is_none());
        }
        let second = b.flush().expect("partial flush");
        let cached2 = second.batch().cached_digest().expect("memo filled");
        assert_eq!(cached2, compute_batch_digest(second.batch()));
        assert_ne!(cached, cached2);
    }

    fn push_lane(
        b: &mut Batcher,
        t: Transaction,
        plan: ShardPlan,
        now: SimTime,
    ) -> Option<SignedBatch> {
        b.push_planned(t, Digest::ZERO, Signature::ZERO, now, plan)
    }

    #[test]
    fn unlaned_batches_release_unplanned() {
        let mut b = Batcher::new(2, SimDuration::from_millis(10));
        assert_eq!(b.lanes(), 1);
        let _ = push_plain(&mut b, txn(0), SimTime::ZERO);
        let batch = push_plain(&mut b, txn(1), SimTime::ZERO).expect("full");
        assert_eq!(batch.plan(), ShardPlan::Unplanned);
    }

    #[test]
    fn shard_lanes_assemble_per_home_and_tag_single_home() {
        let mut b = Batcher::with_shard_lanes(2, SimDuration::from_millis(10), 4);
        assert_eq!(b.lanes(), 5, "4 home lanes + 1 cross lane");
        let home2 = ShardPlan::SingleHome(ShardId(2));
        let home3 = ShardPlan::SingleHome(ShardId(3));
        // Interleaved pushes to different homes fill separate lanes.
        assert!(push_lane(&mut b, txn(0), home2, SimTime::ZERO).is_none());
        assert!(push_lane(&mut b, txn(1), home3, SimTime::ZERO).is_none());
        assert_eq!(b.pending(), 2);
        let released = push_lane(&mut b, txn(2), home2, SimTime::ZERO).expect("lane 2 full");
        assert_eq!(released.plan(), home2);
        assert_eq!(released.len(), 2);
        assert_eq!(b.pending(), 1, "lane 3 still waiting");
        // The released lane batch digests correctly despite interleaving.
        assert_eq!(
            released.batch().cached_digest().expect("memo filled"),
            compute_batch_digest(released.batch()),
        );
    }

    #[test]
    fn cross_and_unplanned_transactions_share_the_cross_lane() {
        let mut b = Batcher::with_shard_lanes(2, SimDuration::from_millis(10), 4);
        assert!(push_lane(&mut b, txn(0), ShardPlan::CrossHome, SimTime::ZERO).is_none());
        let released =
            push_lane(&mut b, txn(1), ShardPlan::Unplanned, SimTime::ZERO).expect("cross full");
        assert_eq!(released.plan(), ShardPlan::CrossHome);
        // An out-of-range home shard is treated as cross, not a panic.
        assert!(push_lane(
            &mut b,
            txn(2),
            ShardPlan::SingleHome(ShardId(99)),
            SimTime::ZERO
        )
        .is_none());
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn poll_drains_every_stale_lane_in_turn() {
        let mut b = Batcher::with_shard_lanes(10, SimDuration::from_millis(10), 2);
        let _ = push_lane(
            &mut b,
            txn(0),
            ShardPlan::SingleHome(ShardId(0)),
            SimTime::ZERO,
        );
        let _ = push_lane(
            &mut b,
            txn(1),
            ShardPlan::SingleHome(ShardId(1)),
            SimTime::ZERO,
        );
        let _ = push_lane(&mut b, txn(2), ShardPlan::CrossHome, SimTime::ZERO);
        assert!(b.poll(SimTime::from_millis(5)).is_none(), "not stale yet");
        let mut plans = Vec::new();
        while let Some(batch) = b.poll(SimTime::from_millis(10)) {
            plans.push(batch.plan());
        }
        assert_eq!(
            plans,
            vec![
                ShardPlan::SingleHome(ShardId(0)),
                ShardPlan::SingleHome(ShardId(1)),
                ShardPlan::CrossHome,
            ]
        );
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn one_stale_lane_triggers_a_global_drain_of_fresher_lanes() {
        let registry = Registry::new();
        let mut b = Batcher::with_shard_lanes(10, SimDuration::from_millis(5), 2);
        b.register_metrics(&registry, "shim.0");
        let _ = push_lane(
            &mut b,
            txn(0),
            ShardPlan::SingleHome(ShardId(0)),
            SimTime::ZERO,
        );
        // Lane 1's transaction arrives 3 ms later: on its own clock it
        // would not release until 8 ms.
        let _ = push_lane(
            &mut b,
            txn(1),
            ShardPlan::SingleHome(ShardId(1)),
            SimTime::from_millis(3),
        );
        assert!(b.poll(SimTime::from_millis(4)).is_none(), "no lane stale");
        let mut plans = Vec::new();
        while let Some(batch) = b.poll(SimTime::from_millis(5)) {
            plans.push(batch.plan());
        }
        // Lane 0 hit its timeout; lane 1 rode along (piggyback first)
        // instead of waiting out its own.
        assert_eq!(
            plans,
            vec![
                ShardPlan::SingleHome(ShardId(1)),
                ShardPlan::SingleHome(ShardId(0)),
            ]
        );
        assert_eq!(registry.counter_value("shim.0.batcher.released_timeout"), 1);
        assert_eq!(registry.counter_value("shim.0.batcher.global_drains"), 1);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn pruning_preserves_the_lane_plan() {
        let provider = CryptoProvider::new(11);
        let mut b = Batcher::with_shard_lanes(2, SimDuration::from_millis(10), 4);
        let plan = ShardPlan::SingleHome(ShardId(1));
        let (t, d, s) = signed(&provider, 0, 0);
        assert!(b.push_planned(t, d, s, SimTime::ZERO, plan).is_none());
        let (t, d, _) = signed(&provider, 1, 1);
        let released = b
            .push_planned(t, d, Signature::ZERO, SimTime::ZERO, plan)
            .expect("full");
        assert_eq!(released.plan(), plan);
        let (verified, rejected) = released.verify_and_prune(&provider);
        assert_eq!(rejected.len(), 1);
        assert_eq!(verified.expect("one survivor").len(), 1);
    }

    /// A correctly signed transaction for `client` over an arbitrary
    /// per-transaction digest.
    fn signed(
        provider: &Arc<CryptoProvider>,
        client: u32,
        counter: u64,
    ) -> (Transaction, Digest, Signature) {
        let t = Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::ReadModifyWrite(Key(counter), 1)],
        );
        let digest = sbft_crypto::digest_u64s("batcher-test", &[u64::from(client), counter]);
        let sig = provider
            .handle(ComponentId::Client(ClientId(client)))
            .sign(&digest);
        (t, digest, sig)
    }

    #[test]
    fn aggregate_fast_path_returns_the_same_allocation() {
        let provider = CryptoProvider::new(11);
        let mut b = Batcher::new(3, SimDuration::from_millis(10));
        for i in 0..2u64 {
            let (t, d, s) = signed(&provider, i as u32, i);
            assert!(b.push(t, d, s, SimTime::ZERO).is_none());
        }
        let (t, d, s) = signed(&provider, 2, 2);
        let released = b.push(t, d, s, SimTime::ZERO).expect("full batch");
        let before = released.batch().clone();
        let (verified, rejected) = released.verify_and_prune(&provider);
        let verified = verified.expect("all signatures valid");
        assert!(rejected.is_empty());
        assert!(
            verified.shares_txns(&before),
            "the fast path must hand consensus the batcher's allocation"
        );
    }

    #[test]
    fn corrupted_signature_is_pruned_and_reported() {
        let provider = CryptoProvider::new(11);
        let mut b = Batcher::new(4, SimDuration::from_millis(10));
        for i in 0..3u64 {
            let (t, d, s) = signed(&provider, i as u32, i);
            assert!(b.push(t, d, s, SimTime::ZERO).is_none());
        }
        // The fourth "client" forges its signature.
        let (t, d, _) = signed(&provider, 3, 3);
        let forged_id = t.id;
        let released = b.push(t, d, Signature::ZERO, SimTime::ZERO).expect("full");
        let (verified, rejected) = released.verify_and_prune(&provider);
        assert_eq!(rejected, vec![(forged_id, Signature::ZERO)]);
        let batch = verified.expect("three honest transactions survive");
        assert_eq!(batch.len(), 3);
        assert!(batch.txn_ids().iter().all(|id| *id != forged_id));
    }

    #[test]
    fn fully_forged_batch_is_dropped() {
        let provider = CryptoProvider::new(11);
        let (t, d, _) = signed(&provider, 0, 0);
        let single = SignedBatch::single(t, d, Signature::ZERO);
        assert!(!single.is_empty());
        let (verified, rejected) = single.verify_and_prune(&provider);
        assert!(verified.is_none());
        assert_eq!(rejected.len(), 1);
    }
}
