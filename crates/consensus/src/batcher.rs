//! The batching front-end and the amortised batch-authentication path.
//!
//! "We also require clients and edge nodes to employ batching and run
//! consensuses on batches of 100 client transactions" (Section IX, Setup).
//! The batcher accumulates incoming client transactions at the primary and
//! releases a batch either when it reaches the configured size or when the
//! batch timeout expires (so a lightly loaded system does not wait
//! forever). Figure 6(iii)–(iv) sweeps the batch size from 10 to 8000.
//!
//! # Amortised batch crypto
//!
//! The batcher is where the primary's two per-batch crypto costs get
//! amortised across transaction arrivals instead of being paid in one
//! lump on the submit hot path:
//!
//! * **Client authentication.** Each pushed transaction carries its
//!   (memoized) signing digest and the client's signature; the signature
//!   folds into a running [`AggregateSignature`]. A released
//!   [`SignedBatch`] is verified with **one** aggregate check
//!   ([`SignedBatch::verify_and_prune`]); only when that check fails does
//!   the bisecting fallback pinpoint — and prune — the offending
//!   transactions.
//! * **The wire digest `Δ = H(m)`.** A running
//!   [`BatchDigestAccumulator`] absorbs each transaction on push, so the
//!   released batch's digest memo is already filled and
//!   [`crate::messages::batch_digest`] is a cache hit when the primary
//!   proposes.

use crate::messages::BatchDigestAccumulator;
use sbft_crypto::{AggregateSignature, CryptoProvider};
use sbft_types::{Batch, ComponentId, Digest, Signature, SimDuration, SimTime, Transaction, TxnId};

/// A released batch plus the client-authentication material needed to
/// verify it in one aggregate check.
#[derive(Clone, Debug)]
pub struct SignedBatch {
    batch: Batch,
    /// Per-transaction signing digests, in batch order.
    digests: Vec<Digest>,
    /// Per-transaction client signatures, in batch order (needed only by
    /// the bisecting fallback).
    signatures: Vec<Signature>,
    /// The fold of `signatures`.
    aggregate: AggregateSignature,
}

impl SignedBatch {
    /// A signed batch with a single transaction (unbatched operation).
    #[must_use]
    pub fn single(txn: Transaction, digest: Digest, signature: Signature) -> Self {
        SignedBatch {
            batch: Batch::single(txn),
            digests: vec![digest],
            signatures: vec![signature],
            aggregate: AggregateSignature::from_signatures([&signature]),
        }
    }

    /// The batch awaiting verification.
    #[must_use]
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Number of transactions in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether the batch is empty (never true for released batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The aggregate of the batch's client signatures.
    #[must_use]
    pub fn aggregate(&self) -> &AggregateSignature {
        &self.aggregate
    }

    /// Authenticates the whole batch with one aggregate signature check.
    ///
    /// On the fast path (every client signature valid — the always case
    /// with honest clients) this costs a single fold-and-compare over
    /// cached key schedules and returns the batch **unchanged, by move**:
    /// the `Arc` storage built by the batcher flows on to consensus
    /// untouched. When the aggregate check fails, the bisecting fallback
    /// locates the offending transactions; they are pruned (and reported,
    /// with the forged signature each carried, as the second tuple
    /// element) and the surviving transactions are re-batched. Returns
    /// `None` for the batch if nothing survives.
    #[must_use]
    pub fn verify_and_prune(
        self,
        provider: &CryptoProvider,
    ) -> (Option<Batch>, Vec<(TxnId, Signature)>) {
        let claims: Vec<(ComponentId, Digest)> = self
            .batch
            .txns()
            .iter()
            .zip(&self.digests)
            .map(|(txn, digest)| (ComponentId::Client(txn.id.client), *digest))
            .collect();
        if provider.verify_aggregate(&claims, &self.aggregate) {
            return (Some(self.batch), Vec::new());
        }
        // Slow path: some signature is invalid. Bisect to find which.
        let full: Vec<(ComponentId, Digest, Signature)> = claims
            .iter()
            .zip(&self.signatures)
            .map(|((signer, digest), sig)| (*signer, *digest, *sig))
            .collect();
        let offenders = provider.locate_invalid_signatures(&full);
        debug_assert!(
            !offenders.is_empty(),
            "a failed aggregate always bisects to at least one offender"
        );
        let rejected: Vec<(TxnId, Signature)> = offenders
            .iter()
            .map(|&i| (self.batch.txns()[i].id, self.signatures[i]))
            .collect();
        let mut next_offender = offenders.into_iter().peekable();
        let retained: Vec<Transaction> = self
            .batch
            .txns()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                if next_offender.peek() == Some(i) {
                    next_offender.next();
                    false
                } else {
                    true
                }
            })
            .map(|(_, txn)| txn.clone())
            .collect();
        let batch = (!retained.is_empty()).then(|| Batch::new(retained));
        (batch, rejected)
    }
}

/// Accumulates signed client transactions into consensus batches.
#[derive(Debug)]
pub struct Batcher {
    batch_size: usize,
    max_wait: SimDuration,
    pending: Vec<Transaction>,
    digests: Vec<Digest>,
    signatures: Vec<Signature>,
    aggregate: AggregateSignature,
    digest_acc: BatchDigestAccumulator,
    oldest_pending: Option<SimTime>,
}

impl Batcher {
    /// Creates a batcher releasing batches of `batch_size` transactions, or
    /// earlier once the oldest pending transaction has waited `max_wait`.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn new(batch_size: usize, max_wait: SimDuration) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            batch_size,
            max_wait,
            pending: Vec::with_capacity(batch_size),
            digests: Vec::with_capacity(batch_size),
            signatures: Vec::with_capacity(batch_size),
            aggregate: AggregateSignature::identity(),
            digest_acc: BatchDigestAccumulator::new(),
            oldest_pending: None,
        }
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of transactions waiting for a batch.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Adds a signed transaction (its memoized signing digest plus the
    /// client's signature over it); returns a full batch if the size
    /// threshold is reached. The signature folds into the running
    /// aggregate and the transaction is absorbed into the running wire
    /// digest, so releasing a batch costs O(1) hashing.
    pub fn push(
        &mut self,
        txn: Transaction,
        digest: Digest,
        signature: Signature,
        now: SimTime,
    ) -> Option<SignedBatch> {
        if self.pending.is_empty() {
            self.oldest_pending = Some(now);
        }
        self.digest_acc.absorb(&txn);
        self.aggregate.fold(&signature);
        self.pending.push(txn);
        self.digests.push(digest);
        self.signatures.push(signature);
        if self.pending.len() >= self.batch_size {
            return self.flush();
        }
        None
    }

    /// Releases whatever is pending if the oldest transaction has waited at
    /// least `max_wait` (called on a periodic tick).
    pub fn poll(&mut self, now: SimTime) -> Option<SignedBatch> {
        match self.oldest_pending {
            Some(oldest) if now.since(oldest) >= self.max_wait && !self.pending.is_empty() => {
                self.flush()
            }
            _ => None,
        }
    }

    /// Releases all pending transactions as a batch immediately. The
    /// released batch carries its wire digest pre-memoized.
    pub fn flush(&mut self) -> Option<SignedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        self.oldest_pending = None;
        let txns = std::mem::take(&mut self.pending);
        let digests = std::mem::take(&mut self.digests);
        let signatures = std::mem::take(&mut self.signatures);
        let aggregate = std::mem::replace(&mut self.aggregate, AggregateSignature::identity());
        let acc = std::mem::take(&mut self.digest_acc);
        let batch = Batch::new(txns);
        let wire_digest = acc.finish();
        let filled = batch.digest_memo(|| wire_digest);
        debug_assert_eq!(filled, wire_digest, "digest memo must take our value");
        Some(SignedBatch {
            batch,
            digests,
            signatures,
            aggregate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::compute_batch_digest;
    use sbft_types::{ClientId, Key, Operation, TxnId};
    use std::sync::Arc;

    fn txn(counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(0), counter),
            vec![Operation::Read(Key(counter))],
        )
    }

    /// Pushes with placeholder authentication material (tests that only
    /// exercise sizing/timing).
    fn push_plain(b: &mut Batcher, t: Transaction, now: SimTime) -> Option<SignedBatch> {
        b.push(t, Digest::ZERO, Signature::ZERO, now)
    }

    #[test]
    fn releases_full_batches() {
        let mut b = Batcher::new(3, SimDuration::from_millis(10));
        assert!(push_plain(&mut b, txn(0), SimTime::ZERO).is_none());
        assert!(push_plain(&mut b, txn(1), SimTime::ZERO).is_none());
        let batch = push_plain(&mut b, txn(2), SimTime::ZERO).expect("full batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn poll_releases_stale_partial_batches() {
        let mut b = Batcher::new(100, SimDuration::from_millis(10));
        push_plain(&mut b, txn(0), SimTime::from_millis(0));
        assert!(b.poll(SimTime::from_millis(5)).is_none(), "not stale yet");
        let batch = b.poll(SimTime::from_millis(10)).expect("timeout flush");
        assert_eq!(batch.len(), 1);
        assert!(
            b.poll(SimTime::from_millis(20)).is_none(),
            "nothing pending"
        );
    }

    #[test]
    fn flush_empties_pending() {
        let mut b = Batcher::new(10, SimDuration::from_millis(10));
        assert!(b.flush().is_none());
        push_plain(&mut b, txn(0), SimTime::ZERO);
        push_plain(&mut b, txn(1), SimTime::ZERO);
        assert_eq!(b.flush().unwrap().len(), 2);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batch_size(), 10);
    }

    #[test]
    fn wait_clock_resets_after_release() {
        let mut b = Batcher::new(2, SimDuration::from_millis(10));
        push_plain(&mut b, txn(0), SimTime::from_millis(0));
        let _ = push_plain(&mut b, txn(1), SimTime::from_millis(1)).unwrap();
        // New transaction arrives much later; its own clock starts now.
        push_plain(&mut b, txn(2), SimTime::from_millis(100));
        assert!(b.poll(SimTime::from_millis(105)).is_none());
        assert!(b.poll(SimTime::from_millis(110)).is_some());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::new(0, SimDuration::ZERO);
    }

    #[test]
    fn released_batches_carry_a_prefilled_wire_digest() {
        let mut b = Batcher::new(4, SimDuration::from_millis(10));
        for i in 0..3 {
            assert!(push_plain(&mut b, txn(i), SimTime::ZERO).is_none());
        }
        let released = push_plain(&mut b, txn(3), SimTime::ZERO).expect("full");
        let cached = released
            .batch()
            .cached_digest()
            .expect("digest memo filled at release");
        assert_eq!(cached, compute_batch_digest(released.batch()));
        // The accumulator reset cleanly: the next (partial) batch digests
        // correctly too, and differs, being a different batch.
        for i in 10..13 {
            assert!(push_plain(&mut b, txn(i), SimTime::ZERO).is_none());
        }
        let second = b.flush().expect("partial flush");
        let cached2 = second.batch().cached_digest().expect("memo filled");
        assert_eq!(cached2, compute_batch_digest(second.batch()));
        assert_ne!(cached, cached2);
    }

    /// A correctly signed transaction for `client` over an arbitrary
    /// per-transaction digest.
    fn signed(
        provider: &Arc<CryptoProvider>,
        client: u32,
        counter: u64,
    ) -> (Transaction, Digest, Signature) {
        let t = Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::ReadModifyWrite(Key(counter), 1)],
        );
        let digest = sbft_crypto::digest_u64s("batcher-test", &[u64::from(client), counter]);
        let sig = provider
            .handle(ComponentId::Client(ClientId(client)))
            .sign(&digest);
        (t, digest, sig)
    }

    #[test]
    fn aggregate_fast_path_returns_the_same_allocation() {
        let provider = CryptoProvider::new(11);
        let mut b = Batcher::new(3, SimDuration::from_millis(10));
        for i in 0..2u64 {
            let (t, d, s) = signed(&provider, i as u32, i);
            assert!(b.push(t, d, s, SimTime::ZERO).is_none());
        }
        let (t, d, s) = signed(&provider, 2, 2);
        let released = b.push(t, d, s, SimTime::ZERO).expect("full batch");
        let before = released.batch().clone();
        let (verified, rejected) = released.verify_and_prune(&provider);
        let verified = verified.expect("all signatures valid");
        assert!(rejected.is_empty());
        assert!(
            verified.shares_txns(&before),
            "the fast path must hand consensus the batcher's allocation"
        );
    }

    #[test]
    fn corrupted_signature_is_pruned_and_reported() {
        let provider = CryptoProvider::new(11);
        let mut b = Batcher::new(4, SimDuration::from_millis(10));
        for i in 0..3u64 {
            let (t, d, s) = signed(&provider, i as u32, i);
            assert!(b.push(t, d, s, SimTime::ZERO).is_none());
        }
        // The fourth "client" forges its signature.
        let (t, d, _) = signed(&provider, 3, 3);
        let forged_id = t.id;
        let released = b.push(t, d, Signature::ZERO, SimTime::ZERO).expect("full");
        let (verified, rejected) = released.verify_and_prune(&provider);
        assert_eq!(rejected, vec![(forged_id, Signature::ZERO)]);
        let batch = verified.expect("three honest transactions survive");
        assert_eq!(batch.len(), 3);
        assert!(batch.txn_ids().iter().all(|id| *id != forged_id));
    }

    #[test]
    fn fully_forged_batch_is_dropped() {
        let provider = CryptoProvider::new(11);
        let (t, d, _) = signed(&provider, 0, 0);
        let single = SignedBatch::single(t, d, Signature::ZERO);
        assert!(!single.is_empty());
        let (verified, rejected) = single.verify_and_prune(&provider);
        assert!(verified.is_none());
        assert_eq!(rejected.len(), 1);
    }
}
