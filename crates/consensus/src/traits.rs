//! The common interface implemented by every shim ordering protocol.

use crate::actions::{ConsensusAction, ConsensusTimer};
use crate::messages::ConsensusMessage;
use sbft_durability::RecoveredEntry;
use sbft_telemetry::Registry;
use sbft_types::{Batch, NodeId, SeqNum, ShardPlan, Transaction, TxnId, ViewNumber};
use std::collections::HashSet;

/// Counters describing how adversarial a replica's recovery was. All are
/// cumulative over the replica's lifetime; the shim layer diffs
/// successive snapshots into its registry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Garbage `STATERESPONSE` entries rejected (bad certificate, digest
    /// mismatch, stale view), summed over senders.
    pub bad_state_responses: u64,
    /// `STATEREQUEST` retransmissions sent after the initial broadcast.
    pub state_request_retries: u64,
    /// Checkpoint catch-ups: times the replica adopted a peer's snapshot
    /// floor because its own floor fell below peer retention.
    pub catch_ups: u64,
}

/// A deterministic ordering-protocol state machine running on one shim
/// node. `PbftReplica`, `CftReplica` and `NoShim` all implement this trait,
/// which is what lets the Figure 7 baseline comparison swap the shim
/// protocol without touching the rest of the architecture.
pub trait OrderingProtocol {
    /// Submits a client batch for ordering, together with the
    /// ordering-time shard plan the batching front-end computed for it
    /// ([`ShardPlan::Unplanned`] when no planner runs). Only meaningful
    /// on the node currently acting as primary/leader; other nodes
    /// ignore it.
    fn submit_batch(&mut self, batch: Batch, plan: ShardPlan) -> Vec<ConsensusAction>;

    /// Handles a consensus message received from another shim node.
    fn handle_message(&mut self, from: NodeId, msg: ConsensusMessage) -> Vec<ConsensusAction>;

    /// Handles the expiry of a previously requested timer.
    fn handle_timer(&mut self, timer: ConsensusTimer) -> Vec<ConsensusAction>;

    /// Explicitly requests a primary replacement (used by the ServerlessBFT
    /// recovery paths: `REPLACE` messages from the verifier and expiry of
    /// the re-transmission timer `Υ`).
    fn request_view_change(&mut self) -> Vec<ConsensusAction>;

    /// The view (or ballot) this node is currently in.
    fn view(&self) -> ViewNumber;

    /// The primary/leader of the current view.
    fn primary(&self) -> NodeId;

    /// This node's identifier.
    fn node_id(&self) -> NodeId;

    /// Whether this node is the primary of the current view.
    fn is_primary(&self) -> bool {
        self.primary() == self.node_id()
    }

    /// Installs state reconstructed from a durable log after a crash
    /// restart: committed `entries` above the `stable` snapshot floor,
    /// resuming in `view`. Returns the actions needed to rejoin (for
    /// PBFT, a broadcast `STATEREQUEST` for the missing suffix).
    /// Protocols without a recovery path ignore it.
    fn install_recovered(
        &mut self,
        entries: Vec<RecoveredEntry>,
        stable: SeqNum,
        view: ViewNumber,
    ) -> Vec<ConsensusAction> {
        let _ = (entries, stable, view);
        Vec::new()
    }

    /// Cumulative adversarial-recovery counters (garbage responses
    /// rejected, request retransmissions, checkpoint catch-ups).
    /// Protocols without a recovery path report zeros.
    fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats::default()
    }

    /// Offers a transaction body observed from client submission to the
    /// protocol's body cache, feeding digest-proposal reconstruction. May
    /// return actions when the body completes an in-flight reconstruction
    /// (the proposal can race ahead of the client broadcast). Protocols
    /// without a digest mode ignore it.
    fn offer_body(&mut self, txn: Transaction) -> Vec<ConsensusAction> {
        let _ = txn;
        Vec::new()
    }

    /// Garbage-collects cached transaction bodies, keeping only ids in
    /// `protected` (the shim calls this on its checkpoint-rhythm GC).
    /// Protocols without a body cache ignore it.
    fn gc_bodies(&mut self, protected: &HashSet<TxnId>) {
        let _ = protected;
    }

    /// Sequence numbers of digest proposals still waiting for bodies
    /// (tests and the retransmission drivers). Empty for protocols
    /// without a digest mode.
    fn pending_reconstructions(&self) -> Vec<SeqNum> {
        Vec::new()
    }

    /// Transaction bodies currently cached for digest reconstruction
    /// (tests and memory accounting). Zero for protocols without a body
    /// cache.
    fn cached_bodies(&self) -> usize {
        0
    }

    /// Re-homes the protocol's internal counters (body-cache hits/misses,
    /// fetch traffic) into `registry` under `prefix`. Protocols without
    /// counters ignore it.
    fn register_metrics(&mut self, registry: &Registry, prefix: &str) {
        let _ = (registry, prefix);
    }

    /// Short protocol name used in experiment output ("PBFT", "CFT",
    /// "NoShim").
    fn name(&self) -> &'static str;
}
