//! # sbft-runtime
//!
//! A thread-based local emulation of the serverless-edge architecture: the
//! same role state machines as the simulator, but driven by real OS
//! threads and crossbeam channels instead of a virtual clock. This is the
//! "local multi-process emulation" counterpart to the paper's OCI + AWS
//! Lambda deployment: every shim node, the verifier and the executor pool
//! run on their own thread and exchange the same `ProtocolMessage`s.
//!
//! Scope: the thread runtime demonstrates the live, fault-free transaction
//! flow (client → shim consensus → executor pool → verifier → client) and
//! is used by the examples and integration tests. Timer-driven recovery,
//! byzantine attacks and the evaluation experiments run on the
//! deterministic simulator (`sbft-sim`), where they are reproducible.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;

pub use cluster::{ClusterReport, LocalCluster};
