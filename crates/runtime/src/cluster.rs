//! The thread-based local cluster.
//!
//! [`LocalCluster::run`] takes an assembled [`sbft_core::System`], spawns
//! one thread per shim node, one for the verifier and one executor-pool
//! thread, and drives a closed-loop client population from the calling
//! thread until the requested number of transactions has been committed
//! (or a wall-clock deadline passes).

use crossbeam_channel::{unbounded, Receiver, Sender};
use sbft_core::events::{Action, Destination, Envelope, ProtocolMessage};
use sbft_core::System;
use sbft_telemetry::{Stage, TraceSink, Tracer};
use sbft_types::{ClientId, ComponentId, NodeId, SeqNum, SimTime, TxnOutcome};
use sbft_workloads::YcsbWorkload;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What one node/verifier thread receives.
struct Delivery {
    from: ComponentId,
    msg: ProtocolMessage,
}

/// A unit of work handed to a role thread, or the shutdown marker.
///
/// Every thread holds a clone of the [`Router`] — and therefore a sender
/// to every other thread — so channels never disconnect on their own; the
/// explicit `Stop` marker is what ends the worker loops at shutdown.
enum Work<T> {
    Item(T),
    Stop,
}

/// Routing table: senders for every component plus the executor pool.
#[derive(Clone)]
struct Router {
    nodes: Vec<Sender<Work<Delivery>>>,
    verifier: Sender<Work<Delivery>>,
    clients: Sender<Delivery>,
    executor_pool: Sender<
        Work<(
            sbft_serverless::SpawnRequest,
            sbft_serverless::ExecuteRequest,
        )>,
    >,
    /// Lifecycle tracer; markers are stamped with wall-clock microseconds
    /// since `epoch` so exported traces line up with `ClusterReport`
    /// elapsed time.
    tracer: Tracer,
    epoch: Instant,
}

impl Router {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Marks the batch-lifecycle edges visible at routing time. The
    /// thread runtime has no discrete clock, so it traces the
    /// cross-thread handoffs (batch release, commit, executor spawn,
    /// verify ingest, client response) rather than the per-request
    /// admission edges the simulator can see.
    fn trace_action(&self, action: &Action) {
        let now = self.now();
        match action {
            Action::Send(Envelope { msg, .. }) => match msg {
                ProtocolMessage::Consensus(c) => {
                    if let Some(seq) = ordering_batch_seq(c) {
                        self.tracer.emit(seq.0, Stage::BatchRelease, now);
                    }
                }
                ProtocolMessage::Verify(v) => self.tracer.emit(v.seq.0, Stage::VerifyIngest, now),
                ProtocolMessage::Response(r) => self.tracer.emit(r.seq.0, Stage::Respond, now),
                ProtocolMessage::Abort(a) => self.tracer.emit(a.seq.0, Stage::Respond, now),
                _ => {}
            },
            Action::SpawnExecutor { execute, .. } => {
                self.tracer.emit(execute.seq.0, Stage::ExecuteSpawn, now);
            }
            Action::BatchCommitted { seq, .. } => {
                self.tracer.emit(seq.0, Stage::CommitQuorum, now);
            }
            _ => {}
        }
    }

    fn route(&self, origin: ComponentId, actions: Vec<Action>) {
        for action in actions {
            if self.tracer.enabled() {
                self.trace_action(&action);
            }
            match action {
                Action::Send(Envelope { from, to, msg }) => match to {
                    Destination::Node(n) => {
                        if let Some(tx) = self.nodes.get(n.0 as usize) {
                            let _ = tx.send(Work::Item(Delivery { from, msg }));
                        }
                    }
                    Destination::AllNodes => {
                        for (i, tx) in self.nodes.iter().enumerate() {
                            if ComponentId::Node(NodeId(i as u32)) != origin {
                                let _ = tx.send(Work::Item(Delivery {
                                    from,
                                    msg: msg.clone(),
                                }));
                            }
                        }
                    }
                    Destination::Verifier => {
                        let _ = self.verifier.send(Work::Item(Delivery { from, msg }));
                    }
                    Destination::Client(_) => {
                        let _ = self.clients.send(Delivery { from, msg });
                    }
                    Destination::Executor(_) => {}
                },
                Action::SpawnExecutor { request, execute } => {
                    let _ = self.executor_pool.send(Work::Item((request, execute)));
                }
                // Timers and metric hooks are not used on the happy path the
                // thread runtime covers.
                _ => {}
            }
        }
    }

    /// Tells every worker thread to exit its loop.
    fn stop_all(&self) {
        for tx in &self.nodes {
            let _ = tx.send(Work::Stop);
        }
        let _ = self.verifier.send(Work::Stop);
        let _ = self.executor_pool.send(Work::Stop);
    }
}

/// Summary of a local-cluster run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterReport {
    /// Transactions committed (client received a `RESPONSE`).
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
    /// Executors invoked by the pool.
    pub executor_invocations: u64,
    /// Transactions the verifier applied through the `ShardScheduler`
    /// worker pool (0 when the configuration runs the synchronous apply
    /// stage).
    pub pool_applied: u64,
}

impl ClusterReport {
    /// Committed transactions per wall-clock second.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / secs
    }
}

/// The thread-based cluster driver.
pub struct LocalCluster {
    system: System,
    num_clients: usize,
    target_txns: u64,
    deadline: Duration,
    workload_seed: u64,
    trace_sink: Option<Arc<dyn TraceSink>>,
}

impl LocalCluster {
    /// Creates a driver around an assembled system.
    #[must_use]
    pub fn new(system: System) -> Self {
        LocalCluster {
            system,
            num_clients: 8,
            target_txns: 200,
            deadline: Duration::from_secs(10),
            workload_seed: 1,
            trace_sink: None,
        }
    }

    /// Records batch lifecycle span events into `sink` (wall-clock
    /// microseconds since run start). Off by default: the router then
    /// pays one branch per action.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Number of closed-loop clients to drive.
    #[must_use]
    pub fn clients(mut self, n: usize) -> Self {
        self.num_clients = n.max(1);
        self
    }

    /// Number of committed transactions to wait for.
    #[must_use]
    pub fn target_txns(mut self, n: u64) -> Self {
        self.target_txns = n.max(1);
        self
    }

    /// Wall-clock safety deadline.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    /// Runs the cluster until `target_txns` transactions commit or the
    /// deadline passes, then shuts every thread down.
    #[must_use]
    pub fn run(self) -> ClusterReport {
        let LocalCluster {
            mut system,
            num_clients,
            target_txns,
            deadline,
            workload_seed,
            trace_sink,
        } = self;
        let num_clients = num_clients.min(system.clients.len()).max(1);
        let start = Instant::now();

        // Channels.
        let mut node_rx: Vec<Receiver<Work<Delivery>>> = Vec::new();
        let mut node_tx: Vec<Sender<Work<Delivery>>> = Vec::new();
        for _ in 0..system.nodes.len() {
            let (tx, rx) = unbounded();
            node_tx.push(tx);
            node_rx.push(rx);
        }
        let (verifier_tx, verifier_rx) = unbounded();
        let (client_tx, client_rx) = unbounded::<Delivery>();
        let (pool_tx, pool_rx) = unbounded::<
            Work<(
                sbft_serverless::SpawnRequest,
                sbft_serverless::ExecuteRequest,
            )>,
        >();
        let router = Router {
            nodes: node_tx,
            verifier: verifier_tx,
            clients: client_tx,
            executor_pool: pool_tx,
            tracer: match trace_sink {
                Some(sink) => Tracer::new(sink),
                None => Tracer::disabled(),
            },
            epoch: start,
        };

        let mut handles = Vec::new();

        // Shim node threads. Under durability each node writes a real
        // buffered WAL file (the in-memory backend attached at build time
        // is only the simulator's deterministic stand-in); an unopenable
        // file falls back to that in-memory log rather than failing the
        // run.
        let nodes = std::mem::take(&mut system.nodes);
        let wal_dir = system.config.durability.enabled.then(|| {
            let dir = std::env::temp_dir().join(format!("sbft-wal-{}", std::process::id()));
            let _ = std::fs::create_dir_all(&dir);
            dir
        });
        for (i, mut node) in nodes.into_iter().enumerate() {
            if let Some(dir) = &wal_dir {
                if let Ok(wal) = sbft_durability::FileWal::open(dir.join(format!("node-{i}.wal"))) {
                    node.attach_wal(Box::new(wal));
                }
            }
            let rx = node_rx.remove(0);
            let router = router.clone();
            handles.push(thread::spawn(move || {
                let origin = ComponentId::Node(NodeId(i as u32));
                while let Ok(Work::Item(delivery)) = rx.recv() {
                    let now = SimTime::from_micros(0);
                    let actions = match &delivery.msg {
                        ProtocolMessage::ClientRequest(req) => node.on_client_request(req, now),
                        ProtocolMessage::Consensus(c) => match delivery.from.as_node() {
                            Some(sender) => node.on_consensus_message(sender, c.clone()),
                            None => Vec::new(),
                        },
                        other => node.on_message_at(other, now),
                    };
                    router.route(origin, actions);
                    // Release any partial batch so small workloads finish.
                    let flush = node.poll_batcher(SimTime::from_micros(u64::MAX / 2));
                    router.route(origin, flush);
                }
            }));
        }

        // Executor pool thread: spawns an executor object per request and
        // forwards its VERIFY messages to the verifier.
        {
            let router = router.clone();
            let provider = system.provider.clone();
            let storage = std::sync::Arc::clone(&system.storage);
            let n_r = system.config.fault.n_r;
            let cert_quorum = system.cert_quorum();
            let mut next_executor: u64 = 0;
            let invocations = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let invocations_pool = std::sync::Arc::clone(&invocations);
            handles.push(thread::spawn(move || {
                while let Ok(Work::Item((request, execute))) = pool_rx.recv() {
                    let id = sbft_types::ExecutorId(next_executor);
                    next_executor += 1;
                    invocations_pool.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let executor = sbft_serverless::Executor::new(
                        id,
                        request.region,
                        sbft_serverless::ExecutorBehavior::Honest,
                        provider.handle(ComponentId::Executor(id)),
                        sbft_storage::StorageReader::new(std::sync::Arc::clone(&storage)),
                        n_r,
                        cert_quorum,
                    );
                    if let Ok(output) = executor.handle_execute(&execute) {
                        for verify in output.verify_messages {
                            router.route(
                                ComponentId::Executor(id),
                                vec![Action::send(
                                    ComponentId::Executor(id),
                                    Destination::Verifier,
                                    ProtocolMessage::Verify(verify),
                                )],
                            );
                        }
                    }
                }
            }));
        }

        // Verifier thread. With more than one configured shard worker the
        // apply stage runs on the ShardScheduler pool (real multi-core
        // commit parallelism); otherwise it stays synchronous on this
        // thread.
        let pool_applied = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        {
            let router = router.clone();
            let mut verifier = system.verifier;
            let apply_workers = system.config.sharding.workers;
            if apply_workers > 1 {
                verifier.attach_apply_pool(apply_workers);
                if let Some(pool) = verifier.apply_pool() {
                    pool.register_metrics(&system.registry);
                }
            }
            let pool_applied = std::sync::Arc::clone(&pool_applied);
            handles.push(thread::spawn(move || {
                while let Ok(Work::Item(delivery)) = verifier_rx.recv() {
                    let actions = verifier.on_message(&delivery.msg);
                    router.route(ComponentId::Verifier, actions);
                }
                pool_applied.store(
                    verifier.pool_applied_txns(),
                    std::sync::atomic::Ordering::Release,
                );
                // Dropping the verifier drains and joins the pool workers.
            }));
        }

        // Client driver (this thread).
        let mut workload_cfg = system.config.workload;
        workload_cfg.num_clients = num_clients;
        let mut workload = YcsbWorkload::new(workload_cfg, workload_seed);
        let mut clients: HashMap<ClientId, sbft_core::ClientRole> = system
            .clients
            .drain(..num_clients)
            .map(|c| (c.id(), c))
            .collect();

        for c in 0..num_clients as u32 {
            let id = ClientId(c);
            let txn = workload.next_transaction(id);
            let actions = clients.get_mut(&id).expect("client exists").submit(txn);
            router.route(ComponentId::Client(id), actions);
        }

        let mut report = ClusterReport::default();
        while report.committed + report.aborted < target_txns && start.elapsed() < deadline {
            match client_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(delivery) => {
                    let client_id = match &delivery.msg {
                        ProtocolMessage::Response(r) => r.txn.client,
                        ProtocolMessage::Abort(a) => a.txn.client,
                        _ => continue,
                    };
                    let Some(client) = clients.get_mut(&client_id) else {
                        continue;
                    };
                    let actions = client.on_message(&delivery.msg);
                    let mut completed = None;
                    for action in &actions {
                        if let Action::TxnCompleted { outcome, .. } = action {
                            completed = Some(*outcome);
                        }
                    }
                    match completed {
                        Some(TxnOutcome::Committed) => report.committed += 1,
                        Some(TxnOutcome::Aborted) => report.aborted += 1,
                        None => continue,
                    }
                    // Closed loop: issue the next request.
                    if report.committed + report.aborted < target_txns {
                        let txn = workload.next_transaction(client_id);
                        let actions = client.submit(txn);
                        router.route(ComponentId::Client(client_id), actions);
                    }
                }
                Err(_) => {
                    // Timed out waiting; keep going until the deadline.
                }
            }
        }
        report.elapsed = start.elapsed();

        // Every worker holds a Router clone (senders to every peer), so
        // channels never disconnect on their own: stop the loops
        // explicitly, then join.
        router.stop_all();
        drop(router);
        drop(clients);
        for handle in handles {
            let _ = handle.join();
        }
        report.pool_applied = pool_applied.load(std::sync::atomic::Ordering::Acquire);
        report
    }
}

/// The sequence number of the batch an ordering-protocol message carries,
/// if it carries one (PBFT `PREPREPARE` / CFT accept).
fn ordering_batch_seq(msg: &sbft_consensus::ConsensusMessage) -> Option<SeqNum> {
    match msg {
        sbft_consensus::ConsensusMessage::PrePrepare(p) => Some(p.seq),
        sbft_consensus::ConsensusMessage::CftAccept(a) => Some(a.seq),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_core::SystemBuilder;
    use sbft_types::SystemConfig;

    fn config() -> SystemConfig {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.workload.num_records = 1_000;
        cfg.workload.batch_size = 4;
        cfg.workload.num_clients = 8;
        cfg.regions = sbft_types::RegionSet::home_only();
        cfg
    }

    #[test]
    fn local_cluster_commits_transactions_over_threads() {
        let system = SystemBuilder::new(config()).clients(8).build();
        let report = LocalCluster::new(system)
            .clients(8)
            .target_txns(40)
            .deadline(Duration::from_secs(20))
            .run();
        assert!(
            report.committed >= 40,
            "committed only {} transactions",
            report.committed
        );
        assert!(report.throughput_tps() > 0.0);
    }

    #[test]
    fn report_throughput_handles_zero_elapsed() {
        let report = ClusterReport::default();
        assert_eq!(report.throughput_tps(), 0.0);
    }

    #[test]
    fn local_cluster_applies_batches_through_the_shard_pool() {
        // With more than one shard worker configured, the verifier's apply
        // stage must run on the ShardScheduler pool: every committed
        // transaction is applied by a pool worker, and the run still
        // commits its target (thread scaling itself needs a multi-core
        // host; correctness of the wiring does not).
        let mut cfg = config();
        cfg.sharding = sbft_types::ShardingConfig {
            num_shards: 8,
            workers: 4,
            ..sbft_types::ShardingConfig::default()
        };
        let system = SystemBuilder::new(cfg).clients(8).build();
        let report = LocalCluster::new(system)
            .clients(8)
            .target_txns(40)
            .deadline(Duration::from_secs(20))
            .run();
        assert!(
            report.committed >= 40,
            "committed only {} transactions",
            report.committed
        );
        assert!(
            report.pool_applied >= report.committed,
            "pool applied {} of {} committed",
            report.pool_applied,
            report.committed
        );
    }

    #[test]
    fn trace_sink_captures_the_cross_thread_lifecycle_edges() {
        let system = SystemBuilder::new(config()).clients(4).build();
        let sink = Arc::new(sbft_telemetry::MemorySink::new());
        let report = LocalCluster::new(system)
            .clients(4)
            .target_txns(12)
            .deadline(Duration::from_secs(20))
            .with_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .run();
        assert!(report.committed >= 12);
        let events = sink.events();
        let stages: std::collections::HashSet<Stage> = events.iter().map(|e| e.stage).collect();
        for stage in [
            Stage::BatchRelease,
            Stage::CommitQuorum,
            Stage::ExecuteSpawn,
            Stage::VerifyIngest,
            Stage::Respond,
        ] {
            assert!(stages.contains(&stage), "missing {stage:?} markers");
        }
        // Within one trace the markers must be time-ordered the way the
        // pipeline runs.
        let marks = sbft_telemetry::export::marks(&events);
        let complete = marks
            .values()
            .filter(|m| m.contains_key(&Stage::BatchRelease) && m.contains_key(&Stage::Respond))
            .count();
        assert!(complete > 0, "no trace carried release..respond markers");
        for stage_times in marks.values() {
            if let (Some(release), Some(respond)) = (
                stage_times.get(&Stage::BatchRelease),
                stage_times.get(&Stage::Respond),
            ) {
                assert!(release <= respond, "respond before batch release");
            }
        }
    }

    #[test]
    fn durable_cluster_commits_through_file_backed_wals() {
        // With durability on, every node writes a file-backed WAL under the
        // process-scoped temp directory; the fsync tax must not stop the
        // cluster from committing its target.
        let mut cfg = config();
        cfg.durability = sbft_types::DurabilityConfig::enabled();
        let system = SystemBuilder::new(cfg).clients(4).build();
        let report = LocalCluster::new(system)
            .clients(4)
            .target_txns(12)
            .deadline(Duration::from_secs(20))
            .run();
        assert!(
            report.committed >= 12,
            "committed only {} transactions",
            report.committed
        );
        let dir = std::env::temp_dir().join(format!("sbft-wal-{}", std::process::id()));
        assert!(dir.join("node-0.wal").exists(), "WAL file was not created");
    }

    #[test]
    fn default_single_worker_config_keeps_the_synchronous_apply_stage() {
        let system = SystemBuilder::new(config()).clients(4).build();
        let report = LocalCluster::new(system)
            .clients(4)
            .target_txns(12)
            .deadline(Duration::from_secs(20))
            .run();
        assert!(report.committed >= 12);
        assert_eq!(report.pool_applied, 0, "no pool configured");
    }
}
