//! Execution certificates.
//!
//! After the primary collects `2f_R + 1` signed `COMMIT` messages it builds
//! a certificate `C` — "a set of signatures of `2f_R + 1` distinct shim
//! nodes that proves these nodes agreed to order this request" (Figure 3,
//! line 8) — and ships it inside every `EXECUTE` message. Executors verify
//! `C` before executing, and echo it in their `VERIFY` messages so the
//! verifier can detect byzantine spawning (Section V-C).

use crate::hashing::U64Hasher;
use crate::keys::KeyStore;
use crate::signature::SimSigner;
use sbft_types::{
    ComponentId, Digest, NodeId, SbftError, SbftResult, SeqNum, Signature, ViewNumber,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The digest that shim nodes sign in their `COMMIT` messages: a
/// domain-separated hash binding the view, the sequence number and the
/// digest of the ordered batch.
#[must_use]
pub fn commit_digest(view: ViewNumber, seq: SeqNum, batch_digest: &Digest) -> Digest {
    let mut h = U64Hasher::new("sbft-commit");
    h.push(view.0);
    h.push(seq.0);
    h.push_digest(batch_digest);
    h.finish()
}

/// A certificate proving that a quorum of shim nodes committed a batch at a
/// given view and sequence number.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CommitCertificate {
    /// View in which the batch committed.
    pub view: ViewNumber,
    /// Sequence number assigned by the shim.
    pub seq: SeqNum,
    /// Digest of the ordered batch.
    pub batch_digest: Digest,
    /// `(node, signature)` pairs over [`commit_digest`].
    pub entries: Vec<(NodeId, Signature)>,
}

impl CommitCertificate {
    /// Builds a certificate from collected commit signatures.
    #[must_use]
    pub fn new(
        view: ViewNumber,
        seq: SeqNum,
        batch_digest: Digest,
        entries: Vec<(NodeId, Signature)>,
    ) -> Self {
        CommitCertificate {
            view,
            seq,
            batch_digest,
            entries,
        }
    }

    /// Number of distinct signers in the certificate.
    #[must_use]
    pub fn distinct_signers(&self) -> usize {
        self.entries
            .iter()
            .map(|(n, _)| *n)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Verifies the certificate: at least `quorum` distinct shim nodes,
    /// every signature valid over the commit digest, and every signer a
    /// member of the shim (`node.0 < n_r`).
    pub fn verify(&self, store: &KeyStore, quorum: usize, n_r: usize) -> SbftResult<()> {
        if self.distinct_signers() < quorum {
            return Err(SbftError::BadCertificate(format!(
                "certificate has {} distinct signers, quorum is {quorum}",
                self.distinct_signers()
            )));
        }
        let digest = commit_digest(self.view, self.seq, &self.batch_digest);
        let mut seen = BTreeSet::new();
        for (node, sig) in &self.entries {
            if node.0 as usize >= n_r {
                return Err(SbftError::BadCertificate(format!(
                    "signer {node} is not a member of the {n_r}-node shim"
                )));
            }
            if !seen.insert(*node) {
                // Duplicate entries are tolerated but only counted once;
                // skip re-verification.
                continue;
            }
            if !SimSigner::verify(store, ComponentId::Node(*node), &digest, sig) {
                return Err(SbftError::BadCertificate(format!(
                    "signature of {node} does not verify"
                )));
            }
        }
        Ok(())
    }

    /// Wire size in bytes: view + seq + digest + per-entry node id and
    /// 64-byte signature. With `2f_R + 1 = 3` signers (a 4-node shim) this
    /// is ~250 B, which together with the batch digest and commit message
    /// puts the `EXECUTE` message near the paper's reported 3320 B for the
    /// default configuration.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        8 + 8 + 32 + self.entries.len() * (4 + 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::digest_u64s;
    use sbft_types::Digest;

    fn make_cert(store: &KeyStore, signers: &[u32], view: u64, seq: u64) -> CommitCertificate {
        let batch_digest = digest_u64s("batch", &[seq]);
        let digest = commit_digest(ViewNumber(view), SeqNum(seq), &batch_digest);
        let entries = signers
            .iter()
            .map(|&n| {
                let kp = store.keypair_for(ComponentId::Node(NodeId(n)));
                (NodeId(n), SimSigner::sign(&kp, &digest))
            })
            .collect();
        CommitCertificate::new(ViewNumber(view), SeqNum(seq), batch_digest, entries)
    }

    #[test]
    fn valid_certificate_verifies() {
        let store = KeyStore::new(1);
        let cert = make_cert(&store, &[0, 1, 2], 0, 5);
        assert!(cert.verify(&store, 3, 4).is_ok());
    }

    #[test]
    fn too_few_signers_rejected() {
        let store = KeyStore::new(1);
        let cert = make_cert(&store, &[0, 1], 0, 5);
        let err = cert.verify(&store, 3, 4).unwrap_err();
        assert!(matches!(err, SbftError::BadCertificate(_)));
    }

    #[test]
    fn duplicate_signers_count_once() {
        let store = KeyStore::new(1);
        let mut cert = make_cert(&store, &[0, 1], 0, 5);
        let dup = cert.entries[0];
        cert.entries.push(dup);
        assert_eq!(cert.distinct_signers(), 2);
        assert!(cert.verify(&store, 3, 4).is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let store = KeyStore::new(1);
        let mut cert = make_cert(&store, &[0, 1, 2], 0, 5);
        cert.entries[1].1 .0[0] ^= 0xff;
        assert!(cert.verify(&store, 3, 4).is_err());
    }

    #[test]
    fn signer_outside_shim_rejected() {
        let store = KeyStore::new(1);
        let cert = make_cert(&store, &[0, 1, 7], 0, 5);
        assert!(cert.verify(&store, 3, 4).is_err());
        // But fine for a larger shim.
        assert!(cert.verify(&store, 3, 8).is_ok());
    }

    #[test]
    fn certificate_bound_to_view_seq_and_digest() {
        let store = KeyStore::new(1);
        let cert = make_cert(&store, &[0, 1, 2], 0, 5);
        let mut tampered = cert.clone();
        tampered.seq = SeqNum(6);
        assert!(tampered.verify(&store, 3, 4).is_err());
        let mut tampered = cert.clone();
        tampered.view = ViewNumber(1);
        assert!(tampered.verify(&store, 3, 4).is_err());
        let mut tampered = cert;
        tampered.batch_digest = Digest::ZERO;
        assert!(tampered.verify(&store, 3, 4).is_err());
    }

    #[test]
    fn wire_size_grows_with_quorum() {
        let store = KeyStore::new(1);
        let small = make_cert(&store, &[0, 1, 2], 0, 1);
        let large = make_cert(&store, &(0..21).collect::<Vec<_>>(), 0, 1);
        assert!(large.wire_size() > small.wire_size());
        assert_eq!(small.wire_size(), 48 + 3 * 68);
    }
}
