//! Threshold-signature aggregation.
//!
//! The paper's remark (Section IV-C): "by employing threshold signatures,
//! we can reduce the size of the certificate. Threshold signatures allow
//! combining `2f_R + 1` signatures into a single signature." This module
//! provides that optimisation: [`ThresholdAggregator`] combines the
//! individual commit signatures into one constant-size aggregate that the
//! executors and verifier can check against the registered public keys.
//! The `ablation_cert_size` bench compares full certificates against
//! aggregated ones.
//!
//! The aggregation is a simulation substitute for BLS-style schemes
//! (documented in `DESIGN.md`): the aggregate is the XOR of the individual
//! deterministic signatures, so verification recomputes each expected
//! signature from the trusted key store and checks the combination. The
//! protocol-visible properties — constant 64-byte size, binding to the
//! signer set and the message, and detection of any tampering — hold.

use crate::certificate::{commit_digest, CommitCertificate};
use crate::keys::KeyStore;
use crate::signature::SimSigner;
use sbft_types::{
    ComponentId, Digest, NodeId, SbftError, SbftResult, SeqNum, Signature, ViewNumber,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A constant-size aggregate of a quorum of commit signatures.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ThresholdSignature {
    /// View in which the batch committed.
    pub view: ViewNumber,
    /// Sequence number of the batch.
    pub seq: SeqNum,
    /// Digest of the ordered batch.
    pub batch_digest: Digest,
    /// The nodes whose signatures were aggregated (sorted, distinct).
    pub signers: Vec<NodeId>,
    /// The 64-byte aggregate signature.
    pub aggregate: Signature,
}

/// Combines and verifies threshold signatures.
pub struct ThresholdAggregator;

fn xor_into(acc: &mut [u8; 64], sig: &Signature) {
    for (a, b) in acc.iter_mut().zip(sig.0.iter()) {
        *a ^= b;
    }
}

impl ThresholdAggregator {
    /// Aggregates the signatures of a full certificate into a constant-size
    /// threshold signature. Duplicate signers are collapsed.
    #[must_use]
    pub fn aggregate(cert: &CommitCertificate) -> ThresholdSignature {
        let mut seen = BTreeSet::new();
        let mut acc = [0u8; 64];
        for (node, sig) in &cert.entries {
            if seen.insert(*node) {
                xor_into(&mut acc, sig);
            }
        }
        ThresholdSignature {
            view: cert.view,
            seq: cert.seq,
            batch_digest: cert.batch_digest,
            signers: seen.into_iter().collect(),
            aggregate: Signature(acc),
        }
    }

    /// Verifies a threshold signature: at least `quorum` distinct signers,
    /// all members of the `n_r`-node shim, and an aggregate matching the
    /// recomputed combination of their expected signatures.
    pub fn verify(
        ts: &ThresholdSignature,
        store: &KeyStore,
        quorum: usize,
        n_r: usize,
    ) -> SbftResult<()> {
        let distinct: BTreeSet<_> = ts.signers.iter().copied().collect();
        if distinct.len() < quorum {
            return Err(SbftError::BadCertificate(format!(
                "threshold signature has {} signers, quorum is {quorum}",
                distinct.len()
            )));
        }
        if let Some(bad) = distinct.iter().find(|n| n.0 as usize >= n_r) {
            return Err(SbftError::BadCertificate(format!(
                "signer {bad} is not a member of the {n_r}-node shim"
            )));
        }
        let digest = commit_digest(ts.view, ts.seq, &ts.batch_digest);
        let mut expected = [0u8; 64];
        for node in &distinct {
            let sig = SimSigner::sign(&store.keypair_for(ComponentId::Node(*node)), &digest);
            xor_into(&mut expected, &sig);
        }
        if expected == ts.aggregate.0 {
            Ok(())
        } else {
            Err(SbftError::BadCertificate(
                "aggregate signature does not match the claimed signer set".into(),
            ))
        }
    }

    /// Wire size of a threshold signature: fixed header plus one 64-byte
    /// aggregate plus a 4-byte identifier per signer (the signer bitmap).
    #[must_use]
    pub fn wire_size(ts: &ThresholdSignature) -> usize {
        8 + 8 + 32 + 64 + 4 * ts.signers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::digest_u64s;

    fn cert(store: &KeyStore, signers: &[u32]) -> CommitCertificate {
        let batch_digest = digest_u64s("batch", &[1]);
        let digest = commit_digest(ViewNumber(0), SeqNum(1), &batch_digest);
        let entries = signers
            .iter()
            .map(|&n| {
                let kp = store.keypair_for(ComponentId::Node(NodeId(n)));
                (NodeId(n), SimSigner::sign(&kp, &digest))
            })
            .collect();
        CommitCertificate::new(ViewNumber(0), SeqNum(1), batch_digest, entries)
    }

    #[test]
    fn aggregate_verifies_for_honest_quorum() {
        let store = KeyStore::new(3);
        let ts = ThresholdAggregator::aggregate(&cert(&store, &[0, 1, 2]));
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_ok());
    }

    #[test]
    fn too_few_signers_rejected() {
        let store = KeyStore::new(3);
        let ts = ThresholdAggregator::aggregate(&cert(&store, &[0, 1]));
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_err());
    }

    #[test]
    fn tampered_aggregate_rejected() {
        let store = KeyStore::new(3);
        let mut ts = ThresholdAggregator::aggregate(&cert(&store, &[0, 1, 2]));
        ts.aggregate.0[10] ^= 1;
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_err());
    }

    #[test]
    fn claimed_signer_not_in_aggregate_rejected() {
        let store = KeyStore::new(3);
        let mut ts = ThresholdAggregator::aggregate(&cert(&store, &[0, 1, 2]));
        // Claim node 3 also signed without folding in its signature.
        ts.signers.push(NodeId(3));
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_err());
    }

    #[test]
    fn duplicate_entries_do_not_cancel_out() {
        let store = KeyStore::new(3);
        let mut c = cert(&store, &[0, 1, 2]);
        // Duplicate node 2's entry; XORing it twice would cancel it if the
        // aggregator did not deduplicate.
        let dup = c.entries[2];
        c.entries.push(dup);
        let ts = ThresholdAggregator::aggregate(&c);
        assert_eq!(ts.signers.len(), 3);
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_ok());
    }

    #[test]
    fn threshold_signature_is_much_smaller_than_certificate() {
        let store = KeyStore::new(3);
        let signers: Vec<u32> = (0..21).collect();
        let full = cert(&store, &signers);
        let ts = ThresholdAggregator::aggregate(&full);
        assert!(ThresholdAggregator::wire_size(&ts) < full.wire_size() / 4);
    }

    #[test]
    fn signer_outside_shim_rejected() {
        let store = KeyStore::new(3);
        let ts = ThresholdAggregator::aggregate(&cert(&store, &[0, 1, 9]));
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 4).is_err());
        assert!(ThresholdAggregator::verify(&ts, &store, 3, 16).is_ok());
    }
}
