//! # sbft-crypto
//!
//! Cryptographic substrate for the ServerlessBFT serverless-edge
//! architecture.
//!
//! The paper (Section III) relies on:
//!
//! * **Digital signatures** `⟨m⟩_R` for `COMMIT`, `EXECUTE`, `VERIFY`,
//!   `RESPONSE` and client requests (CryptoPP in the original
//!   implementation),
//! * **MACs** for messages that do not need non-repudiation
//!   (`PREPREPARE`, `PREPARE`),
//! * a **collision-resistant hash** `H(·)` producing constant-size digests,
//! * **Diffie–Hellman** key exchange for establishing pairwise MAC secrets,
//! * optional **threshold signatures** to compress a `2f_R + 1` certificate
//!   into a single constant-size signature.
//!
//! This crate implements SHA-256 and HMAC-SHA256 from scratch (tested
//! against published vectors) and a deterministic keyed-hash signature
//! scheme ([`signature::SimSigner`]) as the substitution for CryptoPP
//! (documented in `DESIGN.md`): signing requires the private key, and
//! verification goes through the trusted [`keys::KeyStore`] established at
//! setup (the paper's public-key-certificate distribution). Byzantine
//! components are assumed unable to forge signatures or subvert the hash,
//! exactly as in the paper, so every certificate/quorum check in the
//! protocol is exercised for real.
//!
//! Two amortisation layers keep the hot paths cheap:
//!
//! * **Key-schedule caches** ([`provider`]): HMAC key schedules are
//!   derived once per identity (sender side in [`CryptoHandle`],
//!   verification side in [`CryptoProvider`]) instead of once per
//!   operation.
//! * **Batch signature aggregation** ([`aggregate`]): the individual
//!   client signatures of a consensus batch fold into one
//!   [`aggregate::AggregateSignature`]; the primary verifies one
//!   aggregate per batch, with a bisecting fallback that pinpoints
//!   offending transactions when the aggregate check fails.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregate;
pub mod certificate;
pub mod dh;
pub mod hashing;
pub mod hmac;
pub mod keys;
pub mod provider;
pub mod sha256;
pub mod signature;
pub mod threshold;

pub use aggregate::AggregateSignature;
pub use certificate::CommitCertificate;
pub use dh::DhKeyExchange;
pub use hashing::{digest_bytes, digest_concat, digest_u64s, U64Hasher};
pub use hmac::{hmac_sha256, HmacKey};
pub use keys::{KeyPair, KeyStore, PublicKey, SecretKey};
pub use provider::{CryptoHandle, CryptoProvider};
pub use sha256::Sha256;
pub use signature::SimSigner;
pub use threshold::{ThresholdAggregator, ThresholdSignature};
