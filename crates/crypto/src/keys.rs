//! Key material and the trusted key registry.
//!
//! The paper assumes public keys are distributed through public-key
//! certificates and that byzantine components can neither impersonate
//! honest components nor subvert cryptographic constructs (Section III).
//! [`KeyStore`] models that trusted setup: every component's key pair is
//! derived deterministically from a deployment-wide master seed, so any
//! component can obtain any other component's *public* key (and the
//! simulator can verify signatures without a heavyweight PKI). Secret keys
//! are only handed to a component through its own
//! [`crate::provider::CryptoHandle`].

use crate::hashing::digest_u64s;
use sbft_types::{ComponentId, SbftError, SbftResult};

/// A 32-byte secret signing key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) [u8; 32]);

/// A 32-byte public key, derived as `H("sbft-pk" ‖ secret)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey(pub [u8; 32]);

/// A secret/public key pair.
#[derive(Clone, Copy)]
pub struct KeyPair {
    /// The secret half; never leaves the owning component's handle.
    pub secret: SecretKey,
    /// The public half, distributed through the key store.
    pub public: PublicKey,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret key material.
        f.write_str("SecretKey(…)")
    }
}

impl KeyPair {
    /// Derives a key pair from a 32-byte seed.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let secret = SecretKey(seed);
        let public = PublicKey(*crate::hashing::digest_concat(&[b"sbft-pk", &seed]).as_bytes());
        KeyPair { secret, public }
    }

    /// Derives the reusable HMAC key schedule of the secret half.
    ///
    /// Every signature under this key pair is two HMACs under this
    /// schedule (see [`crate::signature::SimSigner`]); deriving it costs
    /// two SHA-256 compressions, so callers that sign or verify more than
    /// once should derive it once and cache it —
    /// [`crate::provider::CryptoHandle`] and
    /// [`crate::provider::CryptoProvider`] both do.
    #[must_use]
    pub fn signing_schedule(&self) -> crate::hmac::HmacKey {
        crate::hmac::HmacKey::new(&self.secret.0)
    }
}

/// Stable numeric encoding of a component identity used for key derivation.
fn component_code(c: ComponentId) -> [u64; 2] {
    match c {
        ComponentId::Client(id) => [1, u64::from(id.0)],
        ComponentId::Node(id) => [2, u64::from(id.0)],
        ComponentId::Executor(id) => [3, id.0],
        ComponentId::Verifier => [4, 0],
        ComponentId::Storage => [5, 0],
        ComponentId::Cloud => [6, 0],
    }
}

/// The trusted key registry (simulated PKI).
///
/// Key pairs and pairwise MAC secrets are derived deterministically from
/// `master_seed`, which plays the role of the out-of-band certificate
/// distribution plus Diffie–Hellman exchanges that the paper assumes have
/// already happened before the protocol starts.
#[derive(Clone, Debug)]
pub struct KeyStore {
    master_seed: u64,
}

impl KeyStore {
    /// Creates a key store for a deployment.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        KeyStore { master_seed }
    }

    /// The key pair of `component`. Only [`crate::provider::CryptoHandle`]
    /// should use the secret half.
    #[must_use]
    pub fn keypair_for(&self, component: ComponentId) -> KeyPair {
        let code = component_code(component);
        let seed = digest_u64s("sbft-keypair", &[self.master_seed, code[0], code[1]]);
        KeyPair::from_seed(*seed.as_bytes())
    }

    /// The public key of `component`.
    #[must_use]
    pub fn public_key_of(&self, component: ComponentId) -> PublicKey {
        self.keypair_for(component).public
    }

    /// The pairwise MAC key shared by components `a` and `b`, as would be
    /// established by a Diffie–Hellman exchange (order independent).
    #[must_use]
    pub fn mac_key(&self, a: ComponentId, b: ComponentId) -> [u8; 32] {
        let ca = component_code(a);
        let cb = component_code(b);
        let (lo, hi) = if ca <= cb { (ca, cb) } else { (cb, ca) };
        *digest_u64s(
            "sbft-mac-key",
            &[self.master_seed, lo[0], lo[1], hi[0], hi[1]],
        )
        .as_bytes()
    }

    /// Checks that a claimed public key matches the registered identity,
    /// the equivalent of validating a public-key certificate.
    pub fn check_identity(&self, component: ComponentId, claimed: &PublicKey) -> SbftResult<()> {
        if self.public_key_of(component) == *claimed {
            Ok(())
        } else {
            Err(SbftError::BadSignature(format!(
                "public key does not match registered identity of {component}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, ExecutorId, NodeId};

    #[test]
    fn key_derivation_is_deterministic() {
        let store = KeyStore::new(42);
        let a = store.keypair_for(ComponentId::Node(NodeId(1)));
        let b = store.keypair_for(ComponentId::Node(NodeId(1)));
        assert_eq!(a.public, b.public);
        assert_eq!(a.secret.0, b.secret.0);
    }

    #[test]
    fn distinct_components_get_distinct_keys() {
        let store = KeyStore::new(42);
        let ids = [
            ComponentId::Node(NodeId(0)),
            ComponentId::Node(NodeId(1)),
            ComponentId::Client(ClientId(0)),
            ComponentId::Client(ClientId(1)),
            ComponentId::Executor(ExecutorId(0)),
            ComponentId::Verifier,
            ComponentId::Storage,
        ];
        let mut seen = std::collections::HashSet::new();
        for id in ids {
            assert!(
                seen.insert(store.public_key_of(id).0),
                "duplicate key for {id}"
            );
        }
    }

    #[test]
    fn different_master_seeds_give_different_keys() {
        let a = KeyStore::new(1).public_key_of(ComponentId::Verifier);
        let b = KeyStore::new(2).public_key_of(ComponentId::Verifier);
        assert_ne!(a, b);
    }

    #[test]
    fn mac_keys_are_symmetric_and_pair_specific() {
        let store = KeyStore::new(7);
        let n0 = ComponentId::Node(NodeId(0));
        let n1 = ComponentId::Node(NodeId(1));
        let n2 = ComponentId::Node(NodeId(2));
        assert_eq!(store.mac_key(n0, n1), store.mac_key(n1, n0));
        assert_ne!(store.mac_key(n0, n1), store.mac_key(n0, n2));
    }

    #[test]
    fn check_identity_accepts_registered_and_rejects_forged() {
        let store = KeyStore::new(9);
        let node = ComponentId::Node(NodeId(3));
        let pk = store.public_key_of(node);
        assert!(store.check_identity(node, &pk).is_ok());
        let forged = PublicKey([0u8; 32]);
        assert!(store.check_identity(node, &forged).is_err());
    }

    #[test]
    fn secret_key_debug_does_not_leak() {
        let store = KeyStore::new(1);
        let kp = store.keypair_for(ComponentId::Verifier);
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(…)");
    }

    #[test]
    fn client_and_node_with_same_numeric_id_differ() {
        let store = KeyStore::new(5);
        assert_ne!(
            store.public_key_of(ComponentId::Node(NodeId(7))),
            store.public_key_of(ComponentId::Client(ClientId(7)))
        );
    }
}
