//! Diffie–Hellman key exchange used to establish pairwise MAC secrets.
//!
//! The paper: "For MACs, signer and verifier use a common key, which is
//! kept secret. We use Diffie–Hellman key exchange for securely sharing
//! secret keys" (Section III). This module implements classic modular
//! exponentiation Diffie–Hellman over a 61-bit safe-prime group. The group
//! is far too small to be secure in production — it is a documented
//! simulation substitute (see `DESIGN.md`) — but it exercises the real key
//! agreement flow: both parties derive the same shared secret from each
//! other's public contribution, and the derived secret seeds HMAC keys.

use crate::hashing::digest_u64s;

/// A 61-bit prime `p = 2^61 - 1` (a Mersenne prime) used as the modulus.
pub const DH_PRIME: u64 = (1u64 << 61) - 1;

/// The generator of the multiplicative group.
pub const DH_GENERATOR: u64 = 5;

/// One party's state in a Diffie–Hellman exchange.
#[derive(Clone, Debug)]
pub struct DhKeyExchange {
    private: u64,
    public: u64,
}

/// Modular multiplication avoiding 128-bit overflow issues.
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

impl DhKeyExchange {
    /// Creates a party from a private exponent. The exponent is reduced to
    /// a valid non-trivial value.
    #[must_use]
    pub fn new(private_seed: u64) -> Self {
        // Avoid the trivial exponents 0 and 1.
        let private = (private_seed % (DH_PRIME - 3)) + 2;
        let public = pow_mod(DH_GENERATOR, private, DH_PRIME);
        DhKeyExchange { private, public }
    }

    /// The public contribution `g^a mod p` to send to the peer.
    #[must_use]
    pub fn public_value(&self) -> u64 {
        self.public
    }

    /// Computes the shared secret from the peer's public contribution.
    #[must_use]
    pub fn shared_secret(&self, peer_public: u64) -> u64 {
        pow_mod(peer_public, self.private, DH_PRIME)
    }

    /// Derives a 32-byte MAC key from the shared secret, binding it to the
    /// (unordered) pair of participant identifiers so each pair of
    /// components gets a distinct key even if secrets collide.
    #[must_use]
    pub fn derive_mac_key(&self, peer_public: u64, id_a: u64, id_b: u64) -> [u8; 32] {
        let secret = self.shared_secret(peer_public);
        let (lo, hi) = if id_a <= id_b {
            (id_a, id_b)
        } else {
            (id_b, id_a)
        };
        *digest_u64s("dh-mac-key", &[secret, lo, hi]).as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_parties_derive_the_same_secret() {
        let alice = DhKeyExchange::new(0x1234_5678_9abc_def0);
        let bob = DhKeyExchange::new(0x0fed_cba9_8765_4321);
        let s1 = alice.shared_secret(bob.public_value());
        let s2 = bob.shared_secret(alice.public_value());
        assert_eq!(s1, s2);
        assert_ne!(s1, 0);
    }

    #[test]
    fn different_peers_give_different_secrets() {
        let alice = DhKeyExchange::new(11);
        let bob = DhKeyExchange::new(22);
        let carol = DhKeyExchange::new(33);
        assert_ne!(
            alice.shared_secret(bob.public_value()),
            alice.shared_secret(carol.public_value())
        );
    }

    #[test]
    fn derived_mac_keys_match_and_are_order_independent() {
        let alice = DhKeyExchange::new(7);
        let bob = DhKeyExchange::new(13);
        let k1 = alice.derive_mac_key(bob.public_value(), 1, 2);
        let k2 = bob.derive_mac_key(alice.public_value(), 2, 1);
        assert_eq!(k1, k2);
    }

    #[test]
    fn trivial_seeds_avoid_degenerate_exponents() {
        for seed in [0u64, 1, 2] {
            let party = DhKeyExchange::new(seed);
            assert_ne!(party.public_value(), 1, "seed {seed} produced g^0");
        }
    }

    #[test]
    fn pow_mod_matches_naive_small_cases() {
        for base in 1..20u64 {
            for exp in 0..10u64 {
                let mut naive = 1u64;
                for _ in 0..exp {
                    naive = naive * base % 1_000_003;
                }
                assert_eq!(pow_mod(base, exp, 1_000_003), naive);
            }
        }
    }

    #[test]
    fn generator_has_large_order() {
        // The first few powers of g must all be distinct (sanity check that
        // the group is not collapsing).
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = mul_mod(x, DH_GENERATOR, DH_PRIME);
            assert!(seen.insert(x));
        }
    }
}
