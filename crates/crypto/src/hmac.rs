//! HMAC-SHA256 (RFC 2104), used for message authentication codes.
//!
//! The paper uses MACs for the `PREPREPARE` and `PREPARE` phases because
//! they are cheaper than digital signatures and non-repudiation is not
//! needed there; pairwise secret keys are established with Diffie–Hellman
//! (see [`crate::dh`]).

use crate::sha256::Sha256;
use sbft_types::MacTag;

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A reusable HMAC-SHA256 key schedule.
///
/// The two padded-key blocks (`key ⊕ ipad`, `key ⊕ opad`) are compressed
/// once at construction; every subsequent MAC clones the precomputed
/// states instead of re-deriving them, saving two compressions and all
/// key-handling per message. The simulated signature scheme signs two
/// related messages under the same key per signature, so it keeps one
/// `HmacKey` per operation (see [`crate::signature::SimSigner`]).
#[derive(Clone)]
pub struct HmacKey {
    /// Hasher state after absorbing `key ⊕ ipad`.
    inner: Sha256,
    /// Hasher state after absorbing `key ⊕ opad`.
    outer: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-schedule material.
        f.write_str("HmacKey(…)")
    }
}

impl HmacKey {
    /// Derives the key schedule from a raw key.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than the block size are hashed first.
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let hashed = Sha256::digest(key);
            key_block[..32].copy_from_slice(hashed.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner_pad = [0u8; BLOCK_SIZE];
        let mut outer_pad = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            inner_pad[i] = key_block[i] ^ IPAD;
            outer_pad[i] = key_block[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_pad);
        let mut outer = Sha256::new();
        outer.update(&outer_pad);
        HmacKey { inner, outer }
    }

    /// Computes the MAC of one message.
    #[must_use]
    pub fn mac(&self, message: &[u8]) -> MacTag {
        self.mac_parts(&[message])
    }

    /// Computes the MAC of the concatenation of `parts` without copying
    /// them into one buffer.
    #[must_use]
    pub fn mac_parts(&self, parts: &[&[u8]]) -> MacTag {
        let mut inner = self.inner.clone();
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();

        let mut outer = self.outer.clone();
        outer.update(inner_digest.as_bytes());
        MacTag(*outer.finalize().as_bytes())
    }

    /// Verifies a MAC tag in (logically) constant time, reusing this key
    /// schedule — the amortised counterpart of [`verify_hmac`], which
    /// re-derives the schedule on every call.
    #[must_use]
    pub fn verify(&self, message: &[u8], tag: &MacTag) -> bool {
        let expected = self.mac(message);
        let mut diff = 0u8;
        for (a, b) in expected.0.iter().zip(tag.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// Computes `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> MacTag {
    HmacKey::new(key).mac(message)
}

/// Verifies an HMAC tag in (logically) constant time.
#[must_use]
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &MacTag) -> bool {
    HmacKey::new(key).verify(message, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &MacTag) -> String {
        tag.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_correct_and_rejects_tampered() {
        let tag = hmac_sha256(b"secret", b"message");
        assert!(verify_hmac(b"secret", b"message", &tag));
        assert!(!verify_hmac(b"secret", b"messagE", &tag));
        assert!(!verify_hmac(b"Secret", b"message", &tag));
        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!verify_hmac(b"secret", b"message", &bad));
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn schedule_verify_matches_one_shot_verify() {
        let key = HmacKey::new(b"secret");
        let tag = key.mac(b"message");
        assert!(key.verify(b"message", &tag));
        assert!(!key.verify(b"messagE", &tag));
        let mut bad = tag;
        bad.0[31] ^= 1;
        assert!(!key.verify(b"message", &bad));
    }

    #[test]
    fn reusable_key_matches_one_shot_and_concat() {
        let key = HmacKey::new(b"secret");
        assert_eq!(key.mac(b"message"), hmac_sha256(b"secret", b"message"));
        // Split parts hash identically to the concatenated message.
        assert_eq!(
            key.mac_parts(&[b"mess", b"age"]),
            hmac_sha256(b"secret", b"message")
        );
        // The schedule is reusable across messages.
        assert_eq!(key.mac(b"other"), hmac_sha256(b"secret", b"other"));
    }
}
