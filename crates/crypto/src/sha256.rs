//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! This is the collision-resistant hash function `H(·)` of the paper,
//! used for request digests `Δ = H(m)`, public-key derivation in the
//! simulated signature scheme, HMAC, and threshold-signature aggregation.
//! The implementation is the straightforward 64-round compression function.
//! Two properties matter for the commit hot path:
//!
//! * full 64-byte input blocks are compressed **in place** — they are
//!   never staged through the internal buffer, so bulk hashing copies no
//!   bytes beyond the message schedule;
//! * a hasher can be [`reset`](Sha256::reset) and reused, which the HMAC
//!   layer exploits to precompute key schedules
//!   (see [`crate::hmac::HmacKey`]).

use sbft_types::Digest;

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first eight primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Resets the hasher to its initial state so it can be reused without
    /// constructing a new value.
    pub fn reset(&mut self) {
        self.state = H0;
        self.buffer_len = 0;
        self.total_len = 0;
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                Self::compress(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }

        // Fast path: compress full blocks directly from the input, without
        // staging them through the internal buffer.
        let mut blocks = input.chunks_exact(64);
        for block in blocks.by_ref() {
            let block: &[u8; 64] = block.try_into().expect("64-byte chunk");
            Self::compress(&mut self.state, block);
        }
        let tail = blocks.remainder();

        // Stash the tail.
        if !tail.is_empty() {
            self.buffer[..tail.len()].copy_from_slice(tail);
            self.buffer_len = tail.len();
        }
    }

    /// Finalizes the hash and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        self.finalize_reset()
    }

    /// Finalizes the hash, returns the 32-byte digest and resets the
    /// hasher so it can be reused for the next message.
    pub fn finalize_reset(&mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Appending the length must not be counted in total_len; compress
        // the final block manually.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        Self::compress(&mut self.state, &self.buffer);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        self.reset();
        Digest::from_bytes(out)
    }

    /// Convenience one-shot hash.
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// The FIPS 180-4 compression function. A free-standing associated
    /// function (rather than `&mut self`) so callers can compress the
    /// internal buffer in place while mutably borrowing only the state.
    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST test vectors.
    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        // Feed in irregular chunk sizes to exercise buffering paths.
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100, 997] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn reset_and_finalize_reset_allow_reuse() {
        let mut h = Sha256::new();
        h.update(b"first message");
        let first = h.finalize_reset();
        assert_eq!(first, Sha256::digest(b"first message"));
        // The same hasher value now produces a fresh, independent digest.
        h.update(b"abc");
        assert_eq!(h.finalize_reset(), Sha256::digest(b"abc"));
        // An explicit reset discards partial input.
        h.update(b"garbage");
        h.reset();
        h.update(b"abc");
        assert_eq!(h.finalize(), Sha256::digest(b"abc"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha256::digest(b"hello"), Sha256::digest(b"hellp"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }

    #[test]
    fn length_extension_boundaries() {
        // Inputs near the 55/56/64-byte padding boundaries.
        for len in 54..=66usize {
            let data = vec![0x5au8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
