//! The per-deployment crypto provider and per-component handles.
//!
//! A [`CryptoProvider`] is created once per deployment from a master seed
//! and shared (via `Arc`) by every simulated component. Each component gets
//! a [`CryptoHandle`] bound to its own identity: the handle can sign and
//! MAC only as that identity (mirroring "byzantine components cannot
//! impersonate honest components") but can verify messages from anyone.
//!
//! # Key-schedule caches
//!
//! Every HMAC-based operation (signatures are two HMACs, MACs are one)
//! starts from a key schedule whose derivation costs two SHA-256
//! compressions plus the key-material hashing. Identities are fixed for
//! the lifetime of a deployment, so both layers memoize the schedules:
//!
//! * a [`CryptoHandle`] lazily derives **its own** signing schedule and
//!   broadcast-MAC schedule once (`OnceLock`, so clones taken afterwards
//!   carry the filled cache, like the digest memos on batches), and keeps
//!   one pairwise-channel schedule per peer it talks to;
//! * the shared [`CryptoProvider`] caches **everyone's** signing and
//!   group-MAC schedules on the verification side, which is what makes
//!   the aggregate batch check (one fold-and-compare per batch over
//!   cached-schedule expected signatures) cheap.

use crate::aggregate::{bisect_mismatches, AggregateSignature};
use crate::hmac::HmacKey;
use crate::keys::{KeyPair, KeyStore, PublicKey};
use crate::signature::SimSigner;
use sbft_types::{ComponentId, Digest, MacTag, Signature};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Deployment-wide cryptographic material plus the verification-side
/// key-schedule caches.
#[derive(Debug)]
pub struct CryptoProvider {
    store: KeyStore,
    /// Per-identity signing schedules, filled on first verification of a
    /// signature from that identity.
    sign_schedules: RwLock<HashMap<ComponentId, HmacKey>>,
    /// Per-sender group (broadcast) MAC schedules.
    group_schedules: RwLock<HashMap<ComponentId, HmacKey>>,
}

impl Clone for CryptoProvider {
    fn clone(&self) -> Self {
        // The caches are derived state; a clone starts cold.
        CryptoProvider::with_store(self.store.clone())
    }
}

/// A component-scoped handle to the deployment's cryptographic material.
#[derive(Clone)]
pub struct CryptoHandle {
    me: ComponentId,
    keypair: KeyPair,
    provider: Arc<CryptoProvider>,
    /// This identity's signing schedule (filled on first signature; clones
    /// taken afterwards carry it).
    sign_schedule: OnceLock<HmacKey>,
    /// This identity's group-broadcast MAC schedule.
    broadcast_schedule: OnceLock<HmacKey>,
    /// Pairwise-channel MAC schedules per peer, shared across clones of
    /// this handle.
    peer_schedules: Arc<RwLock<HashMap<ComponentId, HmacKey>>>,
}

impl CryptoProvider {
    /// Creates the provider for a deployment.
    #[must_use]
    pub fn new(master_seed: u64) -> Arc<Self> {
        Arc::new(Self::with_store(KeyStore::new(master_seed)))
    }

    fn with_store(store: KeyStore) -> Self {
        CryptoProvider {
            store,
            sign_schedules: RwLock::new(HashMap::new()),
            group_schedules: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying trusted key registry.
    #[must_use]
    pub fn key_store(&self) -> &KeyStore {
        &self.store
    }

    /// Creates the handle for `component`.
    #[must_use]
    pub fn handle(self: &Arc<Self>, component: ComponentId) -> CryptoHandle {
        CryptoHandle {
            me: component,
            keypair: self.store.keypair_for(component),
            provider: Arc::clone(self),
            sign_schedule: OnceLock::new(),
            broadcast_schedule: OnceLock::new(),
            peer_schedules: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// The cached signing schedule of `component` (derived on first use).
    fn signing_schedule_of(&self, component: ComponentId) -> HmacKey {
        if let Some(schedule) = self
            .sign_schedules
            .read()
            .expect("schedule cache")
            .get(&component)
        {
            return schedule.clone();
        }
        let schedule = self.store.keypair_for(component).signing_schedule();
        self.sign_schedules
            .write()
            .expect("schedule cache")
            .entry(component)
            .or_insert(schedule)
            .clone()
    }

    /// The cached group-broadcast MAC schedule of `sender`.
    fn group_schedule_of(&self, sender: ComponentId) -> HmacKey {
        if let Some(schedule) = self
            .group_schedules
            .read()
            .expect("schedule cache")
            .get(&sender)
        {
            return schedule.clone();
        }
        let schedule = HmacKey::new(&self.store.mac_key(sender, sender));
        self.group_schedules
            .write()
            .expect("schedule cache")
            .entry(sender)
            .or_insert(schedule)
            .clone()
    }

    /// Number of signing schedules currently cached (tests and memory
    /// accounting).
    #[must_use]
    pub fn cached_schedules(&self) -> usize {
        self.sign_schedules.read().expect("schedule cache").len()
    }

    /// Verifies a digital signature claimed to be from `signer`.
    #[must_use]
    pub fn verify(&self, signer: ComponentId, digest: &Digest, sig: &Signature) -> bool {
        SimSigner::verify_with_schedule(&self.signing_schedule_of(signer), digest, sig)
    }

    /// The signature `signer` would produce over `digest` (the expected
    /// value recomputed during verification), from the cached schedule.
    #[must_use]
    pub fn expected_signature(&self, signer: ComponentId, digest: &Digest) -> Signature {
        SimSigner::sign_with_schedule(&self.signing_schedule_of(signer), digest)
    }

    /// Verifies an [`AggregateSignature`] over a batch of
    /// `(signer, digest)` claims in **one** comparison: the expected
    /// per-claim signatures are recomputed from cached schedules, folded,
    /// and compared against the aggregate. Returns `true` exactly when
    /// every individual signature folded into `aggregate` was valid (see
    /// the [`crate::aggregate`] module docs for the modeling caveat).
    #[must_use]
    pub fn verify_aggregate(
        &self,
        claims: &[(ComponentId, Digest)],
        aggregate: &AggregateSignature,
    ) -> bool {
        let mut expected = AggregateSignature::identity();
        for (signer, digest) in claims {
            expected.fold(&self.expected_signature(*signer, digest));
        }
        expected == *aggregate
    }

    /// The bisecting fallback for a failed aggregate check: recomputes the
    /// expected signatures once, then locates the offending claims by
    /// sub-aggregate bisection. Returns the indices (in `claims` order)
    /// whose signatures do not verify.
    #[must_use]
    pub fn locate_invalid_signatures(
        &self,
        claims: &[(ComponentId, Digest, Signature)],
    ) -> Vec<usize> {
        let expected: Vec<Signature> = claims
            .iter()
            .map(|(signer, digest, _)| self.expected_signature(*signer, digest))
            .collect();
        let provided: Vec<Signature> = claims.iter().map(|(_, _, sig)| *sig).collect();
        bisect_mismatches(&expected, &provided)
    }
}

impl CryptoHandle {
    /// The identity this handle signs as.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.me
    }

    /// This component's public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// This identity's signing schedule, derived once per handle lineage.
    fn sign_schedule(&self) -> &HmacKey {
        self.sign_schedule
            .get_or_init(|| self.keypair.signing_schedule())
    }

    /// The pairwise-channel MAC schedule shared with `peer` (symmetric, so
    /// it serves both [`Self::mac_for`] and [`Self::verify_mac`]).
    fn peer_schedule(&self, peer: ComponentId) -> HmacKey {
        if let Some(schedule) = self
            .peer_schedules
            .read()
            .expect("peer schedule cache")
            .get(&peer)
        {
            return schedule.clone();
        }
        let schedule = HmacKey::new(&self.provider.store.mac_key(self.me, peer));
        self.peer_schedules
            .write()
            .expect("peer schedule cache")
            .entry(peer)
            .or_insert(schedule)
            .clone()
    }

    /// Whether this handle has derived its signing schedule yet (tests).
    #[must_use]
    pub fn sign_schedule_cached(&self) -> bool {
        self.sign_schedule.get().is_some()
    }

    /// Signs a digest with this component's secret key (digital signature,
    /// provides non-repudiation). The key schedule is derived on the first
    /// signature and reused for every signature this handle — and every
    /// clone taken afterwards — ever makes.
    #[must_use]
    pub fn sign(&self, digest: &Digest) -> Signature {
        SimSigner::sign_with_schedule(self.sign_schedule(), digest)
    }

    /// Verifies a digital signature from `signer` over `digest`.
    #[must_use]
    pub fn verify(&self, signer: ComponentId, digest: &Digest, sig: &Signature) -> bool {
        self.provider.verify(signer, digest, sig)
    }

    /// Computes a MAC over `digest` for the channel between this component
    /// and `to`, using the pairwise secret established at setup.
    #[must_use]
    pub fn mac_for(&self, to: ComponentId, digest: &Digest) -> MacTag {
        self.peer_schedule(to).mac(digest.as_bytes())
    }

    /// Verifies a MAC received from `from` over `digest`.
    #[must_use]
    pub fn verify_mac(&self, from: ComponentId, digest: &Digest, tag: &MacTag) -> bool {
        self.peer_schedule(from).verify(digest.as_bytes(), tag)
    }

    /// Computes a MAC over `digest` for a broadcast to the whole group.
    ///
    /// PBFT broadcasts carry an *authenticator* — one MAC per receiver. To
    /// avoid shipping `n` MACs per simulated message we model the
    /// authenticator with a per-sender group key (the sender's self-channel
    /// key): the wire-size model still charges for the full authenticator,
    /// and verification still binds the message to the claimed sender.
    #[must_use]
    pub fn broadcast_mac(&self, digest: &Digest) -> MacTag {
        self.broadcast_schedule
            .get_or_init(|| HmacKey::new(&self.provider.store.mac_key(self.me, self.me)))
            .mac(digest.as_bytes())
    }

    /// Verifies a broadcast MAC claimed to come from `from`.
    #[must_use]
    pub fn verify_broadcast_mac(&self, from: ComponentId, digest: &Digest, tag: &MacTag) -> bool {
        self.provider
            .group_schedule_of(from)
            .verify(digest.as_bytes(), tag)
    }

    /// Access to the shared provider (for certificate verification).
    #[must_use]
    pub fn provider(&self) -> &Arc<CryptoProvider> {
        &self.provider
    }
}

impl std::fmt::Debug for CryptoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CryptoHandle({})", self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::digest_u64s;
    use crate::hmac::hmac_sha256;
    use sbft_types::{ClientId, NodeId};

    fn digest(n: u64) -> Digest {
        digest_u64s("provider-test", &[n])
    }

    #[test]
    fn handles_sign_as_their_own_identity() {
        let provider = CryptoProvider::new(99);
        let node = provider.handle(ComponentId::Node(NodeId(0)));
        let verifier = provider.handle(ComponentId::Verifier);

        let sig = node.sign(&digest(1));
        assert!(verifier.verify(ComponentId::Node(NodeId(0)), &digest(1), &sig));
        assert!(!verifier.verify(ComponentId::Node(NodeId(1)), &digest(1), &sig));
    }

    #[test]
    fn macs_work_between_the_right_pair_only() {
        let provider = CryptoProvider::new(99);
        let a = provider.handle(ComponentId::Node(NodeId(0)));
        let b = provider.handle(ComponentId::Node(NodeId(1)));
        let c = provider.handle(ComponentId::Node(NodeId(2)));

        let tag = a.mac_for(b.id(), &digest(7));
        assert!(b.verify_mac(a.id(), &digest(7), &tag));
        assert!(!b.verify_mac(a.id(), &digest(8), &tag));
        // A MAC for the (a, b) channel does not verify on the (a, c) channel.
        assert!(!c.verify_mac(a.id(), &digest(7), &tag));
    }

    #[test]
    fn client_and_node_handles_have_distinct_keys() {
        let provider = CryptoProvider::new(5);
        let n = provider.handle(ComponentId::Node(NodeId(4)));
        let c = provider.handle(ComponentId::Client(ClientId(4)));
        assert_ne!(n.public_key(), c.public_key());
    }

    #[test]
    fn provider_verify_matches_handle_verify() {
        let provider = CryptoProvider::new(5);
        let n = provider.handle(ComponentId::Node(NodeId(1)));
        let sig = n.sign(&digest(3));
        assert!(provider.verify(n.id(), &digest(3), &sig));
    }

    #[test]
    fn cached_schedules_produce_identical_results_to_fresh_derivation() {
        // Every cached path must be bit-identical to the one-shot path it
        // amortises, across repeated calls (cold cache, then warm cache).
        let provider = CryptoProvider::new(31);
        let a = provider.handle(ComponentId::Node(NodeId(0)));
        let b = provider.handle(ComponentId::Node(NodeId(1)));
        for round in 0..2u64 {
            let d = digest(round);
            // Signature: handle cache == SimSigner fresh derivation.
            assert_eq!(
                a.sign(&d),
                SimSigner::sign(&provider.key_store().keypair_for(a.id()), &d)
            );
            // Pairwise MAC: peer cache == raw keyed one-shot HMAC.
            let raw_key = provider.key_store().mac_key(a.id(), b.id());
            assert_eq!(a.mac_for(b.id(), &d), hmac_sha256(&raw_key, d.as_bytes()));
            // Broadcast MAC: sender cache == receiver-side verification.
            let tag = a.broadcast_mac(&d);
            assert!(b.verify_broadcast_mac(a.id(), &d, &tag));
            assert!(!b.verify_broadcast_mac(b.id(), &d, &tag));
        }
        assert!(a.sign_schedule_cached());
    }

    #[test]
    fn clones_carry_the_filled_sign_schedule() {
        let provider = CryptoProvider::new(8);
        let handle = provider.handle(ComponentId::Verifier);
        assert!(!handle.sign_schedule_cached());
        let sig = handle.sign(&digest(1));
        let clone = handle.clone();
        assert!(clone.sign_schedule_cached(), "clone carries the schedule");
        assert_eq!(clone.sign(&digest(1)), sig);
    }

    #[test]
    fn aggregate_accepts_all_valid_and_rejects_any_corruption() {
        let provider = CryptoProvider::new(77);
        let claims: Vec<(ComponentId, Digest, Signature)> = (0..10u32)
            .map(|i| {
                let id = ComponentId::Client(ClientId(i));
                let d = digest(u64::from(i));
                let sig = provider.handle(id).sign(&d);
                (id, d, sig)
            })
            .collect();
        let pairs: Vec<(ComponentId, Digest)> = claims.iter().map(|(c, d, _)| (*c, *d)).collect();
        let agg = AggregateSignature::from_signatures(claims.iter().map(|(_, _, s)| s));
        assert!(provider.verify_aggregate(&pairs, &agg));
        assert!(provider.locate_invalid_signatures(&claims).is_empty());

        // One corrupted signature flips the aggregate and is pinpointed.
        let mut bad = claims.clone();
        bad[6].2 .0[0] ^= 0x01;
        let bad_agg = AggregateSignature::from_signatures(bad.iter().map(|(_, _, s)| s));
        assert!(!provider.verify_aggregate(&pairs, &bad_agg));
        assert_eq!(provider.locate_invalid_signatures(&bad), vec![6]);

        // A wrong digest (signature over something else) is also caught.
        let mut resigned = claims.clone();
        resigned[2].2 = provider.handle(resigned[2].0).sign(&digest(999));
        let resigned_agg = AggregateSignature::from_signatures(resigned.iter().map(|(_, _, s)| s));
        assert!(!provider.verify_aggregate(&pairs, &resigned_agg));
        assert_eq!(provider.locate_invalid_signatures(&resigned), vec![2]);
        assert!(provider.cached_schedules() >= 10);
    }

    #[test]
    fn empty_aggregate_is_the_identity() {
        let provider = CryptoProvider::new(3);
        assert!(provider.verify_aggregate(&[], &AggregateSignature::identity()));
    }
}
