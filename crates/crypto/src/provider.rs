//! The per-deployment crypto provider and per-component handles.
//!
//! A [`CryptoProvider`] is created once per deployment from a master seed
//! and shared (via `Arc`) by every simulated component. Each component gets
//! a [`CryptoHandle`] bound to its own identity: the handle can sign and
//! MAC only as that identity (mirroring "byzantine components cannot
//! impersonate honest components") but can verify messages from anyone.

use crate::hmac::{hmac_sha256, verify_hmac};
use crate::keys::{KeyPair, KeyStore, PublicKey};
use crate::signature::SimSigner;
use sbft_types::{ComponentId, Digest, MacTag, Signature};
use std::sync::Arc;

/// Deployment-wide cryptographic material.
#[derive(Clone, Debug)]
pub struct CryptoProvider {
    store: KeyStore,
}

/// A component-scoped handle to the deployment's cryptographic material.
#[derive(Clone)]
pub struct CryptoHandle {
    me: ComponentId,
    keypair: KeyPair,
    provider: Arc<CryptoProvider>,
}

impl CryptoProvider {
    /// Creates the provider for a deployment.
    #[must_use]
    pub fn new(master_seed: u64) -> Arc<Self> {
        Arc::new(CryptoProvider {
            store: KeyStore::new(master_seed),
        })
    }

    /// The underlying trusted key registry.
    #[must_use]
    pub fn key_store(&self) -> &KeyStore {
        &self.store
    }

    /// Creates the handle for `component`.
    #[must_use]
    pub fn handle(self: &Arc<Self>, component: ComponentId) -> CryptoHandle {
        CryptoHandle {
            me: component,
            keypair: self.store.keypair_for(component),
            provider: Arc::clone(self),
        }
    }

    /// Verifies a digital signature claimed to be from `signer`.
    #[must_use]
    pub fn verify(&self, signer: ComponentId, digest: &Digest, sig: &Signature) -> bool {
        SimSigner::verify(&self.store, signer, digest, sig)
    }
}

impl CryptoHandle {
    /// The identity this handle signs as.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.me
    }

    /// This component's public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Signs a digest with this component's secret key (digital signature,
    /// provides non-repudiation).
    #[must_use]
    pub fn sign(&self, digest: &Digest) -> Signature {
        SimSigner::sign(&self.keypair, digest)
    }

    /// Verifies a digital signature from `signer` over `digest`.
    #[must_use]
    pub fn verify(&self, signer: ComponentId, digest: &Digest, sig: &Signature) -> bool {
        self.provider.verify(signer, digest, sig)
    }

    /// Computes a MAC over `digest` for the channel between this component
    /// and `to`, using the pairwise secret established at setup.
    #[must_use]
    pub fn mac_for(&self, to: ComponentId, digest: &Digest) -> MacTag {
        let key = self.provider.store.mac_key(self.me, to);
        hmac_sha256(&key, digest.as_bytes())
    }

    /// Verifies a MAC received from `from` over `digest`.
    #[must_use]
    pub fn verify_mac(&self, from: ComponentId, digest: &Digest, tag: &MacTag) -> bool {
        let key = self.provider.store.mac_key(self.me, from);
        verify_hmac(&key, digest.as_bytes(), tag)
    }

    /// Computes a MAC over `digest` for a broadcast to the whole group.
    ///
    /// PBFT broadcasts carry an *authenticator* — one MAC per receiver. To
    /// avoid shipping `n` MACs per simulated message we model the
    /// authenticator with a per-sender group key (the sender's self-channel
    /// key): the wire-size model still charges for the full authenticator,
    /// and verification still binds the message to the claimed sender.
    #[must_use]
    pub fn broadcast_mac(&self, digest: &Digest) -> MacTag {
        let key = self.provider.store.mac_key(self.me, self.me);
        hmac_sha256(&key, digest.as_bytes())
    }

    /// Verifies a broadcast MAC claimed to come from `from`.
    #[must_use]
    pub fn verify_broadcast_mac(&self, from: ComponentId, digest: &Digest, tag: &MacTag) -> bool {
        let key = self.provider.store.mac_key(from, from);
        verify_hmac(&key, digest.as_bytes(), tag)
    }

    /// Access to the shared provider (for certificate verification).
    #[must_use]
    pub fn provider(&self) -> &Arc<CryptoProvider> {
        &self.provider
    }
}

impl std::fmt::Debug for CryptoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CryptoHandle({})", self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::digest_u64s;
    use sbft_types::{ClientId, NodeId};

    fn digest(n: u64) -> Digest {
        digest_u64s("provider-test", &[n])
    }

    #[test]
    fn handles_sign_as_their_own_identity() {
        let provider = CryptoProvider::new(99);
        let node = provider.handle(ComponentId::Node(NodeId(0)));
        let verifier = provider.handle(ComponentId::Verifier);

        let sig = node.sign(&digest(1));
        assert!(verifier.verify(ComponentId::Node(NodeId(0)), &digest(1), &sig));
        assert!(!verifier.verify(ComponentId::Node(NodeId(1)), &digest(1), &sig));
    }

    #[test]
    fn macs_work_between_the_right_pair_only() {
        let provider = CryptoProvider::new(99);
        let a = provider.handle(ComponentId::Node(NodeId(0)));
        let b = provider.handle(ComponentId::Node(NodeId(1)));
        let c = provider.handle(ComponentId::Node(NodeId(2)));

        let tag = a.mac_for(b.id(), &digest(7));
        assert!(b.verify_mac(a.id(), &digest(7), &tag));
        assert!(!b.verify_mac(a.id(), &digest(8), &tag));
        // A MAC for the (a, b) channel does not verify on the (a, c) channel.
        assert!(!c.verify_mac(a.id(), &digest(7), &tag));
    }

    #[test]
    fn client_and_node_handles_have_distinct_keys() {
        let provider = CryptoProvider::new(5);
        let n = provider.handle(ComponentId::Node(NodeId(4)));
        let c = provider.handle(ComponentId::Client(ClientId(4)));
        assert_ne!(n.public_key(), c.public_key());
    }

    #[test]
    fn provider_verify_matches_handle_verify() {
        let provider = CryptoProvider::new(5);
        let n = provider.handle(ComponentId::Node(NodeId(1)));
        let sig = n.sign(&digest(3));
        assert!(provider.verify(n.id(), &digest(3), &sig));
    }
}
