//! The simulated digital-signature scheme.
//!
//! `SimSigner` is the documented substitution (see `DESIGN.md`) for the
//! CryptoPP Ed25519/RSA signatures of the original system: a signature is
//! a 64-byte deterministic keyed hash of the message digest under the
//! signer's secret key. Verification recomputes the signature from the
//! signer's registered key pair (obtained through the trusted
//! [`crate::keys::KeyStore`]), which mirrors the paper's assumption that
//! honest components can always validate `⟨m⟩_R` given R's public-key
//! certificate while byzantine components cannot forge it.
//!
//! The scheme preserves every property the protocol relies on:
//! determinism (matching `VERIFY` messages stay matching), binding to the
//! signer identity, binding to the message digest, and a realistic 64-byte
//! wire size.

use crate::hmac::HmacKey;
use crate::keys::{KeyPair, KeyStore};
use sbft_types::{ComponentId, Digest, Signature};

/// Signing and verification entry points.
pub struct SimSigner;

impl SimSigner {
    /// Signs a message digest with a secret key.
    ///
    /// The two 32-byte halves are HMACs under the same secret key; the key
    /// schedule is derived once and reused for both, and the second half's
    /// domain-separation byte is fed incrementally instead of through a
    /// concatenated temporary buffer. Callers that sign repeatedly under
    /// one identity should hold the schedule themselves and use
    /// [`Self::sign_with_schedule`] (that is what
    /// [`crate::provider::CryptoHandle::sign`] does).
    #[must_use]
    pub fn sign(keypair: &KeyPair, digest: &Digest) -> Signature {
        Self::sign_with_schedule(&keypair.signing_schedule(), digest)
    }

    /// Signs a message digest with an already-derived key schedule,
    /// skipping the two schedule-derivation compressions [`Self::sign`]
    /// pays per call.
    #[must_use]
    pub fn sign_with_schedule(schedule: &HmacKey, digest: &Digest) -> Signature {
        let first = schedule.mac(digest.as_bytes());
        let second = schedule.mac_parts(&[digest.as_bytes(), &[0x01]]);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&first.0);
        out[32..].copy_from_slice(&second.0);
        Signature(out)
    }

    /// Verifies that `signature` is `signer`'s signature over `digest`,
    /// using the trusted key registry.
    #[must_use]
    pub fn verify(
        store: &KeyStore,
        signer: ComponentId,
        digest: &Digest,
        signature: &Signature,
    ) -> bool {
        let schedule = store.keypair_for(signer).signing_schedule();
        Self::verify_with_schedule(&schedule, digest, signature)
    }

    /// Verifies a signature against an already-derived signing schedule
    /// (the cached-verification path of
    /// [`crate::provider::CryptoProvider::verify`]).
    #[must_use]
    pub fn verify_with_schedule(
        schedule: &HmacKey,
        digest: &Digest,
        signature: &Signature,
    ) -> bool {
        let expected = Self::sign_with_schedule(schedule, digest);
        signatures_equal(&expected, signature)
    }
}

/// Constant-time-ish 64-byte signature comparison.
#[must_use]
pub(crate) fn signatures_equal(a: &Signature, b: &Signature) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.0.iter().zip(b.0.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::NodeId;

    fn store() -> KeyStore {
        KeyStore::new(1234)
    }

    fn digest(n: u64) -> Digest {
        crate::hashing::digest_u64s("test", &[n])
    }

    #[test]
    fn sign_verify_round_trip() {
        let s = store();
        let node = ComponentId::Node(NodeId(0));
        let kp = s.keypair_for(node);
        let sig = SimSigner::sign(&kp, &digest(1));
        assert!(SimSigner::verify(&s, node, &digest(1), &sig));
    }

    #[test]
    fn verification_rejects_wrong_message() {
        let s = store();
        let node = ComponentId::Node(NodeId(0));
        let sig = SimSigner::sign(&s.keypair_for(node), &digest(1));
        assert!(!SimSigner::verify(&s, node, &digest(2), &sig));
    }

    #[test]
    fn verification_rejects_wrong_signer() {
        let s = store();
        let sig = SimSigner::sign(&s.keypair_for(ComponentId::Node(NodeId(0))), &digest(1));
        assert!(!SimSigner::verify(
            &s,
            ComponentId::Node(NodeId(1)),
            &digest(1),
            &sig
        ));
    }

    #[test]
    fn verification_rejects_bit_flip() {
        let s = store();
        let node = ComponentId::Node(NodeId(2));
        let mut sig = SimSigner::sign(&s.keypair_for(node), &digest(9));
        sig.0[63] ^= 0x80;
        assert!(!SimSigner::verify(&s, node, &digest(9), &sig));
    }

    #[test]
    fn signatures_are_deterministic() {
        let s = store();
        let node = ComponentId::Node(NodeId(3));
        let kp = s.keypair_for(node);
        assert_eq!(
            SimSigner::sign(&kp, &digest(5)),
            SimSigner::sign(&kp, &digest(5))
        );
    }

    #[test]
    fn halves_of_signature_differ() {
        let s = store();
        let sig = SimSigner::sign(&s.keypair_for(ComponentId::Verifier), &digest(5));
        assert_ne!(&sig.0[..32], &sig.0[32..]);
    }

    #[test]
    fn schedule_paths_match_the_fresh_key_paths() {
        let s = store();
        let node = ComponentId::Node(NodeId(4));
        let kp = s.keypair_for(node);
        let schedule = kp.signing_schedule();
        let sig = SimSigner::sign_with_schedule(&schedule, &digest(11));
        assert_eq!(sig, SimSigner::sign(&kp, &digest(11)));
        assert!(SimSigner::verify_with_schedule(
            &schedule,
            &digest(11),
            &sig
        ));
        assert!(!SimSigner::verify_with_schedule(
            &schedule,
            &digest(12),
            &sig
        ));
        assert!(SimSigner::verify(&s, node, &digest(11), &sig));
    }
}
