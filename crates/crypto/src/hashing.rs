//! Convenience digest helpers built on [`crate::sha256::Sha256`].
//!
//! The protocol hashes structured data — `(view, seq, digest)` headers,
//! transaction identifiers, result vectors — far more often than raw byte
//! buffers. [`U64Hasher`] is the allocation-free workhorse for those
//! sites: values are pushed one `u64` at a time into a 64-byte stack
//! buffer that is fed to SHA-256 one full block at a time, so a digest
//! over any number of values costs zero heap allocations and compresses
//! aligned blocks on the no-copy fast path of [`Sha256::update`].

use crate::sha256::Sha256;
use sbft_types::Digest;

/// Hashes a byte slice.
#[must_use]
pub fn digest_bytes(data: &[u8]) -> Digest {
    Sha256::digest(data)
}

/// Hashes the concatenation of several byte slices without copying them
/// into one buffer (domain separation is the caller's responsibility).
#[must_use]
pub fn digest_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// An incremental, allocation-free hasher for streams of `u64` values.
///
/// Construction absorbs a domain-separation label; values are then pushed
/// with [`push`](U64Hasher::push) (or [`push_digest`](U64Hasher::push_digest)
/// for 32-byte digests) and the final digest is produced by
/// [`finish`](U64Hasher::finish). Values are staged in a 64-byte stack
/// buffer so SHA-256 sees whole blocks; no heap memory is touched.
#[derive(Clone, Debug)]
pub struct U64Hasher {
    inner: Sha256,
    /// Stack staging area: eight little-endian `u64`s make one SHA block.
    buf: [u8; 64],
    len: usize,
}

impl U64Hasher {
    /// Creates a hasher and absorbs the domain-separation `label`
    /// (terminated by a `0` separator byte, as [`digest_u64s`] always did).
    #[must_use]
    pub fn new(label: &str) -> Self {
        let mut inner = Sha256::new();
        inner.update(label.as_bytes());
        inner.update(&[0u8]); // separator between label and payload
        U64Hasher {
            inner,
            buf: [0u8; 64],
            len: 0,
        }
    }

    /// Pushes one value (little-endian encoded).
    pub fn push(&mut self, value: u64) {
        if self.len == 64 {
            self.flush();
        }
        self.buf[self.len..self.len + 8].copy_from_slice(&value.to_le_bytes());
        self.len += 8;
    }

    /// Pushes every value of a slice.
    pub fn push_all(&mut self, values: &[u64]) {
        for v in values {
            self.push(*v);
        }
    }

    /// Pushes a 32-byte digest as four little-endian `u64` words (the
    /// encoding the header/commit digests have always used).
    pub fn push_digest(&mut self, digest: &Digest) {
        for chunk in digest.as_bytes().chunks_exact(8) {
            self.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
    }

    /// Finalizes the hash.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        self.flush();
        self.inner.finalize()
    }

    fn flush(&mut self) {
        self.inner.update(&self.buf[..self.len]);
        self.len = 0;
    }
}

/// Hashes a sequence of `u64` values (little-endian encoded). Used for
/// digesting structured identifiers such as `(view, seq, batch)` tuples.
/// For call sites that would need to build a temporary `Vec` first, use
/// [`U64Hasher`] directly and push the values as they are produced.
#[must_use]
pub fn digest_u64s(label: &str, values: &[u64]) -> Digest {
    let mut h = U64Hasher::new(label);
    h.push_all(values);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_equals_single_buffer() {
        let a = b"hello ";
        let b = b"world";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        assert_eq!(digest_concat(&[a, b]), digest_bytes(&joined));
    }

    #[test]
    fn u64_digest_depends_on_label_and_values() {
        let d1 = digest_u64s("preprepare", &[1, 2, 3]);
        let d2 = digest_u64s("preprepare", &[1, 2, 4]);
        let d3 = digest_u64s("prepare", &[1, 2, 3]);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_eq!(d1, digest_u64s("preprepare", &[1, 2, 3]));
    }

    #[test]
    fn empty_inputs_are_valid() {
        assert_eq!(digest_concat(&[]), digest_bytes(b""));
        let d = digest_u64s("x", &[]);
        assert!(!d.is_zero());
    }

    #[test]
    fn incremental_pushes_match_slice_digest() {
        // Cross the 64-byte staging boundary several times.
        for n in [0usize, 1, 7, 8, 9, 16, 33, 100] {
            let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(0x9e37)).collect();
            let mut h = U64Hasher::new("stream");
            for v in &values {
                h.push(*v);
            }
            assert_eq!(h.finish(), digest_u64s("stream", &values), "n = {n}");
        }
    }

    #[test]
    fn push_digest_matches_word_encoding() {
        let d = digest_bytes(b"payload");
        let words: Vec<u64> = d
            .as_bytes()
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut h = U64Hasher::new("hdr");
        h.push(3);
        h.push_digest(&d);
        let mut expected = vec![3u64];
        expected.extend(words);
        assert_eq!(h.finish(), digest_u64s("hdr", &expected));
    }
}
