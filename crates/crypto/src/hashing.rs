//! Convenience digest helpers built on [`crate::sha256::Sha256`].

use crate::sha256::Sha256;
use sbft_types::Digest;

/// Hashes a byte slice.
#[must_use]
pub fn digest_bytes(data: &[u8]) -> Digest {
    Sha256::digest(data)
}

/// Hashes the concatenation of several byte slices without copying them
/// into one buffer (domain separation is the caller's responsibility).
#[must_use]
pub fn digest_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Hashes a sequence of `u64` values (little-endian encoded). Used for
/// digesting structured identifiers such as `(view, seq, batch)` tuples.
#[must_use]
pub fn digest_u64s(label: &str, values: &[u64]) -> Digest {
    let mut h = Sha256::new();
    h.update(label.as_bytes());
    h.update(&[0u8]); // separator between label and payload
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_equals_single_buffer() {
        let a = b"hello ";
        let b = b"world";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        assert_eq!(digest_concat(&[a, b]), digest_bytes(&joined));
    }

    #[test]
    fn u64_digest_depends_on_label_and_values() {
        let d1 = digest_u64s("preprepare", &[1, 2, 3]);
        let d2 = digest_u64s("preprepare", &[1, 2, 4]);
        let d3 = digest_u64s("prepare", &[1, 2, 3]);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_eq!(d1, digest_u64s("preprepare", &[1, 2, 3]));
    }

    #[test]
    fn empty_inputs_are_valid() {
        assert_eq!(digest_concat(&[]), digest_bytes(b""));
        let d = digest_u64s("x", &[]);
        assert!(!d.is_zero());
    }
}
