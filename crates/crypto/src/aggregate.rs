//! Batch-level signature aggregation.
//!
//! The primary receives one signed request per client transaction but
//! orders transactions in batches of ~100, so checking signatures one at
//! a time makes client authentication the dominant per-batch crypto cost.
//! This module provides the amortised alternative: the individual 64-byte
//! signatures of a batch fold into one 64-byte [`AggregateSignature`]
//! (XOR of the signature bytes), and the verifier recomputes the expected
//! per-transaction signatures from its *cached* per-identity key
//! schedules, folds them the same way, and compares **once**.
//!
//! This is the simulated-crypto stand-in for real aggregate schemes (BLS
//! multi-signature verification, batched Ed25519): one aggregate check
//! per batch instead of one full verification per transaction, with a
//! **bisecting fallback** that pinpoints offending transactions when the
//! aggregate check fails. The fallback mirrors how a real implementation
//! splits a failing batch into sub-aggregates: each probe compares the
//! fold of a contiguous range, so a single corrupted signature is located
//! in `O(log n)` range checks instead of `n` individual verifications.
//!
//! As with [`crate::signature::SimSigner`], the scheme leans on the
//! paper's assumption that byzantine components cannot subvert
//! cryptographic constructs: the XOR fold models a secure aggregate and
//! is not itself one (two crafted corruptions could cancel), exactly as
//! the keyed-hash signature models Ed25519 without being it. Every
//! protocol-relevant property is preserved: determinism, binding to the
//! signer set, binding to the per-transaction digests, and a realistic
//! constant wire size.

use sbft_types::Signature;

/// The XOR fold of a set of 64-byte signatures.
///
/// The identity element is all-zeroes, folding is commutative and
/// associative, and folding the same signature twice cancels — which is
/// what lets the bisecting fallback compare contiguous sub-ranges
/// independently.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AggregateSignature(pub [u8; 64]);

impl AggregateSignature {
    /// The empty aggregate (fold of zero signatures).
    #[must_use]
    pub fn identity() -> Self {
        AggregateSignature([0u8; 64])
    }

    /// Folds one signature into the aggregate.
    pub fn fold(&mut self, sig: &Signature) {
        for (a, b) in self.0.iter_mut().zip(sig.0.iter()) {
            *a ^= b;
        }
    }

    /// The fold of every signature in the iterator.
    #[must_use]
    pub fn from_signatures<'a>(sigs: impl IntoIterator<Item = &'a Signature>) -> Self {
        let mut agg = Self::identity();
        for sig in sigs {
            agg.fold(sig);
        }
        agg
    }

    /// The raw aggregate bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }
}

impl Default for AggregateSignature {
    fn default() -> Self {
        Self::identity()
    }
}

/// Locates the indices where `provided` differs from `expected` by
/// bisection over sub-aggregates: a range whose folds match is cleared
/// wholesale, a mismatching range splits in two, and a mismatching
/// single element is an offender. With one corrupted signature this
/// probes `O(log n)` ranges; with `k` it degrades gracefully towards
/// `O(k log n)`.
///
/// # Panics
/// Panics if the two slices have different lengths.
#[must_use]
pub(crate) fn bisect_mismatches(expected: &[Signature], provided: &[Signature]) -> Vec<usize> {
    assert_eq!(
        expected.len(),
        provided.len(),
        "expected and provided signature sets must align"
    );
    let mut offenders = Vec::new();
    bisect(expected, provided, 0, &mut offenders);
    offenders
}

fn bisect(expected: &[Signature], provided: &[Signature], offset: usize, out: &mut Vec<usize>) {
    if expected.is_empty()
        || AggregateSignature::from_signatures(expected)
            == AggregateSignature::from_signatures(provided)
    {
        return;
    }
    if expected.len() == 1 {
        out.push(offset);
        return;
    }
    let mid = expected.len() / 2;
    bisect(&expected[..mid], &provided[..mid], offset, out);
    bisect(&expected[mid..], &provided[mid..], offset + mid, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(fill: u8) -> Signature {
        Signature([fill; 64])
    }

    #[test]
    fn fold_is_commutative_and_self_inverse() {
        let a = sig(0x11);
        let b = sig(0x22);
        let ab = AggregateSignature::from_signatures([&a, &b]);
        let ba = AggregateSignature::from_signatures([&b, &a]);
        assert_eq!(ab, ba);
        let mut back = ab;
        back.fold(&b);
        assert_eq!(back, AggregateSignature::from_signatures([&a]));
        let mut empty = back;
        empty.fold(&a);
        assert_eq!(empty, AggregateSignature::identity());
    }

    #[test]
    fn bisect_finds_single_corruption_at_every_position() {
        let expected: Vec<Signature> = (0..9u8).map(sig).collect();
        for corrupt in 0..expected.len() {
            let mut provided = expected.clone();
            provided[corrupt].0[17] ^= 0x40;
            assert_eq!(
                bisect_mismatches(&expected, &provided),
                vec![corrupt],
                "corruption at {corrupt}"
            );
        }
    }

    #[test]
    fn bisect_finds_multiple_corruptions() {
        let expected: Vec<Signature> = (0..16u8).map(sig).collect();
        let mut provided = expected.clone();
        provided[2].0[0] ^= 1;
        provided[11].0[63] ^= 0x80;
        assert_eq!(bisect_mismatches(&expected, &provided), vec![2, 11]);
    }

    #[test]
    fn bisect_on_matching_sets_returns_nothing() {
        let expected: Vec<Signature> = (0..5u8).map(sig).collect();
        assert!(bisect_mismatches(&expected, &expected.clone()).is_empty());
        assert!(bisect_mismatches(&[], &[]).is_empty());
    }
}
