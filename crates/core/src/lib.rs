//! # sbft-core
//!
//! The **ServerlessBFT** protocol — the paper's primary contribution: a
//! Byzantine fault-tolerant transactional flow between edge devices (the
//! shim), serverless executors, a trusted verifier and an on-premise
//! data-store.
//!
//! The crate is organised around the roles of Figure 3 and Figure 4:
//!
//! * [`client`] — the client role: sign and submit transactions, wait for
//!   the verifier's `RESPONSE`, re-transmit to the verifier with
//!   exponential back-off when the client timer `τ_m` expires.
//! * [`shim`] — the shim-node role: batch client requests, run the ordering
//!   protocol (PBFT by default), and, once a batch commits, spawn
//!   serverless executors carrying the execution certificate `C`. Also
//!   implements the node-side recovery paths (`ERROR`/`REPLACE`/`ACK`
//!   handling, the re-transmission timer `Υ`) and decentralized spawning.
//! * [`verifier`] — the trusted verifier `V`: collect `VERIFY` messages,
//!   wait for `f_E + 1` matching results, enforce sequence order with
//!   `k_max` and the pending list `π`, run the concurrency-control check
//!   against storage, reply to clients, detect byzantine aborts, and drive
//!   the request-suppression recovery of Figure 4.
//! * [`planner`] — the best-effort conflict-avoidance planner used when
//!   read-write sets are known (Section VI-C).
//! * [`attacks`] — the attack-injection layer that turns honest shim nodes
//!   byzantine (request suppression, nodes in dark, equivocation, fewer /
//!   duplicate / delayed spawning, verifier flooding).
//! * [`events`] — the architecture-wide message and action vocabulary that
//!   the simulator (`sbft-sim`) and the thread runtime (`sbft-runtime`)
//!   interpret.
//! * [`system`] — the builder that assembles a whole deployment from a
//!   [`sbft_types::SystemConfig`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod attacks;
pub mod client;
pub mod events;
pub mod planner;
pub mod shim;
pub mod system;
pub mod verifier;

pub use attacks::{AttackInjector, ShimAttack};
pub use client::ClientRole;
pub use events::{Action, ClientRequest, Destination, Envelope, ProtocolMessage, ProtocolTimer};
pub use planner::BestEffortPlanner;
pub use shim::ShimNode;
pub use system::{System, SystemBuilder};
pub use verifier::Verifier;
