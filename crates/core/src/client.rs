//! The client role.
//!
//! "Any user that accesses the edge application becomes a client in our
//! system" (Section IV-A). A client signs its transaction, sends it to the
//! shim primary of the current view, and waits for a `RESPONSE` from the
//! trusted verifier. If the client timer `τ_m` expires, the client forwards
//! the request directly to the verifier and keeps re-transmitting with
//! exponential back-off until it receives a `RESPONSE` (Figure 4,
//! client role).

use crate::events::{Action, ClientRequest, Destination, ProtocolMessage, ProtocolTimer};
use sbft_crypto::CryptoHandle;
use sbft_types::{ClientId, ComponentId, NodeId, SimDuration, Transaction, TxnId, TxnOutcome};
use std::collections::HashMap;

/// State of one outstanding request.
#[derive(Clone, Debug)]
struct Outstanding {
    txn: Transaction,
    retries: u32,
    current_timeout: SimDuration,
}

/// The client role state machine.
pub struct ClientRole {
    id: ClientId,
    crypto: CryptoHandle,
    primary: NodeId,
    base_timeout: SimDuration,
    backoff_factor: f64,
    outstanding: HashMap<TxnId, Outstanding>,
    completed: u64,
    aborted: u64,
    retransmissions: u64,
}

impl ClientRole {
    /// Creates a client that will submit to `primary`.
    #[must_use]
    pub fn new(
        id: ClientId,
        crypto: CryptoHandle,
        primary: NodeId,
        base_timeout: SimDuration,
        backoff_factor: f64,
    ) -> Self {
        assert!(backoff_factor >= 1.0, "back-off must not shrink timeouts");
        ClientRole {
            id,
            crypto,
            primary,
            base_timeout,
            backoff_factor,
            outstanding: HashMap::new(),
            completed: 0,
            aborted: 0,
            retransmissions: 0,
        }
    }

    /// This client's identifier.
    #[must_use]
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of responses received (committed transactions).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of aborts received.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Number of re-transmissions to the verifier so far.
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Number of requests still awaiting a response.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Updates the primary this client targets (clients learn of view
    /// changes from responses or out of band; the harness updates them).
    pub fn set_primary(&mut self, primary: NodeId) {
        self.primary = primary;
    }

    /// Submits a transaction: sign it, send `⟨T⟩_C` to the primary, and
    /// start the client timer `τ_m` (Figure 3 line 1, Figure 4 line 1).
    pub fn submit(&mut self, txn: Transaction) -> Vec<Action> {
        assert_eq!(
            txn.id.client, self.id,
            "clients only sign their own transactions"
        );
        let digest = ClientRequest::signing_digest(&txn);
        let request = ClientRequest {
            txn: txn.clone(),
            signature: self.crypto.sign(&digest),
        };
        let id = txn.id;
        self.outstanding.insert(
            id,
            Outstanding {
                txn,
                retries: 0,
                current_timeout: self.base_timeout,
            },
        );
        vec![
            Action::send(
                ComponentId::Client(self.id),
                Destination::Node(self.primary),
                ProtocolMessage::ClientRequest(request),
            ),
            Action::StartTimer {
                timer: ProtocolTimer::ClientRequest(id),
                duration: self.base_timeout,
            },
        ]
    }

    /// Handles a `RESPONSE` or `ABORT` from the verifier.
    pub fn on_message(&mut self, msg: &ProtocolMessage) -> Vec<Action> {
        let (txn, outcome) = match msg {
            ProtocolMessage::Response(r) => (r.txn, r.outcome),
            ProtocolMessage::Abort(a) => (a.txn, TxnOutcome::Aborted),
            _ => return Vec::new(),
        };
        if self.outstanding.remove(&txn).is_none() {
            // Duplicate response (e.g. re-sent by the verifier after a
            // retry); the request was already marked processed.
            return Vec::new();
        }
        match outcome {
            TxnOutcome::Committed => self.completed += 1,
            TxnOutcome::Aborted => self.aborted += 1,
        }
        vec![
            Action::CancelTimer(ProtocolTimer::ClientRequest(txn)),
            Action::TxnCompleted { txn, outcome },
        ]
    }

    /// Handles the expiry of the client timer for `txn`: forward the
    /// request to the verifier, back off, restart the timer.
    pub fn on_timeout(&mut self, txn: TxnId) -> Vec<Action> {
        let Some(entry) = self.outstanding.get_mut(&txn) else {
            return Vec::new(); // already answered
        };
        entry.retries += 1;
        entry.current_timeout = entry.current_timeout.mul_f64(self.backoff_factor);
        self.retransmissions += 1;
        let digest = ClientRequest::signing_digest(&entry.txn);
        let request = ClientRequest {
            txn: entry.txn.clone(),
            signature: self.crypto.sign(&digest),
        };
        let duration = entry.current_timeout;
        vec![
            Action::send(
                ComponentId::Client(self.id),
                Destination::Verifier,
                ProtocolMessage::ClientRequest(request),
            ),
            Action::StartTimer {
                timer: ProtocolTimer::ClientRequest(txn),
                duration,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ResponseMessage;
    use sbft_crypto::CryptoProvider;
    use sbft_types::{Key, Operation, SeqNum, Signature};

    fn client() -> ClientRole {
        let provider = CryptoProvider::new(3);
        ClientRole::new(
            ClientId(7),
            provider.handle(ComponentId::Client(ClientId(7))),
            NodeId(0),
            SimDuration::from_millis(100),
            2.0,
        )
    }

    fn txn(counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(7), counter),
            vec![Operation::Read(Key(1))],
        )
    }

    fn response(counter: u64, outcome: TxnOutcome) -> ProtocolMessage {
        ProtocolMessage::Response(ResponseMessage {
            txn: TxnId::new(ClientId(7), counter),
            seq: SeqNum(1),
            outcome,
            output: 9,
            signature: Signature::ZERO,
        })
    }

    #[test]
    fn submit_sends_signed_request_to_primary_and_starts_timer() {
        let mut c = client();
        let actions = c.submit(txn(0));
        assert_eq!(actions.len(), 2);
        let env = actions[0].as_send().unwrap();
        assert_eq!(env.to, Destination::Node(NodeId(0)));
        match &env.msg {
            ProtocolMessage::ClientRequest(r) => {
                // The signature must verify as this client's.
                let digest = ClientRequest::signing_digest(&r.txn);
                let provider = CryptoProvider::new(3);
                assert!(provider.verify(ComponentId::Client(ClientId(7)), &digest, &r.signature));
            }
            other => panic!("unexpected message {other:?}"),
        }
        assert!(matches!(actions[1], Action::StartTimer { .. }));
        assert_eq!(c.outstanding(), 1);
    }

    #[test]
    #[should_panic(expected = "own transactions")]
    fn submitting_a_foreign_transaction_panics() {
        let mut c = client();
        let foreign = Transaction::new(TxnId::new(ClientId(8), 0), vec![]);
        let _ = c.submit(foreign);
    }

    #[test]
    fn response_completes_request_and_cancels_timer() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let actions = c.on_message(&response(0, TxnOutcome::Committed));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer(ProtocolTimer::ClientRequest(_)))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::TxnCompleted {
                outcome: TxnOutcome::Committed,
                ..
            }
        )));
        assert_eq!(c.completed(), 1);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn duplicate_responses_are_ignored() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let _ = c.on_message(&response(0, TxnOutcome::Committed));
        assert!(c.on_message(&response(0, TxnOutcome::Committed)).is_empty());
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn abort_counts_separately() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let _ = c.on_message(&response(0, TxnOutcome::Aborted));
        assert_eq!(c.aborted(), 1);
        assert_eq!(c.completed(), 0);
    }

    #[test]
    fn timeout_retransmits_to_verifier_with_backoff() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let first = c.on_timeout(TxnId::new(ClientId(7), 0));
        let env = first[0].as_send().unwrap();
        assert_eq!(env.to, Destination::Verifier);
        let d1 = match first[1] {
            Action::StartTimer { duration, .. } => duration,
            _ => panic!("expected timer restart"),
        };
        assert_eq!(d1, SimDuration::from_millis(200), "one doubling");
        let second = c.on_timeout(TxnId::new(ClientId(7), 0));
        let d2 = match second[1] {
            Action::StartTimer { duration, .. } => duration,
            _ => panic!("expected timer restart"),
        };
        assert_eq!(d2, SimDuration::from_millis(400), "exponential back-off");
        assert_eq!(c.retransmissions(), 2);
    }

    #[test]
    fn timeout_after_response_is_a_no_op() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let _ = c.on_message(&response(0, TxnOutcome::Committed));
        assert!(c.on_timeout(TxnId::new(ClientId(7), 0)).is_empty());
    }

    #[test]
    fn unrelated_messages_are_ignored() {
        let mut c = client();
        let _ = c.submit(txn(0));
        let msg = ProtocolMessage::BatchValidated(crate::events::BatchValidated {
            seq: SeqNum(1),
            committed: 1,
            aborted: 0,
        });
        assert!(c.on_message(&msg).is_empty());
    }
}
