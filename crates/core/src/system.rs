//! Assembly of a full serverless-edge deployment.
//!
//! [`SystemBuilder`] turns a [`SystemConfig`] into a [`System`]: the YCSB
//! table, the crypto provider, the clients, the shim nodes (running PBFT,
//! the CFT baseline or the NoShim baseline), the verifier, the serverless
//! cloud and the attack injector. The discrete-event simulator
//! (`sbft-sim`) and the thread runtime (`sbft-runtime`) both start from a
//! `System`.

use crate::attacks::{AttackInjector, ShimAttack};
use crate::client::ClientRole;
use crate::shim::ShimNode;
use crate::verifier::{Verifier, VerifierConfig};
use sbft_consensus::{CftReplica, NoShim, OrderingProtocol, PbftReplica};
use sbft_crypto::CryptoProvider;
use sbft_serverless::cloud::CloudFaultPlan;
use sbft_serverless::{Executor, ExecutorBehavior, RegionOutage, ServerlessCloud, SpawnOutcome};
use sbft_storage::{StorageReader, VersionedStore, YcsbTable};
use sbft_telemetry::Registry;
use sbft_types::{ClientId, ComponentId, ExecutorId, NodeId, Region, SystemConfig};
use std::sync::Arc;

/// Which ordering protocol the shim runs (Figure 7 baselines).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShimProtocol {
    /// ServerlessBFT with PBFT at the shim (the paper's design).
    #[default]
    Pbft,
    /// The `ServerlessCFT` baseline (Multi-Paxos-style shim).
    Cft,
    /// The `NoShim` baseline (no consensus, a single node spawns).
    NoShim,
}

/// A fully assembled deployment.
pub struct System {
    /// The configuration the system was built from.
    pub config: SystemConfig,
    /// Which shim protocol is in use.
    pub protocol: ShimProtocol,
    /// Deployment-wide cryptographic material.
    pub provider: Arc<CryptoProvider>,
    /// The on-premise data-store (already populated).
    pub storage: Arc<VersionedStore>,
    /// The client roles.
    pub clients: Vec<ClientRole>,
    /// The shim nodes.
    pub nodes: Vec<ShimNode>,
    /// The trusted verifier.
    pub verifier: Verifier,
    /// The serverless cloud control plane.
    pub cloud: ServerlessCloud,
    /// The byzantine-attack injector.
    pub injector: AttackInjector,
    /// The deployment-wide metrics namespace: every component's counters
    /// are registered here at build time (see `OBSERVABILITY.md` for the
    /// naming conventions), so run harnesses read final values through it.
    pub registry: Arc<Registry>,
}

impl System {
    /// Number of shim nodes actually deployed (1 for NoShim).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The shim node currently acting as primary.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.nodes[0].primary()
    }

    /// The commit-certificate quorum executors and the verifier enforce
    /// (0 for the baselines).
    #[must_use]
    pub fn cert_quorum(&self) -> usize {
        match self.protocol {
            ShimProtocol::Pbft => self.config.fault.shim_quorum(),
            _ => 0,
        }
    }

    /// Builds the executor object for a spawn outcome returned by the
    /// cloud. The runtimes call this when they materialise a spawn.
    #[must_use]
    pub fn make_executor(&self, outcome: &SpawnOutcome) -> Executor {
        Executor::new(
            outcome.executor,
            outcome.region,
            outcome.behavior,
            self.provider
                .handle(ComponentId::Executor(outcome.executor)),
            StorageReader::new(Arc::clone(&self.storage)),
            self.config.fault.n_r,
            self.cert_quorum(),
        )
    }

    /// Builds an executor with an explicit identity/region/behaviour (used
    /// by tests and by the thread runtime's executor pool).
    #[must_use]
    pub fn make_executor_with(
        &self,
        id: ExecutorId,
        region: Region,
        behavior: ExecutorBehavior,
    ) -> Executor {
        Executor::new(
            id,
            region,
            behavior,
            self.provider.handle(ComponentId::Executor(id)),
            StorageReader::new(Arc::clone(&self.storage)),
            self.config.fault.n_r,
            self.cert_quorum(),
        )
    }
}

/// Builder for [`System`].
pub struct SystemBuilder {
    config: SystemConfig,
    protocol: ShimProtocol,
    seed: u64,
    num_clients: usize,
    attacks: Vec<(NodeId, ShimAttack)>,
    cloud_fault_plan: CloudFaultPlan,
    cloud_concurrency_limit: usize,
    region_outage: RegionOutage,
}

impl SystemBuilder {
    /// Starts a builder from a configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        let num_clients = config.workload.num_clients;
        SystemBuilder {
            config,
            protocol: ShimProtocol::Pbft,
            seed: 42,
            num_clients,
            attacks: Vec::new(),
            cloud_fault_plan: CloudFaultPlan::default(),
            cloud_concurrency_limit: usize::MAX / 2,
            region_outage: RegionOutage::none(),
        }
    }

    /// Selects the shim ordering protocol.
    #[must_use]
    pub fn protocol(mut self, protocol: ShimProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the deterministic seed used for key material.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of client roles to instantiate.
    #[must_use]
    pub fn clients(mut self, num_clients: usize) -> Self {
        self.num_clients = num_clients.max(1);
        self
    }

    /// Compromises a shim node with an attack.
    #[must_use]
    pub fn attack(mut self, node: NodeId, attack: ShimAttack) -> Self {
        self.attacks.push((node, attack));
        self
    }

    /// Configures byzantine executors at the cloud.
    #[must_use]
    pub fn cloud_faults(mut self, plan: CloudFaultPlan) -> Self {
        self.cloud_fault_plan = plan;
        self
    }

    /// Limits how many executors may run in parallel (the provider's
    /// concurrency limit; the paper was capped at 21).
    #[must_use]
    pub fn cloud_concurrency_limit(mut self, limit: usize) -> Self {
        self.cloud_concurrency_limit = limit.max(1);
        self
    }

    /// Injects a region-outage scenario: the cloud rejects spawns into
    /// the downed regions and every shim node's invoker is informed, so
    /// plan-aware placement falls back deterministically.
    #[must_use]
    pub fn region_outage(mut self, outage: RegionOutage) -> Self {
        self.region_outage = outage;
        self
    }

    /// Assembles the system.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    #[must_use]
    pub fn build(self) -> System {
        self.config
            .validate()
            .expect("invalid system configuration");
        let provider = CryptoProvider::new(self.seed);
        let table = YcsbTable::populate(self.config.workload.num_records);
        let storage = Arc::clone(table.store());

        // Shim nodes.
        let n_nodes = match self.protocol {
            ShimProtocol::NoShim => 1,
            _ => self.config.fault.n_r,
        };
        let mut nodes: Vec<ShimNode> = (0..n_nodes as u32)
            .map(|i| {
                let id = NodeId(i);
                let ordering: Box<dyn OrderingProtocol + Send> = match self.protocol {
                    ShimProtocol::Pbft => Box::new(
                        PbftReplica::new(
                            id,
                            self.config.fault,
                            provider.handle(ComponentId::Node(id)),
                            self.config.timers.node_timeout,
                            self.config.timers.checkpoint_interval,
                        )
                        .with_digest_proposals(self.config.digest_proposals),
                    ),
                    ShimProtocol::Cft => Box::new(CftReplica::new(
                        id,
                        self.config.fault,
                        self.config.timers.node_timeout,
                    )),
                    ShimProtocol::NoShim => Box::new(NoShim::new(id)),
                };
                ShimNode::new(
                    id,
                    self.config.clone(),
                    provider.handle(ComponentId::Node(id)),
                    ordering,
                )
            })
            .collect();

        // Verifier.
        let cert_quorum = match self.protocol {
            ShimProtocol::Pbft => self.config.fault.shim_quorum(),
            _ => 0,
        };
        let verifier = Verifier::new(
            provider.handle(ComponentId::Verifier),
            Arc::clone(&storage),
            VerifierConfig {
                params: self.config.fault,
                conflict_handling: self.config.conflict_handling,
                abort_timeout: self.config.timers.verifier_abort_timeout,
                cert_quorum,
                spawned_per_batch: self.config.spawned_per_batch(),
                sharding: self.config.sharding,
                checkpoint_interval: self.config.timers.checkpoint_interval,
            },
        );

        // Clients.
        let primary = nodes[0].primary();
        let clients = (0..self.num_clients as u32)
            .map(|i| {
                ClientRole::new(
                    ClientId(i),
                    provider.handle(ComponentId::Client(ClientId(i))),
                    primary,
                    self.config.timers.client_timeout,
                    self.config.timers.client_backoff_factor,
                )
            })
            .collect();

        // Cloud.
        let mut cloud = ServerlessCloud::with_limits(
            self.cloud_concurrency_limit,
            sbft_serverless::cloud::DEFAULT_COLD_START,
        );
        cloud.set_fault_plan(self.cloud_fault_plan);
        if self.region_outage.is_active() {
            for region in self.region_outage.regions() {
                for node in &mut nodes {
                    node.mark_region_down(region);
                }
            }
            cloud.set_region_outage(self.region_outage);
        }

        // Attacks.
        let mut injector = AttackInjector::new(self.config.fault.n_r);
        for (node, attack) in self.attacks {
            injector.compromise(node, attack);
        }

        // Metrics: every component re-homes its counters into the shared
        // registry so run harnesses read final values in one place.
        let registry = Arc::new(Registry::new());
        let mut verifier = verifier;
        verifier.register_metrics(&registry);
        for node in &mut nodes {
            node.register_metrics(&registry);
        }

        System {
            config: self.config,
            protocol: self.protocol,
            provider,
            storage,
            clients,
            nodes,
            verifier,
            cloud,
            injector,
            registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.workload.num_records = 200;
        cfg.workload.num_clients = 4;
        cfg
    }

    #[test]
    fn builder_assembles_all_components() {
        let system = SystemBuilder::new(small_config()).clients(4).build();
        assert_eq!(system.num_nodes(), 4);
        assert_eq!(system.clients.len(), 4);
        assert_eq!(system.storage.len(), 200);
        assert_eq!(system.primary(), NodeId(0));
        assert_eq!(system.cert_quorum(), 3);
        assert_eq!(system.verifier.kmax(), sbft_types::SeqNum(1));
    }

    #[test]
    fn noshim_deploys_a_single_node() {
        let system = SystemBuilder::new(small_config())
            .protocol(ShimProtocol::NoShim)
            .clients(2)
            .build();
        assert_eq!(system.num_nodes(), 1);
        assert_eq!(system.cert_quorum(), 0);
        assert_eq!(system.nodes[0].protocol_name(), "NoShim");
    }

    #[test]
    fn cft_nodes_report_their_protocol() {
        let system = SystemBuilder::new(small_config())
            .protocol(ShimProtocol::Cft)
            .clients(2)
            .build();
        assert_eq!(system.num_nodes(), 4);
        assert_eq!(system.nodes[0].protocol_name(), "CFT");
        assert_eq!(system.cert_quorum(), 0);
    }

    #[test]
    fn attacks_are_registered_with_the_injector() {
        let system = SystemBuilder::new(small_config())
            .attack(NodeId(0), ShimAttack::SuppressRequests)
            .build();
        assert_eq!(system.injector.compromised(), 1);
        assert!(system.injector.attack_of(NodeId(0)).is_some());
    }

    #[test]
    fn executors_built_from_spawn_outcomes_use_registered_identities() {
        let mut system = SystemBuilder::new(small_config()).build();
        let outcome = system
            .cloud
            .spawn(sbft_serverless::SpawnRequest {
                spawner: NodeId(0),
                region: Region::Oregon,
                seq: sbft_types::SeqNum(1),
            })
            .unwrap();
        let executor = system.make_executor(&outcome);
        assert_eq!(executor.id(), outcome.executor);
        assert_eq!(executor.region(), Region::Oregon);
        assert_eq!(executor.behavior(), ExecutorBehavior::Honest);
    }

    #[test]
    #[should_panic(expected = "invalid system configuration")]
    fn invalid_config_panics_at_build_time() {
        let mut cfg = small_config();
        cfg.workload.batch_size = 0;
        let _ = SystemBuilder::new(cfg).build();
    }
}
