//! The shim-node role.
//!
//! A shim node is an edge device that (1) accepts signed client requests,
//! (2) batches them and runs the ordering protocol, (3) once a batch
//! commits, spawns serverless executors carrying the execution certificate
//! `C` (Figure 3, primary role), and (4) participates in the recovery paths
//! of Figure 4: forwarding `ERROR` messages to the primary under the
//! re-transmission timer `Υ`, honouring `REPLACE` messages from the
//! verifier, and replacing the primary through the ordering protocol's view
//! change when timers expire.
//!
//! The same state machine covers all spawning modes: primary-only spawning
//! (default), decentralized spawning (Section VI-B), and the planner-gated
//! spawning used when read-write sets are known (Section VI-C).

use crate::events::{
    Action, BatchValidated, ClientRequest, Destination, ProtocolMessage, ProtocolTimer,
    RecoverySubject,
};
use crate::planner::{home_shard, BatchFootprint, BestEffortPlanner};
use sbft_consensus::{
    Batcher, ConsensusAction, ConsensusMessage, OrderingProtocol, PbftReplica, RecoveryStats,
    SignedBatch,
};
use sbft_crypto::{CommitCertificate, CryptoHandle};
use sbft_durability::{codec as wal_codec, recover, MemWal, WalRecord, WriteAheadLog};
use sbft_serverless::{ExecuteRequest, Invoker};
use sbft_sharding::ShardRouter;
use sbft_telemetry::{Counter, Registry};
use sbft_types::{
    Batch, ComponentId, ConflictHandling, NodeId, SeqNum, ShardPlan, SimTime, SpawningMode,
    SystemConfig, TxnId, ViewNumber,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A committed batch that may still need spawning or re-spawning. The
/// batch and certificate are shared handles into the consensus layer's
/// allocations — storing and later re-reading them copies nothing.
#[derive(Clone, Debug)]
struct CommittedBatch {
    view: ViewNumber,
    batch: Batch,
    certificate: Arc<CommitCertificate>,
    /// The ordering-time shard plan replicated with the batch; copied
    /// into every `EXECUTE` this node spawns (including re-spawns after
    /// view changes).
    plan: ShardPlan,
    spawned: bool,
}

/// The shim-node role state machine.
pub struct ShimNode {
    me: NodeId,
    config: SystemConfig,
    crypto: CryptoHandle,
    ordering: Box<dyn OrderingProtocol + Send>,
    batcher: Batcher,
    invoker: Invoker,
    planner: Option<BestEffortPlanner>,
    /// The ordering-time shard planner's router: present when read-write
    /// sets are known, the deployment has more than one shard and
    /// ordering lanes are enabled. Each client transaction is classified
    /// against it and steered into its home lane of the batcher.
    lane_router: Option<ShardRouter>,
    /// Batches committed locally that the verifier has not validated yet.
    committed: BTreeMap<SeqNum, CommittedBatch>,
    /// Transactions this node has already placed in a batch, keyed to the
    /// `(signature, signing digest)` they were batched with, so that
    /// client re-transmissions and forwarded `ERROR(⟨T⟩_C)` messages are
    /// not ordered twice. Storing the pair is what keeps deferred
    /// verification safe against id-squatting without enabling client
    /// equivocation: a duplicate with the *same* signature is a retry and
    /// is dropped; on a duplicate with a *different* signature the stored
    /// pair is checked first — a validly signed entry keeps the id (two
    /// differently-signed payloads under one id means the client is
    /// equivocating, and the first one wins, exactly as under eager
    /// verification), while a forged squatter is displaced by a valid
    /// newcomer (see [`Self::order_transaction`]). Truncated in the
    /// rhythm of the featherweight checkpoint interval, mirroring the
    /// verifier's retry maps: one closed interval of validated history is
    /// retained, so duplicates inside the window are still suppressed
    /// while the map stays bounded on long runs (see
    /// [`Self::gc_seen_txns`]).
    seen_txns: std::collections::HashMap<TxnId, (sbft_types::Signature, sbft_types::Digest)>,
    /// Transaction ids of validated batches, retained until the GC cutoff
    /// passes them (feeds the `seen_txns` truncation).
    validated_txns: BTreeMap<SeqNum, Vec<TxnId>>,
    /// Expiry ledger for ids whose batch may never be validated: every
    /// id is recorded here when it enters `seen_txns`, stamped with the
    /// highest validated sequence number observed at that moment. Once
    /// the GC cutoff passes an id's stamp, the id is *expired* from
    /// `seen_txns` — unless it is still tracked by a committed batch or
    /// a retained validated batch (those are released by the regular
    /// checkpoint-rhythm truncation instead). This bounds the residual
    /// growth from ids that were batched but whose batch was lost (e.g.
    /// across a view change without re-proposal) and therefore never
    /// receives a `BatchValidated`.
    pending_seen: BTreeMap<SeqNum, Vec<TxnId>>,
    /// Highest `BatchValidated` sequence number observed.
    max_validated: SeqNum,
    /// Highest sequence number at or below which `seen_txns` has been
    /// garbage-collected.
    seen_gc_floor: SeqNum,
    /// The view in which each re-transmission timer `Υ` was started. If the
    /// view has already changed when the timer fires, the new primary gets a
    /// fresh chance instead of triggering yet another view change (this is
    /// what prevents one byzantine primary from cascading the shim through
    /// many views when many `ERROR` messages arrive at once).
    retransmit_view: std::collections::HashMap<RecoverySubject, ViewNumber>,
    /// The durable write-ahead log, present when `config.durability` is
    /// enabled. `new` attaches the deterministic in-memory backend (what
    /// the simulator crashes and restarts); the thread runtime swaps in
    /// the buffered-file backend via [`Self::attach_wal`].
    wal: Option<Box<dyn WriteAheadLog>>,
    /// Sequence number of the last snapshot cut into the WAL; the log
    /// below it has been truncated.
    last_snapshot: SeqNum,
    /// Whether this node is between a crash restart and the completion of
    /// its peer state transfer. Gates the recovery-only WAL actions (the
    /// checkpoint catch-up snapshot cut).
    recovering: bool,
    /// Last snapshot of the ordering protocol's adversarial-recovery
    /// counters; successive deltas feed the `shim.<id>.faults.*` counters.
    last_recovery_stats: RecoveryStats,
    /// The registry this node's counters were re-homed into, kept so a
    /// crash restart can re-home the rebuilt ordering protocol's counters
    /// under the same names (the registry re-uses counters by name, so
    /// cumulative values survive the restart).
    metrics_registry: Option<std::sync::Arc<Registry>>,
    batches_committed: Counter,
    executors_spawned: Counter,
    requests_forwarded: Counter,
    rejected_txns: Counter,
    wal_appends: Counter,
    snapshot_bytes: Counter,
    replay_batches: Counter,
    state_transfers: Counter,
    region_outages_detected: Counter,
    bad_state_responses: Counter,
    state_request_retries: Counter,
    catch_ups: Counter,
}

impl ShimNode {
    /// Creates a shim node around an ordering protocol instance.
    #[must_use]
    pub fn new(
        me: NodeId,
        config: SystemConfig,
        crypto: CryptoHandle,
        ordering: Box<dyn OrderingProtocol + Send>,
    ) -> Self {
        let max_wait = sbft_types::SimDuration::from_millis(5);
        // The ordering-time shard planner needs declared read-write sets
        // (to classify before execution) and more than one shard (to
        // have somewhere to route).
        let lane_router = (matches!(config.conflict_handling, ConflictHandling::KnownRwSets)
            && config.sharding.num_shards > 1
            && config.sharding.ordering_lanes)
            .then(|| ShardRouter::new(config.sharding.num_shards));
        let batcher = match &lane_router {
            Some(router) => {
                Batcher::with_shard_lanes(config.workload.batch_size, max_wait, router.num_shards())
            }
            None => Batcher::new(config.workload.batch_size, max_wait),
        };
        // Plan-aware spawn placement needs geo-partitioned storage (the
        // shard → home-region map) and the placement knob left on; the
        // partition is re-derived from the shared configuration, never
        // communicated.
        let invoker = match config
            .sharding
            .pinned_placement
            .then(|| config.region_partition())
            .flatten()
        {
            Some(partition) => Invoker::new(me, config.regions.clone()).with_partition(partition),
            None => Invoker::new(me, config.regions.clone()),
        };
        let planner = matches!(config.conflict_handling, ConflictHandling::KnownRwSets)
            .then(BestEffortPlanner::new);
        let wal = config
            .durability
            .enabled
            .then(|| Box::new(MemWal::new()) as Box<dyn WriteAheadLog>);
        ShimNode {
            me,
            config,
            crypto,
            ordering,
            batcher,
            invoker,
            planner,
            lane_router,
            committed: BTreeMap::new(),
            seen_txns: std::collections::HashMap::new(),
            validated_txns: BTreeMap::new(),
            pending_seen: BTreeMap::new(),
            max_validated: SeqNum(0),
            seen_gc_floor: SeqNum(0),
            retransmit_view: std::collections::HashMap::new(),
            wal,
            last_snapshot: SeqNum(0),
            recovering: false,
            last_recovery_stats: RecoveryStats::default(),
            metrics_registry: None,
            batches_committed: Counter::new(),
            executors_spawned: Counter::new(),
            requests_forwarded: Counter::new(),
            rejected_txns: Counter::new(),
            wal_appends: Counter::new(),
            snapshot_bytes: Counter::new(),
            replay_batches: Counter::new(),
            state_transfers: Counter::new(),
            region_outages_detected: Counter::new(),
            bad_state_responses: Counter::new(),
            state_request_retries: Counter::new(),
            catch_ups: Counter::new(),
        }
    }

    /// Replaces the write-ahead log backend (the thread runtime attaches
    /// a [`sbft_durability::FileWal`] here). Implies durability even if
    /// the configuration left it off.
    pub fn attach_wal(&mut self, wal: Box<dyn WriteAheadLog>) {
        self.wal = Some(wal);
    }

    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Whether this node is the primary of the current view.
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.ordering.is_primary()
    }

    /// The primary of the current view.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.ordering.primary()
    }

    /// The ordering protocol's current view.
    #[must_use]
    pub fn view(&self) -> ViewNumber {
        self.ordering.view()
    }

    /// Name of the ordering protocol in use ("PBFT", "CFT", "NoShim").
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        self.ordering.name()
    }

    /// Batches this node has committed locally.
    #[must_use]
    pub fn batches_committed(&self) -> u64 {
        self.batches_committed.get()
    }

    /// Executors this node has spawned (and will be reimbursed for).
    #[must_use]
    pub fn executors_spawned(&self) -> u64 {
        self.executors_spawned.get()
    }

    /// Client requests this node forwarded to the primary.
    #[must_use]
    pub fn requests_forwarded(&self) -> u64 {
        self.requests_forwarded.get()
    }

    /// Transactions rejected by the batch aggregate-signature check (the
    /// bisecting fallback pruned them before ordering).
    #[must_use]
    pub fn rejected_txns(&self) -> u64 {
        self.rejected_txns.get()
    }

    /// Re-homes this node's counters (and its batcher's and invoker's)
    /// into `registry` under `shim.<id>.*`. Called once by the system
    /// builder; nodes constructed without a registry keep standalone
    /// counters.
    pub fn register_metrics(&mut self, registry: &std::sync::Arc<Registry>) {
        self.metrics_registry = Some(std::sync::Arc::clone(registry));
        let id = self.id().0;
        self.batches_committed = registry.counter(&format!("shim.{id}.batches_committed"));
        self.executors_spawned = registry.counter(&format!("shim.{id}.executors_spawned"));
        self.requests_forwarded = registry.counter(&format!("shim.{id}.requests_forwarded"));
        self.rejected_txns = registry.counter(&format!("shim.{id}.rejected_txns"));
        self.wal_appends = registry.counter(&format!("shim.{id}.durability.wal_appends"));
        self.snapshot_bytes = registry.counter(&format!("shim.{id}.durability.snapshot_bytes"));
        self.replay_batches = registry.counter(&format!("shim.{id}.durability.replay_batches"));
        self.state_transfers =
            registry.counter(&format!("shim.{id}.durability.state_transfer_batches"));
        self.region_outages_detected =
            registry.counter(&format!("shim.{id}.region_outages_detected"));
        self.bad_state_responses =
            registry.counter(&format!("shim.{id}.faults.bad_state_responses"));
        self.state_request_retries =
            registry.counter(&format!("shim.{id}.faults.state_request_retries"));
        self.catch_ups = registry.counter(&format!("shim.{id}.faults.catch_ups"));
        self.batcher
            .register_metrics(registry, &format!("shim.{id}"));
        self.invoker.register_metrics(registry);
        self.ordering
            .register_metrics(registry, &format!("shim.{id}"));
    }

    /// Records appended to the write-ahead log.
    #[must_use]
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.get()
    }

    /// Bytes reclaimed by snapshot truncation.
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes.get()
    }

    /// Committed batches re-seated from WAL replay after a crash restart.
    #[must_use]
    pub fn replay_batches(&self) -> u64 {
        self.replay_batches.get()
    }

    /// Committed batches adopted from peer state transfer after a crash
    /// restart.
    #[must_use]
    pub fn state_transfers(&self) -> u64 {
        self.state_transfers.get()
    }

    /// Region outages this node detected reactively from rejected spawns.
    #[must_use]
    pub fn region_outages_detected(&self) -> u64 {
        self.region_outages_detected.get()
    }

    /// Garbage `STATERESPONSE` entries this node rejected during recovery
    /// (bad certificate, digest mismatch, stale view).
    #[must_use]
    pub fn bad_state_responses(&self) -> u64 {
        self.bad_state_responses.get()
    }

    /// `STATEREQUEST` retransmissions this node sent while recovering.
    #[must_use]
    pub fn state_request_retries(&self) -> u64 {
        self.state_request_retries.get()
    }

    /// Checkpoint catch-ups: recoveries that adopted a peer's snapshot
    /// floor because this node's log floor fell below peer retention.
    #[must_use]
    pub fn catch_ups(&self) -> u64 {
        self.catch_ups.get()
    }

    /// Whether this node is still mid-recovery (restarted but its peer
    /// state transfer has not completed yet).
    #[must_use]
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Sequence number of the last snapshot cut into the WAL.
    #[must_use]
    pub fn last_snapshot(&self) -> SeqNum {
        self.last_snapshot
    }

    /// Durable (synced) records currently retained in the WAL, when one
    /// is attached (tests and memory accounting).
    #[must_use]
    pub fn wal_durable_len(&self) -> Option<usize> {
        self.wal.as_ref().map(|w| w.durable_len())
    }

    /// Entries currently held in the duplicate-suppression set (tests and
    /// memory accounting).
    #[must_use]
    pub fn seen_txns_len(&self) -> usize {
        self.seen_txns.len()
    }

    /// Digest proposals still waiting for transaction bodies (empty when
    /// digest proposals are off or the protocol has no digest mode).
    #[must_use]
    pub fn pending_reconstructions(&self) -> Vec<SeqNum> {
        self.ordering.pending_reconstructions()
    }

    /// Transaction bodies cached for digest reconstruction (tests and
    /// memory accounting).
    #[must_use]
    pub fn cached_bodies(&self) -> usize {
        self.ordering.cached_bodies()
    }

    /// The batch this node committed at `seq`, while it is still tracked
    /// (entries are released to `validated_txns` once the verifier reports
    /// the batch validated). Lets equivalence tests compare committed
    /// content across proposal modes without a wire-level batch copy.
    #[must_use]
    pub fn committed_batch(&self, seq: SeqNum) -> Option<&sbft_types::Batch> {
        self.committed.get(&seq).map(|e| &e.batch)
    }

    /// Whether this node runs the ordering-time shard planner (per-shard
    /// batching lanes).
    #[must_use]
    pub fn ordering_lanes_active(&self) -> bool {
        self.lane_router.is_some()
    }

    /// Executors this node placed by pinning (geo placement).
    #[must_use]
    pub fn pinned_spawns(&self) -> u64 {
        self.invoker.pinned_spawns()
    }

    /// Batches whose pin was refused and fell back to the rotation.
    #[must_use]
    pub fn placement_fallbacks(&self) -> u64 {
        self.invoker.placement_fallbacks()
    }

    /// Informs this node's invoker that a cloud region is offline
    /// (a [`sbft_serverless::RegionOutage`] observed by the deployment);
    /// placement avoids the region until it recovers.
    pub fn mark_region_down(&mut self, region: sbft_types::Region) {
        self.invoker.mark_region_down(region);
    }

    /// Informs this node's invoker that a region has recovered.
    pub fn mark_region_up(&mut self, region: sbft_types::Region) {
        self.invoker.mark_region_up(region);
    }

    fn component(&self) -> ComponentId {
        ComponentId::Node(self.me)
    }

    // ---- client requests and batching ---------------------------------------

    /// Handles a signed client request (Figure 3, primary role).
    ///
    /// The primary does **not** verify the client signature here: the
    /// request's memoized signing digest and signature ride into the
    /// batcher, and the whole batch is authenticated with one aggregate
    /// check when it is submitted for ordering (see
    /// [`SignedBatch::verify_and_prune`]). A non-primary node still
    /// verifies eagerly before forwarding — that path is off the hot loop
    /// (it only runs right after view changes) and keeps forged traffic
    /// from being relayed.
    pub fn on_client_request(&mut self, req: &ClientRequest, now: SimTime) -> Vec<Action> {
        let digest = ClientRequest::signing_digest(&req.txn);
        if !self.is_primary() {
            if !self.crypto.verify(
                ComponentId::Client(req.txn.id.client),
                &digest,
                &req.signature,
            ) {
                return Vec::new(); // not well-formed
            }
            if self.config.digest_proposals {
                // Bandwidth-frugal ordering: clients broadcast their
                // requests to every shim node, so a non-primary seeds its
                // body cache instead of relaying to the primary. The offer
                // may complete an in-flight digest reconstruction (the
                // proposal can race ahead of the client broadcast), in
                // which case consensus actions come back.
                let actions = self.ordering.offer_body(req.txn.clone());
                return self.translate(actions);
            }
            // Clients normally target the primary; a node that is not the
            // primary forwards the request (e.g. after a view change).
            self.requests_forwarded.inc();
            return vec![Action::send(
                self.component(),
                Destination::Node(self.primary()),
                ProtocolMessage::ClientRequest(req.clone()),
            )];
        }
        self.order_transaction(req.txn.clone(), digest, req.signature, now)
    }

    /// Places a transaction in the ordering pipeline (primary only),
    /// skipping transactions this node has already batched. The signing
    /// digest and client signature travel with the transaction so the
    /// batch can be authenticated in aggregate at submit time.
    fn order_transaction(
        &mut self,
        txn: sbft_types::Transaction,
        digest: sbft_types::Digest,
        signature: sbft_types::Signature,
        now: SimTime,
    ) -> Vec<Action> {
        let mut newly_seen = false;
        match self.seen_txns.entry(txn.id) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let (stored_sig, stored_digest) = *entry.get();
                if stored_sig == signature {
                    // Client retry or forwarded ERROR: already batched.
                    return Vec::new();
                }
                // Same id, different signature. Two eager checks (cold
                // path, only on conflicting duplicates) resolve it: if
                // the batched entry is validly signed it keeps the id —
                // a client producing a second validly-signed payload
                // under the same id is equivocating, and the first
                // submission wins, exactly as under eager verification.
                // Otherwise the batched entry was a forged squatter: a
                // valid newcomer takes over the id and is batched too
                // (the forgery will be pruned by the aggregate check).
                let client = ComponentId::Client(txn.id.client);
                if self.crypto.verify(client, &stored_digest, &stored_sig) {
                    return Vec::new();
                }
                if !self.crypto.verify(client, &digest, &signature) {
                    return Vec::new();
                }
                entry.insert((signature, digest));
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert((signature, digest));
                newly_seen = true;
            }
        }
        if newly_seen {
            // Stamp the id for the never-validated expiry (see
            // `pending_seen`): if its batch is lost before validation,
            // the id is reclaimed once the GC cutoff passes this stamp.
            self.pending_seen
                .entry(self.max_validated)
                .or_default()
                .push(txn.id);
        }
        let mut offered_actions = Vec::new();
        if self.config.digest_proposals && newly_seen {
            // The primary caches the body too: if the view changes before
            // this transaction is proposed, the new primary's digest
            // proposal finds the body locally instead of fetching it.
            let actions = self.ordering.offer_body(txn.clone());
            offered_actions = self.translate(actions);
        }
        // Ordering-time shard planning: classify the transaction's
        // declared read-write set and steer it into its home lane.
        let plan = match &self.lane_router {
            Some(router) => home_shard(&txn, router),
            None => ShardPlan::Unplanned,
        };
        if !self.config.batching_enabled {
            let mut out = offered_actions;
            out.extend(
                self.submit_signed(SignedBatch::single_planned(txn, digest, signature, plan)),
            );
            return out;
        }
        let mut out = offered_actions;
        if let Some(batch) = self.batcher.push_planned(txn, digest, signature, now, plan) {
            out.extend(self.submit_signed(batch));
        }
        out
    }

    /// Periodic tick releasing partially filled batches (every stale
    /// lane releases independently).
    pub fn poll_batcher(&mut self, now: SimTime) -> Vec<Action> {
        if !self.is_primary() {
            return Vec::new();
        }
        let mut actions = Vec::new();
        while let Some(batch) = self.batcher.poll(now) {
            actions.extend(self.submit_signed(batch));
        }
        actions
    }

    /// The primary's batch-submit path: one aggregate signature check
    /// authenticates the whole batch; offenders found by the bisecting
    /// fallback are pruned (and released from duplicate suppression, so an
    /// honest request with the same transaction id can still be ordered),
    /// and whatever survives is handed to the ordering protocol.
    fn submit_signed(&mut self, signed: SignedBatch) -> Vec<Action> {
        let plan = signed.plan();
        let (batch, rejected) = signed.verify_and_prune(self.crypto.provider());
        if !rejected.is_empty() {
            self.rejected_txns.add(rejected.len() as u64);
            for (txn, forged_sig) in &rejected {
                // Release the id only if the forged signature still owns
                // it — a valid request that took over the entry in the
                // meantime keeps its duplicate suppression.
                if self.seen_txns.get(txn).map(|(sig, _)| sig) == Some(forged_sig) {
                    self.seen_txns.remove(txn);
                }
            }
        }
        let Some(batch) = batch else {
            return Vec::new(); // nothing survived the signature check
        };
        let consensus_actions = self.ordering.submit_batch(batch, plan);
        self.translate(consensus_actions)
    }

    // ---- consensus plumbing ---------------------------------------------------

    /// Handles a consensus message from another shim node.
    pub fn on_consensus_message(&mut self, from: NodeId, msg: ConsensusMessage) -> Vec<Action> {
        let is_state_response = matches!(msg, ConsensusMessage::StateResponse(_));
        let actions = self.ordering.handle_message(from, msg);
        let mut transfer_done = false;
        if is_state_response {
            let adopted = actions
                .iter()
                .filter(|a| matches!(a, ConsensusAction::Committed { .. }))
                .count();
            self.state_transfers.add(adopted as u64);
            transfer_done = adopted > 0
                || actions
                    .iter()
                    .any(|a| matches!(a, ConsensusAction::CaughtUp { .. }));
        }
        let out = self.translate(actions);
        if transfer_done {
            self.recovering = false;
        }
        self.sync_recovery_counters();
        out
    }

    /// Diffs the ordering protocol's cumulative adversarial-recovery
    /// counters into this node's registry counters. Called after every
    /// consensus message and consensus timer.
    fn sync_recovery_counters(&mut self) {
        let stats = self.ordering.recovery_stats();
        let prev = self.last_recovery_stats;
        self.bad_state_responses.add(
            stats
                .bad_state_responses
                .saturating_sub(prev.bad_state_responses),
        );
        self.state_request_retries.add(
            stats
                .state_request_retries
                .saturating_sub(prev.state_request_retries),
        );
        self.catch_ups
            .add(stats.catch_ups.saturating_sub(prev.catch_ups));
        self.last_recovery_stats = stats;
    }

    fn translate(&mut self, actions: Vec<ConsensusAction>) -> Vec<Action> {
        let mut out = Vec::new();
        for action in actions {
            match action {
                ConsensusAction::Broadcast(msg) => {
                    // The durable-vote rule: the WAL write (synced for
                    // COMMIT votes) is charged before the send leaves.
                    out.extend(self.wal_on_broadcast(&msg));
                    out.push(Action::send(
                        self.component(),
                        Destination::AllNodes,
                        ProtocolMessage::Consensus(msg),
                    ));
                }
                ConsensusAction::Send(to, msg) => out.push(Action::send(
                    self.component(),
                    Destination::Node(to),
                    ProtocolMessage::Consensus(msg),
                )),
                ConsensusAction::StartTimer { timer, duration } => out.push(Action::StartTimer {
                    timer: ProtocolTimer::Consensus(timer),
                    duration,
                }),
                ConsensusAction::CancelTimer(timer) => {
                    out.push(Action::CancelTimer(ProtocolTimer::Consensus(timer)));
                }
                ConsensusAction::Committed {
                    view,
                    seq,
                    batch,
                    plan,
                    certificate,
                } => {
                    out.extend(self.wal_on_committed(
                        view,
                        seq,
                        &batch,
                        plan,
                        certificate.as_ref(),
                    ));
                    out.extend(self.on_committed(view, seq, batch, plan, certificate));
                }
                ConsensusAction::ViewInstalled { view, .. } => {
                    out.extend(self.wal_on_view_installed(view));
                    out.extend(self.on_view_installed());
                }
                ConsensusAction::CaughtUp { up_to } => {
                    out.extend(self.wal_on_caught_up(up_to));
                }
            }
        }
        out
    }

    // ---- durability -----------------------------------------------------------

    /// Logs outgoing protocol steps that must survive a crash: a released
    /// proposal (buffered — it is recoverable from peers) and this node's
    /// COMMIT vote (synced — the vote must not be forgotten once sent,
    /// or a restarted replica could vote differently in the same view).
    fn wal_on_broadcast(&mut self, msg: &ConsensusMessage) -> Vec<Action> {
        let Some(wal) = self.wal.as_mut() else {
            return Vec::new();
        };
        match msg {
            ConsensusMessage::PrePrepare(pp) => {
                let bytes = wal.append(&WalRecord::Released {
                    seq: pp.seq,
                    view: pp.view,
                    digest: pp.digest,
                });
                self.wal_appends.inc();
                vec![Action::Persist {
                    bytes,
                    fsync: false,
                }]
            }
            // A digest proposal releases the batch just like a full one —
            // the WAL records the same (seq, view, digest) triple; the
            // bodies are recoverable from peers either way.
            ConsensusMessage::DigestPrePrepare(dp) => {
                let bytes = wal.append(&WalRecord::Released {
                    seq: dp.seq,
                    view: dp.view,
                    digest: dp.digest,
                });
                self.wal_appends.inc();
                vec![Action::Persist {
                    bytes,
                    fsync: false,
                }]
            }
            ConsensusMessage::Commit(c) => {
                let bytes = wal.append(&WalRecord::Vote {
                    seq: c.seq,
                    view: c.view,
                    digest: c.digest,
                });
                wal.sync();
                self.wal_appends.inc();
                vec![Action::Persist { bytes, fsync: true }]
            }
            _ => Vec::new(),
        }
    }

    /// Logs a locally committed batch (with its certificate) and, at the
    /// featherweight-checkpoint rhythm, cuts a snapshot: a synced
    /// `SnapshotMark` after which the log below the mark is truncated.
    fn wal_on_committed(
        &mut self,
        view: ViewNumber,
        seq: SeqNum,
        batch: &Batch,
        plan: ShardPlan,
        certificate: Option<&Arc<CommitCertificate>>,
    ) -> Vec<Action> {
        let Some(wal) = self.wal.as_mut() else {
            return Vec::new();
        };
        // Baselines without certificates (CFT / NoShim) have no recovery
        // path; only certified commits are worth making durable.
        let Some(cert) = certificate else {
            return Vec::new();
        };
        let mut bytes = wal.append(&WalRecord::Committed {
            seq,
            view,
            plan,
            batch: batch.clone(),
            certificate: Arc::clone(cert),
        });
        self.wal_appends.inc();
        let interval = self.config.durability.snapshot_interval;
        if interval > 0 && seq.0 >= self.last_snapshot.0 + interval {
            bytes += wal.append(&WalRecord::SnapshotMark { upto: seq, view });
            self.wal_appends.inc();
            wal.sync();
            let dropped = wal.truncate_below(seq);
            self.last_snapshot = seq;
            self.snapshot_bytes.add(dropped);
        } else {
            wal.sync();
        }
        vec![Action::Persist { bytes, fsync: true }]
    }

    /// A recovering node adopted a peer's checkpoint floor: cut a snapshot
    /// at the adopted floor so the durable log agrees with the in-memory
    /// state the catch-up installed. Gated on [`Self::is_recovering`] so the
    /// nodes-in-dark `CaughtUp` path (which never lost its WAL) keeps its
    /// normal checkpoint rhythm.
    fn wal_on_caught_up(&mut self, up_to: SeqNum) -> Vec<Action> {
        if !self.recovering || up_to <= self.last_snapshot {
            return Vec::new();
        }
        let view = self.ordering.view();
        let Some(wal) = self.wal.as_mut() else {
            return Vec::new();
        };
        let bytes = wal.append(&WalRecord::SnapshotMark { upto: up_to, view });
        self.wal_appends.inc();
        wal.sync();
        let dropped = wal.truncate_below(up_to);
        self.snapshot_bytes.add(dropped);
        self.last_snapshot = up_to;
        self.max_validated = self.max_validated.max(up_to);
        vec![Action::Persist { bytes, fsync: true }]
    }

    /// Logs an installed view (buffered: losing it only costs rejoining
    /// in an older view, which the state transfer corrects).
    fn wal_on_view_installed(&mut self, view: ViewNumber) -> Vec<Action> {
        let Some(wal) = self.wal.as_mut() else {
            return Vec::new();
        };
        let bytes = wal.append(&WalRecord::ViewInstalled { view });
        self.wal_appends.inc();
        vec![Action::Persist {
            bytes,
            fsync: false,
        }]
    }

    /// Simulates the process dying: the unsynced WAL tail is lost. The
    /// volatile state is discarded by [`Self::crash_restart`]; between the
    /// two calls the node must receive no messages or timers.
    pub fn crash(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            wal.lose_unsynced();
        }
    }

    /// Restarts this node after a crash: all volatile state is discarded,
    /// the ordering protocol is rebuilt, and the durable log is replayed
    /// through [`recover`]. Returns the replay-cost [`Action::Persist`]
    /// followed by the rejoin actions (for PBFT, a broadcast
    /// `STATEREQUEST` for the suffix committed while this node was down).
    pub fn crash_restart(&mut self) -> Vec<Action> {
        let max_wait = sbft_types::SimDuration::from_millis(5);
        self.batcher = match &self.lane_router {
            Some(router) => Batcher::with_shard_lanes(
                self.config.workload.batch_size,
                max_wait,
                router.num_shards(),
            ),
            None => Batcher::new(self.config.workload.batch_size, max_wait),
        };
        self.committed.clear();
        self.seen_txns.clear();
        self.validated_txns.clear();
        self.pending_seen.clear();
        self.retransmit_view.clear();
        self.max_validated = SeqNum(0);
        self.seen_gc_floor = SeqNum(0);
        self.last_snapshot = SeqNum(0);
        if self.planner.is_some() {
            self.planner = Some(BestEffortPlanner::new());
        }
        if self.ordering.name() == "PBFT" {
            self.ordering = Box::new(
                PbftReplica::new(
                    self.me,
                    self.config.fault,
                    self.crypto.provider().handle(self.component()),
                    self.config.timers.node_timeout,
                    self.config.timers.checkpoint_interval,
                )
                .with_digest_proposals(self.config.digest_proposals),
            );
            if let Some(registry) = self.metrics_registry.clone() {
                self.ordering
                    .register_metrics(&registry, &format!("shim.{}", self.me.0));
            }
        }
        let Some(wal) = self.wal.as_mut() else {
            return Vec::new();
        };
        self.recovering = true;
        self.last_recovery_stats = RecoveryStats::default();
        let records = wal.replay();
        let replay_bytes: u64 = records
            .iter()
            .map(|r| wal_codec::encode(r).len() as u64)
            .sum();
        let state = recover(&records);
        self.replay_batches.add(state.entries.len() as u64);
        self.last_snapshot = state.stable_seq;
        self.max_validated = state.stable_seq;
        for e in &state.entries {
            // Re-seated as already spawned: this node acted on the commit
            // before crashing, and the verifier's ERROR path re-triggers
            // a spawn if the executors were in fact lost with it.
            self.committed.insert(
                e.seq,
                CommittedBatch {
                    view: e.view,
                    batch: e.batch.clone(),
                    certificate: Arc::clone(&e.certificate),
                    plan: e.plan,
                    spawned: true,
                },
            );
        }
        let mut actions = vec![Action::Persist {
            bytes: replay_bytes,
            fsync: false,
        }];
        let rejoin = self
            .ordering
            .install_recovered(state.entries, state.stable_seq, state.view);
        actions.extend(self.translate(rejoin));
        actions
    }

    /// Reactive region-outage detection: the deployment rejected a spawn
    /// because `region` is offline. The invoker marks the region down
    /// locally and a probation timer is started; when it fires the region
    /// is marked back up (and re-probed by the next placement there).
    pub fn on_spawn_rejected(&mut self, region: sbft_types::Region) -> Vec<Action> {
        if self.invoker.is_region_down(region) {
            return Vec::new();
        }
        self.invoker.mark_region_down(region);
        self.region_outages_detected.inc();
        vec![Action::StartTimer {
            timer: ProtocolTimer::RegionProbation(region),
            duration: self.config.timers.region_probation,
        }]
    }

    fn on_committed(
        &mut self,
        view: ViewNumber,
        seq: SeqNum,
        batch: Batch,
        plan: ShardPlan,
        certificate: Option<Arc<CommitCertificate>>,
    ) -> Vec<Action> {
        self.batches_committed.inc();
        let len = batch.len();
        // Baseline protocols (CFT / NoShim) produce no certificate; an
        // empty certificate stands in so the message flow stays identical
        // (executors and the verifier are configured with a quorum of 0).
        let certificate = certificate.unwrap_or_else(|| {
            Arc::new(CommitCertificate::new(
                view,
                seq,
                sbft_consensus::messages::batch_digest(&batch),
                vec![],
            ))
        });
        self.committed.insert(
            seq,
            CommittedBatch {
                view,
                batch,
                certificate,
                plan,
                spawned: false,
            },
        );
        let mut actions = vec![Action::BatchCommitted { seq, len }];

        if !self.should_spawn() {
            return actions;
        }
        if self.planner.is_some() {
            // Known read-write sets: ask the planner which batches may be
            // dispatched without conflicting with in-flight ones.
            let footprint = {
                let entry = self.committed.get(&seq).expect("just inserted");
                let rwsets: Vec<_> = entry
                    .batch
                    .iter()
                    .map(|t| {
                        t.declared_rwset
                            .clone()
                            .unwrap_or_else(|| t.inferred_rwset())
                    })
                    .collect();
                BatchFootprint::from_rwsets(rwsets.iter())
            };
            let ready = self
                .planner
                .as_mut()
                .expect("planner present")
                .enqueue(seq, footprint);
            for ready_seq in ready {
                actions.extend(self.spawn_for(ready_seq));
            }
        } else {
            actions.extend(self.spawn_for(seq));
        }
        actions
    }

    fn should_spawn(&self) -> bool {
        match self.config.spawning {
            SpawningMode::PrimaryOnly => self.is_primary(),
            SpawningMode::Decentralized => true,
        }
    }

    /// How many executors this node spawns per committed batch.
    fn spawn_count(&self) -> usize {
        match self.config.spawning {
            SpawningMode::PrimaryOnly => self.config.executors_per_batch(),
            SpawningMode::Decentralized => self.config.fault.decentralized_spawn_count(),
        }
    }

    fn spawn_for(&mut self, seq: SeqNum) -> Vec<Action> {
        let count = self.spawn_count();
        let Some(entry) = self.committed.get_mut(&seq) else {
            return Vec::new();
        };
        if entry.spawned {
            return Vec::new();
        }
        entry.spawned = true;
        let digest = entry.certificate.batch_digest;
        let signing = ExecuteRequest::signing_digest(entry.view, seq, &digest, self.me);
        // Both clones below are refcount bumps; the per-executor clone of
        // `execute` in the loop shares them too.
        let execute = ExecuteRequest {
            view: entry.view,
            seq,
            digest,
            batch: entry.batch.clone(),
            certificate: Arc::clone(&entry.certificate),
            plan: entry.plan,
            spawner: self.me,
            signature: self.crypto.sign(&signing),
        };
        // Plan-aware placement: a SingleHome tag pins this batch's
        // executors to its shard's home region (with deterministic
        // round-robin fallback); cross-home and untagged batches rotate.
        let plan = self.invoker.plan_placed(seq, count, entry.plan);
        self.executors_spawned.add(plan.requests.len() as u64);
        plan.requests
            .into_iter()
            .map(|request| Action::SpawnExecutor {
                request,
                execute: execute.clone(),
            })
            .collect()
    }

    /// When this node becomes the primary of a new view it re-spawns
    /// executors for every batch that committed but was never validated by
    /// the verifier (otherwise a view change could leave committed batches
    /// stranded without executors).
    fn on_view_installed(&mut self) -> Vec<Action> {
        if !self.is_primary() {
            return Vec::new();
        }
        let stranded: Vec<SeqNum> = self
            .committed
            .iter()
            .filter(|(_, e)| !e.spawned)
            .map(|(s, _)| *s)
            .collect();
        let mut actions = Vec::new();
        for seq in stranded {
            actions.extend(self.spawn_for(seq));
        }
        actions
    }

    // ---- verifier-driven recovery -----------------------------------------------

    /// Handles messages from the verifier (Figure 4, node role) and other
    /// non-consensus messages.
    pub fn on_message(&mut self, msg: &ProtocolMessage) -> Vec<Action> {
        self.on_message_at(msg, SimTime::ZERO)
    }

    /// Like [`Self::on_message`] but with the current time, needed when the
    /// message may cause the primary to batch a carried client request.
    pub fn on_message_at(&mut self, msg: &ProtocolMessage, now: SimTime) -> Vec<Action> {
        match msg {
            ProtocolMessage::Error(err) => {
                if self.is_primary() {
                    // The onus is on the primary to resolve the ERROR: order
                    // the carried request (missing transaction case) or
                    // re-spawn executors for the missing sequence number.
                    return match (&err.subject, &err.request) {
                        (RecoverySubject::Txn(_), Some(request)) => {
                            // The carried request joins the batch like any
                            // other; the aggregate check covers it.
                            let digest = ClientRequest::signing_digest(&request.txn);
                            self.order_transaction(
                                request.txn.clone(),
                                digest,
                                request.signature,
                                now,
                            )
                        }
                        (RecoverySubject::Seq(seq), _) => self.respawn(*seq),
                        _ => Vec::new(),
                    };
                }
                // Start the re-transmission timer Υ and forward the ERROR to
                // the primary.
                self.retransmit_view.insert(err.subject, self.view());
                vec![
                    Action::StartTimer {
                        timer: ProtocolTimer::Retransmit(err.subject),
                        duration: self.config.timers.retransmit_timeout,
                    },
                    Action::send(
                        self.component(),
                        Destination::Node(self.primary()),
                        ProtocolMessage::Error(err.clone()),
                    ),
                ]
            }
            ProtocolMessage::Ack(ack) => {
                vec![Action::CancelTimer(ProtocolTimer::Retransmit(ack.subject))]
            }
            ProtocolMessage::Replace(_) => {
                let actions = self.ordering.request_view_change();
                self.translate(actions)
            }
            ProtocolMessage::BatchValidated(validated) => self.on_batch_validated(*validated),
            _ => Vec::new(),
        }
    }

    /// Re-spawns executors for a batch this node committed but whose
    /// execution never completed at the verifier (missing `k_max`).
    fn respawn(&mut self, seq: SeqNum) -> Vec<Action> {
        if let Some(entry) = self.committed.get_mut(&seq) {
            entry.spawned = false;
        }
        if self.should_spawn() {
            self.spawn_for(seq)
        } else {
            Vec::new()
        }
    }

    fn on_batch_validated(&mut self, validated: BatchValidated) -> Vec<Action> {
        if let Some(entry) = self.committed.remove(&validated.seq) {
            // Remember which transaction ids this batch retired so the
            // duplicate-suppression set can be truncated once the batch
            // leaves the retained checkpoint window.
            self.validated_txns
                .insert(validated.seq, entry.batch.txn_ids());
        }
        self.max_validated = self.max_validated.max(validated.seq);
        self.gc_seen_txns();
        let ready = match &mut self.planner {
            Some(planner) => planner.complete(validated.seq),
            None => Vec::new(),
        };
        let mut actions = Vec::new();
        if self.should_spawn() {
            for seq in ready {
                actions.extend(self.spawn_for(seq));
            }
        }
        actions
    }

    /// Truncates `seen_txns` in the rhythm of the featherweight checkpoint
    /// interval, exactly like the verifier truncates its `responded` /
    /// `txn_location` maps: entries of batches at or below the previous
    /// checkpoint (one closed interval behind the latest one validation
    /// passed) are dropped. Duplicates inside the retained window are
    /// still suppressed; anything older is outside the protocol's retry
    /// contract (the verifier has dropped its stored `RESPONSE` for them
    /// in the same rhythm).
    fn gc_seen_txns(&mut self) {
        let interval = self.config.timers.checkpoint_interval;
        if interval == 0 {
            return;
        }
        let stable = (self.max_validated.0 / interval) * interval;
        let cutoff = SeqNum(stable.saturating_sub(interval));
        if cutoff <= self.seen_gc_floor {
            return;
        }
        self.seen_gc_floor = cutoff;
        let retained = self.validated_txns.split_off(&SeqNum(cutoff.0 + 1));
        let dropped = std::mem::replace(&mut self.validated_txns, retained);
        for txns in dropped.values() {
            for txn in txns {
                self.seen_txns.remove(txn);
            }
        }
        self.expire_never_validated(cutoff);
        if self.config.digest_proposals {
            // Body-cache retention rides the same checkpoint rhythm: keep
            // bodies for ids the node still tracks (suppression window,
            // retained validated batches, local commits, batcher lanes);
            // anything older can no longer appear in a fresh proposal, and
            // an unlucky drop just downgrades a cache hit to a fetch.
            let protected: std::collections::HashSet<TxnId> = self
                .seen_txns
                .keys()
                .copied()
                .chain(self.validated_txns.values().flatten().copied())
                .chain(self.committed.values().flat_map(|e| e.batch.txn_ids()))
                .chain(self.batcher.pending_txn_ids())
                .collect();
            self.ordering.gc_bodies(&protected);
        }
    }

    /// Expires duplicate-suppression entries whose batch never received a
    /// `BatchValidated`: every id stamped (in `pending_seen`) at or below
    /// the GC cutoff — i.e. batched at least two checkpoint intervals of
    /// validated progress ago — is reclaimed, *unless* a tracked batch
    /// still accounts for it (a retained validated batch, released by the
    /// regular truncation instead, or a locally committed batch that may
    /// yet validate or be re-spawned; those ids are re-stamped and
    /// reconsidered at a later cutoff). What remains are the genuinely
    /// leaked ids: batched, then lost before commit — e.g. a proposal
    /// dropped across a view change without re-proposal — which
    /// previously accumulated forever.
    fn expire_never_validated(&mut self, cutoff: SeqNum) {
        let expired_stamps = {
            let rest = self.pending_seen.split_off(&SeqNum(cutoff.0 + 1));
            std::mem::replace(&mut self.pending_seen, rest)
        };
        if expired_stamps.is_empty() {
            return;
        }
        let protected: std::collections::HashSet<TxnId> = self
            .validated_txns
            .values()
            .flatten()
            .copied()
            .chain(self.committed.values().flat_map(|e| e.batch.txn_ids()))
            .chain(self.batcher.pending_txn_ids())
            .collect();
        let mut restamped = Vec::new();
        for ids in expired_stamps.into_values() {
            for id in ids {
                if protected.contains(&id) {
                    restamped.push(id);
                } else {
                    self.seen_txns.remove(&id);
                }
            }
        }
        if !restamped.is_empty() {
            self.pending_seen
                .entry(self.max_validated)
                .or_default()
                .extend(restamped);
        }
    }

    /// Handles the expiry of a timer owned by this node.
    pub fn on_timer(&mut self, timer: ProtocolTimer, now: SimTime) -> Vec<Action> {
        match timer {
            ProtocolTimer::Consensus(t) => {
                let actions = self.ordering.handle_timer(t);
                let out = self.translate(actions);
                self.sync_recovery_counters();
                out
            }
            ProtocolTimer::Retransmit(subject) => {
                // The primary failed to resolve the verifier's ERROR before
                // Υ expired: it must be byzantine, replace it — unless the
                // primary has already been replaced since the ERROR arrived,
                // in which case the new primary gets a fresh chance.
                let started_in = self.retransmit_view.remove(&subject);
                if started_in == Some(self.view()) {
                    let actions = self.ordering.request_view_change();
                    self.translate(actions)
                } else {
                    Vec::new()
                }
            }
            ProtocolTimer::BatchPoll => self.poll_batcher(now),
            ProtocolTimer::RegionProbation(region) => {
                // Probation over: optimistically mark the region back up.
                // If it is still down the next spawn there is rejected
                // again and the cycle restarts.
                self.invoker.mark_region_up(region);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Read access to the recovery subject of a retransmit timer (tests).
    #[must_use]
    pub fn retransmit_subject(timer: &ProtocolTimer) -> Option<RecoverySubject> {
        match timer {
            ProtocolTimer::Retransmit(s) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{envelopes, ErrorMessage, ReplaceMessage};
    use sbft_consensus::{CftReplica, NoShim, PbftReplica};
    use sbft_crypto::CryptoProvider;
    use sbft_types::{ClientId, Key, Operation, Signature, Transaction, TxnId};
    use std::sync::Arc;

    struct Shim {
        nodes: Vec<ShimNode>,
        provider: Arc<CryptoProvider>,
        config: SystemConfig,
    }

    /// Default test configuration: a 4-node shim batching 2 transactions.
    fn base_config() -> SystemConfig {
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = 2;
        config
    }

    fn make_shim(config: SystemConfig) -> Shim {
        let provider = CryptoProvider::new(21);
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(PbftReplica::new(
                    NodeId(i),
                    config.fault,
                    provider.handle(ComponentId::Node(NodeId(i))),
                    config.timers.node_timeout,
                    config.timers.checkpoint_interval,
                ));
                ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                )
            })
            .collect();
        Shim {
            nodes,
            provider,
            config,
        }
    }

    fn signed_request(provider: &Arc<CryptoProvider>, client: u32, counter: u64) -> ClientRequest {
        let txn = Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::ReadModifyWrite(Key(counter), 1)],
        );
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: provider
                .handle(ComponentId::Client(ClientId(client)))
                .sign(&digest),
            txn,
        }
    }

    /// Drives consensus messages among the shim nodes until quiescence,
    /// collecting every non-consensus action per node.
    fn run_consensus(
        shim: &mut Shim,
        origin: usize,
        actions: Vec<Action>,
    ) -> Vec<(NodeId, Action)> {
        let mut external = Vec::new();
        let mut queue: std::collections::VecDeque<(usize, usize, ConsensusMessage)> =
            std::collections::VecDeque::new();
        let n = shim.nodes.len();
        let push_actions =
            |origin: usize,
             actions: Vec<Action>,
             queue: &mut std::collections::VecDeque<(usize, usize, ConsensusMessage)>,
             external: &mut Vec<(NodeId, Action)>| {
                for a in actions {
                    match &a {
                        Action::Send(env) => match (&env.to, &env.msg) {
                            (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                                for to in 0..n {
                                    if to != origin {
                                        queue.push_back((origin, to, msg.clone()));
                                    }
                                }
                            }
                            (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                                queue.push_back((origin, to.0 as usize, msg.clone()));
                            }
                            _ => external.push((NodeId(origin as u32), a.clone())),
                        },
                        _ => external.push((NodeId(origin as u32), a.clone())),
                    }
                }
            };
        push_actions(origin, actions, &mut queue, &mut external);
        while let Some((from, to, msg)) = queue.pop_front() {
            let acts = shim.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            push_actions(to, acts, &mut queue, &mut external);
        }
        external
    }

    #[test]
    fn primary_batches_requests_and_spawns_after_commit() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        // First request only fills the batcher.
        let a0 = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        assert!(a0.is_empty());
        // Second request releases a batch of 2 and starts consensus.
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        assert!(a1.iter().any(|a| a.sends_kind("PREPREPARE")));
        let external = run_consensus(&mut shim, 0, a1);
        // Only the primary spawns, and it spawns executors_per_batch of them.
        let spawns: Vec<_> = external
            .iter()
            .filter(|(n, a)| *n == NodeId(0) && matches!(a, Action::SpawnExecutor { .. }))
            .collect();
        assert_eq!(spawns.len(), shim.config.executors_per_batch());
        assert_eq!(shim.config.workload.batch_size, 2);
        let other_spawns = external
            .iter()
            .filter(|(n, a)| *n != NodeId(0) && matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(other_spawns, 0);
        // Every node observed the commit.
        let commits = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::BatchCommitted { .. }))
            .count();
        assert_eq!(commits, 4);
        assert_eq!(shim.nodes[0].executors_spawned(), 3);
    }

    #[test]
    fn execute_requests_share_batch_and_certificate_with_consensus() {
        // Zero-copy hand-off, shim layer: the batch embedded in the
        // primary's PREPREPARE and the batches carried by every spawned
        // EXECUTE message are the same Arc allocation, and all EXECUTE
        // copies share one certificate allocation.
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let proposed = a1
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("primary broadcasts a PREPREPARE");
        let external = run_consensus(&mut shim, 0, a1);
        let executes: Vec<_> = external
            .iter()
            .filter_map(|(_, a)| match a {
                Action::SpawnExecutor { execute, .. } => Some(execute.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(executes.len(), shim.config.executors_per_batch());
        for execute in &executes {
            assert!(
                execute.batch.shares_txns(&proposed),
                "EXECUTE must carry the proposed batch's storage, not a copy"
            );
            assert!(
                Arc::ptr_eq(&execute.certificate, &executes[0].certificate),
                "all EXECUTE copies share one certificate allocation"
            );
        }
        // The batch digest was computed once and is carried by the handle.
        assert_eq!(
            executes[0].batch.cached_digest(),
            Some(executes[0].certificate.batch_digest)
        );
    }

    #[test]
    fn spawned_execute_requests_verify_at_executors() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a1);
        let execute = external
            .iter()
            .find_map(|(_, a)| match a {
                Action::SpawnExecutor { execute, .. } => Some(execute.clone()),
                _ => None,
            })
            .expect("spawn action");
        // The certificate carried by the EXECUTE message verifies.
        assert!(execute
            .certificate
            .verify(shim.provider.key_store(), 3, 4)
            .is_ok());
        assert_eq!(execute.spawner, NodeId(0));
    }

    #[test]
    fn malformed_client_request_is_dropped() {
        let mut shim = make_shim(base_config());
        let mut req = signed_request(&shim.provider.clone(), 0, 0);
        req.signature = Signature::ZERO;
        assert!(shim.nodes[0]
            .on_client_request(&req, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn forged_signature_is_pruned_at_batch_submit() {
        // The primary defers client verification to the batch aggregate
        // check: a forged request is admitted to the batcher but the
        // bisecting fallback prunes it at submit, and only the honest
        // transaction is proposed.
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let mut forged = signed_request(&provider, 0, 0);
        forged.signature = Signature::ZERO;
        let forged_id = forged.txn.id;
        assert!(shim.nodes[0]
            .on_client_request(&forged, SimTime::ZERO)
            .is_empty());
        // The second (honest) request fills the batch and triggers submit.
        let actions =
            shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let proposed = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("pruned batch is still proposed");
        assert_eq!(proposed.len(), 1, "the forged transaction was pruned");
        assert!(proposed.txn_ids().iter().all(|id| *id != forged_id));
        assert_eq!(shim.nodes[0].rejected_txns(), 1);
        // The forged id was released from duplicate suppression, so the
        // honest client can still get the same transaction ordered.
        let honest_retry = signed_request(&provider, 0, 0);
        let _ = shim.nodes[0].on_client_request(&honest_retry, SimTime::ZERO);
        let actions =
            shim.nodes[0].on_client_request(&signed_request(&provider, 2, 0), SimTime::ZERO);
        let reproposed = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("second batch proposed");
        assert!(reproposed.txn_ids().contains(&forged_id));
    }

    #[test]
    fn squatted_txn_id_is_recovered_by_the_genuine_request() {
        // An attacker squats an honest client's TxnId with a garbage
        // signature before the real request arrives. The genuine request
        // (different signature) must not be silently dropped as a
        // duplicate: the conflicting-signature path verifies it eagerly,
        // batches it, and the aggregate prune removes only the forgery.
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let mut squat = signed_request(&provider, 0, 0);
        squat.signature = Signature::ZERO;
        let id = squat.txn.id;
        assert!(shim.nodes[0]
            .on_client_request(&squat, SimTime::ZERO)
            .is_empty());
        // The genuine request for the same id fills the 2-txn batch and
        // triggers submit.
        let genuine = signed_request(&provider, 0, 0);
        let actions = shim.nodes[0].on_client_request(&genuine, SimTime::ZERO);
        let proposed = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("the genuine transaction is proposed");
        assert_eq!(proposed.len(), 1);
        assert_eq!(proposed.txn_ids(), vec![id]);
        assert_eq!(shim.nodes[0].rejected_txns(), 1, "the forgery was pruned");
        // The genuine entry kept its duplicate suppression: a retry with
        // the same (valid, deterministic) signature is dropped.
        assert!(shim.nodes[0]
            .on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn equivocating_client_cannot_order_two_payloads_under_one_id() {
        // A byzantine client validly signs two *different* transactions
        // under the same TxnId. The first keeps the id (exactly as under
        // eager verification); the second — despite carrying a valid
        // signature — must be dropped, not batched alongside it.
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let first = signed_request(&provider, 0, 0);
        let first_ops = first.txn.ops.clone();
        assert!(shim.nodes[0]
            .on_client_request(&first, SimTime::ZERO)
            .is_empty());
        // Same id, different payload, genuinely signed.
        let other_txn =
            Transaction::new(TxnId::new(ClientId(0), 0), vec![Operation::Read(Key(42))]);
        let digest = ClientRequest::signing_digest(&other_txn);
        let equivocation = ClientRequest {
            signature: provider
                .handle(ComponentId::Client(ClientId(0)))
                .sign(&digest),
            txn: other_txn,
        };
        assert!(shim.nodes[0]
            .on_client_request(&equivocation, SimTime::ZERO)
            .is_empty());
        // A filler request releases the batch: it must contain the FIRST
        // payload plus the filler — the equivocation was dropped.
        let actions =
            shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let proposed = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("batch proposed");
        assert_eq!(proposed.len(), 2);
        assert_eq!(proposed.txns()[0].ops, first_ops);
        assert_eq!(shim.nodes[0].rejected_txns(), 0, "nothing was pruned");
    }

    #[test]
    fn seen_txns_truncates_at_the_checkpoint_interval() {
        // Long-run bound: a single-node CFT shim orders one batch per
        // request; feeding back BatchValidated notifications must keep the
        // duplicate-suppression set within two checkpoint intervals.
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = 1;
        config.timers.checkpoint_interval = 4;
        let provider = CryptoProvider::new(5);
        let mut node = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                sbft_types::FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                config.timers.node_timeout,
            )),
        );
        for i in 0..100u64 {
            let actions = node.on_client_request(&signed_request(&provider, 0, i), SimTime::ZERO);
            assert!(
                actions
                    .iter()
                    .any(|a| matches!(a, Action::BatchCommitted { .. })),
                "request {i} must commit immediately on the 1-node CFT shim"
            );
            let _ = node.on_message(&ProtocolMessage::BatchValidated(BatchValidated {
                seq: SeqNum(i + 1),
                committed: 1,
                aborted: 0,
            }));
            assert!(
                node.seen_txns_len() <= 2 * 4,
                "after {} batches seen_txns holds {} entries",
                i + 1,
                node.seen_txns_len()
            );
        }
        assert_eq!(node.batches_committed(), 100);
        // Entries inside the retained window still suppress duplicates …
        assert!(node
            .on_client_request(&signed_request(&provider, 0, 99), SimTime::ZERO)
            .is_empty());
        // … while a GC-ed transaction would be re-ordered (outside the
        // retry window, matching the verifier's own truncation).
        assert!(!node
            .on_client_request(&signed_request(&provider, 0, 1), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn never_validated_ids_expire_after_the_checkpoint_rhythm() {
        // A primary on a 4-node PBFT shim proposes batches whose
        // consensus never completes (no peer traffic is delivered):
        // every id lands in `seen_txns` but no `BatchValidated` will
        // ever release it. Meanwhile the verifier reports progress for
        // other proposals (re-proposed by later primaries), advancing
        // the checkpoint rhythm — the expiry must reclaim the orphaned
        // ids instead of retaining them forever.
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = 1;
        config.timers.checkpoint_interval = 4;
        let provider = CryptoProvider::new(5);
        let mut node = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(PbftReplica::new(
                NodeId(0),
                config.fault,
                provider.handle(ComponentId::Node(NodeId(0))),
                config.timers.node_timeout,
                config.timers.checkpoint_interval,
            )),
        );
        for i in 0..100u64 {
            let actions = node.on_client_request(&signed_request(&provider, 0, i), SimTime::ZERO);
            assert!(
                actions.iter().any(|a| a.sends_kind("PREPREPARE")),
                "request {i} must be proposed"
            );
            assert!(
                !actions
                    .iter()
                    .any(|a| matches!(a, Action::BatchCommitted { .. })),
                "nothing commits without a quorum"
            );
            let _ = node.on_message(&ProtocolMessage::BatchValidated(BatchValidated {
                seq: SeqNum(i + 1),
                committed: 1,
                aborted: 0,
            }));
            assert!(
                node.seen_txns_len() <= 3 * 4,
                "after {} orphaned proposals seen_txns holds {} entries",
                i + 1,
                node.seen_txns_len()
            );
        }
        // Expired ids are genuinely released: the client's retry is
        // re-ordered instead of silently dropped.
        assert!(!node
            .on_client_request(&signed_request(&provider, 0, 1), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn expiry_spares_committed_and_batcher_pending_ids() {
        // Two ids that must survive arbitrary checkpoint progress: one in
        // a locally committed (but never validated) batch, and one still
        // sitting in the batcher. Both keep their duplicate suppression.
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = 1;
        config.timers.checkpoint_interval = 4;
        let provider = CryptoProvider::new(5);
        let mut node = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                sbft_types::FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                config.timers.node_timeout,
            )),
        );
        // Request 0 commits immediately (1-node CFT) at seq 1, but its
        // BatchValidated never arrives.
        let committed_req = signed_request(&provider, 0, 0);
        let actions = node.on_client_request(&committed_req, SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::BatchCommitted { .. })));
        // A second node with a large batch keeps one id pending in the
        // batcher (never released).
        let mut big = config.clone();
        big.workload.batch_size = 100;
        let mut pending_node = ShimNode::new(
            NodeId(0),
            big.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                sbft_types::FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                big.timers.node_timeout,
            )),
        );
        let pending_req = signed_request(&provider, 7, 0);
        assert!(pending_node
            .on_client_request(&pending_req, SimTime::ZERO)
            .is_empty());
        // Far more checkpoint progress than any expiry horizon.
        for seq in 2..=40u64 {
            let validated = ProtocolMessage::BatchValidated(BatchValidated {
                seq: SeqNum(seq),
                committed: 1,
                aborted: 0,
            });
            let _ = node.on_message(&validated);
            let _ = pending_node.on_message(&validated);
        }
        // The committed batch's id is still suppressed (a retry would
        // otherwise double-order a batch that may yet validate) …
        assert!(node
            .on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO)
            .is_empty());
        // … and so is the batcher-pending id.
        assert!(pending_node
            .on_client_request(&signed_request(&provider, 7, 0), SimTime::ZERO)
            .is_empty());
        assert!(pending_node.seen_txns_len() >= 1);
    }

    #[test]
    fn ordering_lanes_assemble_single_home_batches_and_tag_executes() {
        // KnownRwSets + 4 shards activates the ordering-time planner:
        // two single-op transactions homed on the same shard fill that
        // shard's lane, the released batch is proposed with a
        // SingleHome tag, and every spawned EXECUTE carries it.
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::KnownRwSets;
        config.workload.batch_size = 2;
        config.sharding = sbft_types::ShardingConfig::with_shards(4);
        let mut shim = make_shim(config);
        assert!(shim.nodes[0].ordering_lanes_active());
        let provider = Arc::clone(&shim.provider);
        let router = ShardRouter::new(4);
        let home = router.shard_of(Key(1));
        let second = (2..)
            .map(Key)
            .find(|k| router.shard_of(*k) == home)
            .expect("another key on the same shard");
        let foreign = (2..)
            .map(Key)
            .find(|k| router.shard_of(*k) != home)
            .expect("a key on another shard");
        let mk = |client: u32, key: Key| {
            let txn = Transaction::new(
                TxnId::new(ClientId(client), 0),
                vec![Operation::ReadModifyWrite(key, 1)],
            )
            .with_inferred_rwset();
            let digest = ClientRequest::signing_digest(&txn);
            ClientRequest {
                signature: provider
                    .handle(ComponentId::Client(ClientId(client)))
                    .sign(&digest),
                txn,
            }
        };
        // A foreign-shard transaction arrives in between: it must not
        // pollute the home lane.
        let a0 = shim.nodes[0].on_client_request(&mk(0, Key(1)), SimTime::ZERO);
        assert!(a0.is_empty());
        let a1 = shim.nodes[0].on_client_request(&mk(1, foreign), SimTime::ZERO);
        assert!(a1.is_empty(), "the foreign lane is not full yet");
        let actions = shim.nodes[0].on_client_request(&mk(2, second), SimTime::ZERO);
        let plan = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some((pp.plan, pp.batch.clone())),
                _ => None,
            })
            .expect("the home lane releases a batch");
        assert_eq!(plan.0, sbft_types::ShardPlan::SingleHome(home));
        assert_eq!(plan.1.len(), 2, "only the two same-home transactions");
        // Run consensus; the primary's EXECUTE messages carry the tag.
        let external = run_consensus(&mut shim, 0, actions);
        let executes: Vec<_> = external
            .iter()
            .filter_map(|(_, a)| match a {
                Action::SpawnExecutor { execute, .. } => Some(execute.clone()),
                _ => None,
            })
            .collect();
        assert!(!executes.is_empty());
        for execute in &executes {
            assert_eq!(execute.plan, sbft_types::ShardPlan::SingleHome(home));
        }
    }

    #[test]
    fn cross_home_transactions_assemble_in_the_cross_lane() {
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::KnownRwSets;
        config.workload.batch_size = 2;
        config.sharding = sbft_types::ShardingConfig::with_shards(4);
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        let router = ShardRouter::new(4);
        let k1 = Key(1);
        let foreign = (2..)
            .map(Key)
            .find(|k| router.shard_of(*k) != router.shard_of(k1))
            .expect("a key on another shard");
        let mk = |client: u32| {
            // Two operations spanning shards: the transaction is
            // cross-home by construction.
            let txn = Transaction::new(
                TxnId::new(ClientId(client), 0),
                vec![
                    Operation::ReadModifyWrite(k1, 1),
                    Operation::ReadModifyWrite(foreign, 1),
                ],
            )
            .with_inferred_rwset();
            let digest = ClientRequest::signing_digest(&txn);
            ClientRequest {
                signature: provider
                    .handle(ComponentId::Client(ClientId(client)))
                    .sign(&digest),
                txn,
            }
        };
        let _ = shim.nodes[0].on_client_request(&mk(0), SimTime::ZERO);
        let actions = shim.nodes[0].on_client_request(&mk(1), SimTime::ZERO);
        let plan = actions
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.plan),
                _ => None,
            })
            .expect("the cross lane releases a batch");
        assert_eq!(plan, sbft_types::ShardPlan::CrossHome);
    }

    #[test]
    fn non_primary_forwards_requests_to_primary() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let actions =
            shim.nodes[2].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let env = actions[0].as_send().unwrap();
        assert_eq!(env.to, Destination::Node(NodeId(0)));
        assert_eq!(env.msg.kind(), "CLIENT-REQUEST");
        assert_eq!(shim.nodes[2].requests_forwarded(), 1);
    }

    #[test]
    fn decentralized_spawning_makes_every_node_spawn() {
        let mut config = base_config();
        config.spawning = SpawningMode::Decentralized;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a1);
        // n_E (3) ≤ n_R (4), so every node spawns exactly one executor.
        for i in 0..4u32 {
            let spawns = external
                .iter()
                .filter(|(n, a)| *n == NodeId(i) && matches!(a, Action::SpawnExecutor { .. }))
                .count();
            assert_eq!(spawns, 1, "node {i}");
        }
    }

    #[test]
    fn error_from_verifier_starts_retransmit_timer_and_forwards() {
        let mut shim = make_shim(base_config());
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(3)),
            request: None,
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[2].on_message(&err);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::StartTimer {
                timer: ProtocolTimer::Retransmit(_),
                ..
            }
        )));
        let env = envelopes(&actions)[0];
        assert_eq!(
            env.to,
            Destination::Node(NodeId(0)),
            "forwarded to the primary"
        );
        // The matching ACK cancels the timer.
        let ack = ProtocolMessage::Ack(crate::events::AckMessage {
            subject: RecoverySubject::Seq(SeqNum(3)),
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[2].on_message(&ack);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer(ProtocolTimer::Retransmit(_)))));
    }

    #[test]
    fn replace_from_verifier_triggers_view_change() {
        let mut shim = make_shim(base_config());
        let replace = ProtocolMessage::Replace(ReplaceMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[1].on_message(&replace);
        assert!(actions.iter().any(|a| a.sends_kind("VIEWCHANGE")));
    }

    #[test]
    fn retransmit_timer_expiry_triggers_view_change() {
        let mut shim = make_shim(base_config());
        // The verifier reported a missing request; Υ is armed in view 0.
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            request: None,
            signature: Signature::ZERO,
        });
        let _ = shim.nodes[1].on_message(&err);
        // The primary never resolved it before Υ expired: view change.
        let actions = shim.nodes[1].on_timer(
            ProtocolTimer::Retransmit(RecoverySubject::Seq(SeqNum(1))),
            SimTime::ZERO,
        );
        assert!(actions.iter().any(|a| a.sends_kind("VIEWCHANGE")));
    }

    #[test]
    fn retransmit_timer_is_forgiven_after_a_view_change() {
        let mut shim = make_shim(base_config());
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            request: None,
            signature: Signature::ZERO,
        });
        let _ = shim.nodes[1].on_message(&err);
        // The primary is replaced before Υ expires (for another reason).
        let _ = shim.nodes[1].on_message(&ProtocolMessage::Replace(ReplaceMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            signature: Signature::ZERO,
        }));
        // Υ now fires, but the view already moved on: no further escalation.
        // (The node's own view only advances once a quorum exists, so fake
        // the comparison by checking that no VIEWCHANGE for view 2 is sent.)
        let actions = shim.nodes[1].on_timer(
            ProtocolTimer::Retransmit(RecoverySubject::Seq(SeqNum(1))),
            SimTime::ZERO,
        );
        // The node already voted for view 1 when handling REPLACE, so the
        // timer expiry must not push it to vote again for a later view.
        for action in &actions {
            if let Some(env) = action.as_send() {
                if let ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::ViewChange(
                    vc,
                )) = &env.msg
                {
                    assert!(vc.new_view <= sbft_types::ViewNumber(1));
                }
            }
        }
    }

    #[test]
    fn planner_gates_spawning_for_conflicting_batches() {
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::KnownRwSets;
        config.workload.batch_size = 1;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        // Two conflicting single-transaction batches (both RMW key 7).
        let mk = |client: u32| {
            let txn = Transaction::new(
                TxnId::new(ClientId(client), 0),
                vec![Operation::ReadModifyWrite(Key(7), 1)],
            )
            .with_inferred_rwset();
            let digest = ClientRequest::signing_digest(&txn);
            ClientRequest {
                signature: provider
                    .handle(ComponentId::Client(ClientId(client)))
                    .sign(&digest),
                txn,
            }
        };
        let a1 = shim.nodes[0].on_client_request(&mk(0), SimTime::ZERO);
        let ext1 = run_consensus(&mut shim, 0, a1);
        let spawns1 = ext1
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns1, 3, "first batch spawns immediately");
        let a2 = shim.nodes[0].on_client_request(&mk(1), SimTime::ZERO);
        let ext2 = run_consensus(&mut shim, 0, a2);
        let spawns2 = ext2
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(
            spawns2, 0,
            "conflicting batch waits for the first to finish"
        );
        // The verifier validates batch 1; batch 2 is released.
        let actions = shim.nodes[0].on_message(&ProtocolMessage::BatchValidated(BatchValidated {
            seq: SeqNum(1),
            committed: 1,
            aborted: 0,
        }));
        let spawns3 = actions
            .iter()
            .filter(|a| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns3, 3, "validation releases the conflicting batch");
    }

    #[test]
    fn unknown_rwsets_spawn_three_f_plus_one_executors() {
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::UnknownRwSets;
        config.workload.batch_size = 1;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        let a = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a);
        let spawns = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns, 4, "3·f_E + 1 executors with f_E = 1");
    }

    #[test]
    fn cft_and_noshim_orderings_also_spawn() {
        let config = {
            let mut c = SystemConfig::with_shim_size(4);
            c.workload.batch_size = 1;
            c
        };
        let provider = CryptoProvider::new(5);
        // CFT-backed shim node (single-node degenerate cluster for the test).
        let mut cft_node = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                sbft_types::FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                config.timers.node_timeout,
            )),
        );
        let req = signed_request(&provider, 0, 0);
        let actions = cft_node.on_client_request(&req, SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SpawnExecutor { .. })));
        // NoShim node.
        let mut noshim = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(NoShim::new(NodeId(0))),
        );
        let req = signed_request(&provider, 1, 0);
        let actions = noshim.on_client_request(&req, SimTime::ZERO);
        let spawns = actions
            .iter()
            .filter(|a| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns, config.executors_per_batch());
        assert_eq!(noshim.protocol_name(), "NoShim");
    }

    /// Like [`run_consensus`] but messages to the nodes in `down` are
    /// dropped (they are crashed).
    fn run_consensus_partitioned(
        shim: &mut Shim,
        origin: usize,
        actions: Vec<Action>,
        down: &[usize],
    ) -> Vec<(NodeId, Action)> {
        let mut external = Vec::new();
        let mut queue: std::collections::VecDeque<(usize, usize, ConsensusMessage)> =
            std::collections::VecDeque::new();
        let n = shim.nodes.len();
        let push_actions =
            |origin: usize,
             actions: Vec<Action>,
             queue: &mut std::collections::VecDeque<(usize, usize, ConsensusMessage)>,
             external: &mut Vec<(NodeId, Action)>| {
                for a in actions {
                    match &a {
                        Action::Send(env) => match (&env.to, &env.msg) {
                            (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                                for to in 0..n {
                                    if to != origin {
                                        queue.push_back((origin, to, msg.clone()));
                                    }
                                }
                            }
                            (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                                queue.push_back((origin, to.0 as usize, msg.clone()));
                            }
                            _ => external.push((NodeId(origin as u32), a.clone())),
                        },
                        _ => external.push((NodeId(origin as u32), a.clone())),
                    }
                }
            };
        push_actions(origin, actions, &mut queue, &mut external);
        while let Some((from, to, msg)) = queue.pop_front() {
            if down.contains(&to) {
                continue;
            }
            let acts = shim.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            push_actions(to, acts, &mut queue, &mut external);
        }
        external
    }

    fn durable_config(snapshot_interval: u64) -> SystemConfig {
        let mut config = base_config();
        config.durability =
            sbft_types::DurabilityConfig::enabled().with_snapshot_interval(snapshot_interval);
        config
    }

    /// Commits one batch of two transactions through the whole shim and
    /// returns the external actions.
    fn commit_one_batch(
        shim: &mut Shim,
        client_base: u32,
        down: &[usize],
    ) -> Vec<(NodeId, Action)> {
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0]
            .on_client_request(&signed_request(&provider, client_base, 0), SimTime::ZERO);
        let actions = shim.nodes[0].on_client_request(
            &signed_request(&provider, client_base + 1, 0),
            SimTime::ZERO,
        );
        run_consensus_partitioned(shim, 0, actions, down)
    }

    #[test]
    fn wal_records_votes_and_commits_and_cuts_snapshots() {
        // Snapshot every 2 batches: after two commits the log is
        // truncated to the mark and the reclaimed bytes are counted.
        let mut shim = make_shim(durable_config(2));
        let external = commit_one_batch(&mut shim, 0, &[]);
        // Synced WAL writes are charged through Persist actions.
        assert!(external
            .iter()
            .any(|(_, a)| matches!(a, Action::Persist { fsync: true, .. })));
        assert!(shim.nodes[0].wal_appends() >= 2); // a Vote and a Committed at least
        assert_eq!(shim.nodes[0].last_snapshot(), SeqNum(0));
        commit_one_batch(&mut shim, 2, &[]);
        for node in &shim.nodes {
            assert_eq!(node.last_snapshot(), SeqNum(2));
            assert!(node.snapshot_bytes() > 0, "truncation reclaims bytes");
            // Only the mark survives the cut.
            assert_eq!(node.wal_durable_len(), Some(1));
        }
    }

    #[test]
    fn crash_restarted_node_replays_its_wal_and_rejoins() {
        let mut shim = make_shim(durable_config(8));
        commit_one_batch(&mut shim, 0, &[]);
        commit_one_batch(&mut shim, 2, &[]);
        // Node 3 dies and restarts: the synced log replays both commits.
        shim.nodes[3].crash();
        let restart = shim.nodes[3].crash_restart();
        assert_eq!(shim.nodes[3].replay_batches(), 2);
        assert!(
            restart.iter().any(|a| a.sends_kind("STATEREQUEST")),
            "restart broadcasts a state request"
        );
        // Nothing was missed, so peers stay silent and no batch is adopted.
        run_consensus_partitioned(&mut shim, 3, restart, &[]);
        assert_eq!(shim.nodes[3].state_transfers(), 0);
        // The restarted node keeps participating: the next batch commits
        // everywhere, including on node 3.
        let external = commit_one_batch(&mut shim, 4, &[]);
        assert!(external.iter().any(|(n, a)| *n == NodeId(3)
            && matches!(a, Action::BatchCommitted { seq, .. } if *seq == SeqNum(3))));
    }

    #[test]
    fn crash_restarted_node_state_transfers_the_suffix_it_missed() {
        let mut shim = make_shim(durable_config(8));
        commit_one_batch(&mut shim, 0, &[]);
        // Node 3 is dark while batch 2 commits on the others.
        shim.nodes[3].crash();
        commit_one_batch(&mut shim, 2, &[3]);
        let restart = shim.nodes[3].crash_restart();
        assert_eq!(shim.nodes[3].replay_batches(), 1);
        let external = run_consensus_partitioned(&mut shim, 3, restart, &[]);
        // Peers answered the state request; node 3 adopted the missed
        // batch exactly once and observed its commit.
        assert_eq!(shim.nodes[3].state_transfers(), 1);
        assert!(external.iter().any(|(n, a)| *n == NodeId(3)
            && matches!(a, Action::BatchCommitted { seq, .. } if *seq == SeqNum(2))));
    }

    #[test]
    fn spawn_rejection_marks_the_region_down_until_probation_expires() {
        use sbft_types::Region;
        let mut shim = make_shim(base_config());
        let node = &mut shim.nodes[0];
        let actions = node.on_spawn_rejected(Region::Oregon);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::StartTimer {
                timer: ProtocolTimer::RegionProbation(Region::Oregon),
                ..
            }
        )));
        assert_eq!(node.region_outages_detected(), 1);
        // Repeated rejections while already marked down are absorbed.
        assert!(node.on_spawn_rejected(Region::Oregon).is_empty());
        assert_eq!(node.region_outages_detected(), 1);
        // Probation expiry marks the region back up; a later rejection
        // re-detects the outage and restarts the cycle.
        let up = node.on_timer(
            ProtocolTimer::RegionProbation(Region::Oregon),
            SimTime::ZERO,
        );
        assert!(up.is_empty());
        assert!(!node.on_spawn_rejected(Region::Oregon).is_empty());
        assert_eq!(node.region_outages_detected(), 2);
    }

    // ---- digest proposals (bandwidth-frugal ordering) ----------------------

    /// A 4-node PBFT shim with digest proposals on, counters re-homed into
    /// a shared registry so tests can read the digest cache statistics.
    fn make_digest_shim(mut config: SystemConfig) -> (Shim, Arc<Registry>) {
        config.digest_proposals = true;
        let provider = CryptoProvider::new(21);
        let registry = Arc::new(Registry::new());
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(
                    PbftReplica::new(
                        NodeId(i),
                        config.fault,
                        provider.handle(ComponentId::Node(NodeId(i))),
                        config.timers.node_timeout,
                        config.timers.checkpoint_interval,
                    )
                    .with_digest_proposals(true),
                );
                let mut node = ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                );
                node.register_metrics(&registry);
                node
            })
            .collect();
        (
            Shim {
                nodes,
                provider,
                config,
            },
            registry,
        )
    }

    /// Delivers `req` to every shim node (digest-mode clients broadcast so
    /// replicas can seed their body caches), returning the primary's
    /// actions and asserting the replicas neither forward nor propose.
    fn broadcast_request(shim: &mut Shim, req: &ClientRequest) -> Vec<Action> {
        let mut primary_actions = Vec::new();
        for i in 0..shim.nodes.len() {
            let actions = shim.nodes[i].on_client_request(req, SimTime::ZERO);
            if shim.nodes[i].is_primary() {
                primary_actions = actions;
            } else {
                assert!(
                    actions.is_empty(),
                    "a replica offers the body locally, nothing goes on the wire"
                );
            }
        }
        primary_actions
    }

    #[test]
    fn digest_mode_with_client_broadcast_commits_without_forwarding_or_fetching() {
        let (mut shim, registry) = make_digest_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = broadcast_request(&mut shim, &signed_request(&provider, 0, 0));
        let actions = broadcast_request(&mut shim, &signed_request(&provider, 1, 0));
        assert!(
            actions.iter().any(|a| a.sends_kind("DIGEST-PREPREPARE")),
            "the primary proposes by digest, not by body"
        );
        let external = run_consensus(&mut shim, 0, actions);
        let commits = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::BatchCommitted { .. }))
            .count();
        assert_eq!(commits, 4, "every node commits the reconstructed batch");
        for node in &shim.nodes {
            assert_eq!(
                node.requests_forwarded(),
                0,
                "digest mode never relays request bodies to the primary"
            );
            assert!(node.pending_reconstructions().is_empty());
        }
        // Warm caches: every replica reconstructed from its own cache.
        for i in 1..4 {
            assert_eq!(
                registry
                    .counter(&format!("shim.{i}.digest.cache_hits"))
                    .get(),
                2
            );
            assert_eq!(
                registry
                    .counter(&format!("shim.{i}.digest.cache_misses"))
                    .get(),
                0
            );
            assert_eq!(
                registry
                    .counter(&format!("shim.{i}.digest.fetches_sent"))
                    .get(),
                0
            );
        }
    }

    #[test]
    fn digest_mode_with_cold_replicas_fetches_bodies_and_commits() {
        // Requests reach only the primary (the client broadcast was lost):
        // replicas miss on every body, fetch them from the primary over
        // BATCHFETCH/BATCHFILL, and still commit the identical batch.
        let (mut shim, registry) = make_digest_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let actions =
            shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        assert!(actions.iter().any(|a| a.sends_kind("DIGEST-PREPREPARE")));
        let external = run_consensus(&mut shim, 0, actions);
        let commits = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::BatchCommitted { .. }))
            .count();
        assert_eq!(commits, 4);
        for i in 1..4u32 {
            assert_eq!(
                registry
                    .counter(&format!("shim.{i}.digest.cache_misses"))
                    .get(),
                2
            );
            assert_eq!(
                registry
                    .counter(&format!("shim.{i}.digest.fetches_sent"))
                    .get(),
                1
            );
            assert!(shim.nodes[i as usize].pending_reconstructions().is_empty());
        }
        assert_eq!(
            registry.counter("shim.0.digest.fills_served").get(),
            3,
            "the primary served one fill per cold replica"
        );
    }

    #[test]
    fn digest_proposal_is_wal_released_like_a_full_one() {
        let mut config = base_config();
        config.durability = sbft_types::DurabilityConfig::enabled();
        let (mut shim, _registry) = make_digest_shim(config);
        let provider = Arc::clone(&shim.provider);
        let _ = broadcast_request(&mut shim, &signed_request(&provider, 0, 0));
        assert_eq!(shim.nodes[0].wal_appends(), 0);
        let actions = broadcast_request(&mut shim, &signed_request(&provider, 1, 0));
        assert!(actions.iter().any(|a| a.sends_kind("DIGEST-PREPREPARE")));
        // The digest proposal wrote a buffered Released record before the
        // broadcast left (plus this node's own synced COMMIT vote later).
        assert!(
            shim.nodes[0].wal_appends() >= 1,
            "a digest proposal must hit the WAL like a full PREPREPARE"
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Persist { fsync: false, .. })));
    }

    #[test]
    fn body_cache_truncates_at_the_checkpoint_rhythm() {
        // Long-run bound: with client broadcasts feeding every replica's
        // body cache and BatchValidated notifications advancing the
        // checkpoint rhythm, the cache must stay within the retained
        // window instead of accumulating every body ever seen.
        let mut config = base_config();
        config.workload.batch_size = 1;
        config.timers.checkpoint_interval = 4;
        let (mut shim, _registry) = make_digest_shim(config);
        let provider = Arc::clone(&shim.provider);
        for i in 0..40u64 {
            let actions = broadcast_request(&mut shim, &signed_request(&provider, 0, i));
            let external = run_consensus(&mut shim, 0, actions);
            assert!(external
                .iter()
                .any(|(_, a)| matches!(a, Action::BatchCommitted { .. })));
            for node in &mut shim.nodes {
                let _ = node.on_message(&ProtocolMessage::BatchValidated(BatchValidated {
                    seq: SeqNum(i + 1),
                    committed: 1,
                    aborted: 0,
                }));
            }
            for node in &shim.nodes {
                assert!(
                    node.cached_bodies() <= 3 * 4,
                    "after {} batches node {} caches {} bodies",
                    i + 1,
                    node.id().0,
                    node.cached_bodies()
                );
            }
        }
    }
}
