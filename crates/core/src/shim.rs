//! The shim-node role.
//!
//! A shim node is an edge device that (1) accepts signed client requests,
//! (2) batches them and runs the ordering protocol, (3) once a batch
//! commits, spawns serverless executors carrying the execution certificate
//! `C` (Figure 3, primary role), and (4) participates in the recovery paths
//! of Figure 4: forwarding `ERROR` messages to the primary under the
//! re-transmission timer `Υ`, honouring `REPLACE` messages from the
//! verifier, and replacing the primary through the ordering protocol's view
//! change when timers expire.
//!
//! The same state machine covers all spawning modes: primary-only spawning
//! (default), decentralized spawning (Section VI-B), and the planner-gated
//! spawning used when read-write sets are known (Section VI-C).

use crate::events::{
    Action, BatchValidated, ClientRequest, Destination, ProtocolMessage, ProtocolTimer,
    RecoverySubject,
};
use crate::planner::{BatchFootprint, BestEffortPlanner};
use sbft_consensus::{Batcher, ConsensusAction, ConsensusMessage, OrderingProtocol};
use sbft_crypto::{CommitCertificate, CryptoHandle};
use sbft_serverless::{ExecuteRequest, Invoker};
use sbft_types::{
    Batch, ComponentId, ConflictHandling, NodeId, SeqNum, SimTime, SpawningMode, SystemConfig,
    ViewNumber,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A committed batch that may still need spawning or re-spawning. The
/// batch and certificate are shared handles into the consensus layer's
/// allocations — storing and later re-reading them copies nothing.
#[derive(Clone, Debug)]
struct CommittedBatch {
    view: ViewNumber,
    batch: Batch,
    certificate: Arc<CommitCertificate>,
    spawned: bool,
}

/// The shim-node role state machine.
pub struct ShimNode {
    me: NodeId,
    config: SystemConfig,
    crypto: CryptoHandle,
    ordering: Box<dyn OrderingProtocol + Send>,
    batcher: Batcher,
    invoker: Invoker,
    planner: Option<BestEffortPlanner>,
    /// Batches committed locally that the verifier has not validated yet.
    committed: BTreeMap<SeqNum, CommittedBatch>,
    /// Transactions this node has already placed in a batch, so that client
    /// re-transmissions and forwarded `ERROR(⟨T⟩_C)` messages are not
    /// ordered twice.
    seen_txns: std::collections::HashSet<sbft_types::TxnId>,
    /// The view in which each re-transmission timer `Υ` was started. If the
    /// view has already changed when the timer fires, the new primary gets a
    /// fresh chance instead of triggering yet another view change (this is
    /// what prevents one byzantine primary from cascading the shim through
    /// many views when many `ERROR` messages arrive at once).
    retransmit_view: std::collections::HashMap<RecoverySubject, ViewNumber>,
    batches_committed: u64,
    executors_spawned: u64,
    requests_forwarded: u64,
}

impl ShimNode {
    /// Creates a shim node around an ordering protocol instance.
    #[must_use]
    pub fn new(
        me: NodeId,
        config: SystemConfig,
        crypto: CryptoHandle,
        ordering: Box<dyn OrderingProtocol + Send>,
    ) -> Self {
        let batcher = Batcher::new(
            config.workload.batch_size,
            sbft_types::SimDuration::from_millis(5),
        );
        let invoker = Invoker::new(me, config.regions.clone());
        let planner = matches!(config.conflict_handling, ConflictHandling::KnownRwSets)
            .then(BestEffortPlanner::new);
        ShimNode {
            me,
            config,
            crypto,
            ordering,
            batcher,
            invoker,
            planner,
            committed: BTreeMap::new(),
            seen_txns: std::collections::HashSet::new(),
            retransmit_view: std::collections::HashMap::new(),
            batches_committed: 0,
            executors_spawned: 0,
            requests_forwarded: 0,
        }
    }

    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Whether this node is the primary of the current view.
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.ordering.is_primary()
    }

    /// The primary of the current view.
    #[must_use]
    pub fn primary(&self) -> NodeId {
        self.ordering.primary()
    }

    /// The ordering protocol's current view.
    #[must_use]
    pub fn view(&self) -> ViewNumber {
        self.ordering.view()
    }

    /// Name of the ordering protocol in use ("PBFT", "CFT", "NoShim").
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        self.ordering.name()
    }

    /// Batches this node has committed locally.
    #[must_use]
    pub fn batches_committed(&self) -> u64 {
        self.batches_committed
    }

    /// Executors this node has spawned (and will be reimbursed for).
    #[must_use]
    pub fn executors_spawned(&self) -> u64 {
        self.executors_spawned
    }

    /// Client requests this node forwarded to the primary.
    #[must_use]
    pub fn requests_forwarded(&self) -> u64 {
        self.requests_forwarded
    }

    fn component(&self) -> ComponentId {
        ComponentId::Node(self.me)
    }

    // ---- client requests and batching ---------------------------------------

    /// Handles a signed client request (Figure 3, primary role).
    pub fn on_client_request(&mut self, req: &ClientRequest, now: SimTime) -> Vec<Action> {
        let digest = ClientRequest::signing_digest(&req.txn);
        if !self.crypto.verify(
            ComponentId::Client(req.txn.id.client),
            &digest,
            &req.signature,
        ) {
            return Vec::new(); // not well-formed
        }
        if !self.is_primary() {
            // Clients normally target the primary; a node that is not the
            // primary forwards the request (e.g. after a view change).
            self.requests_forwarded += 1;
            return vec![Action::send(
                self.component(),
                Destination::Node(self.primary()),
                ProtocolMessage::ClientRequest(req.clone()),
            )];
        }
        self.order_transaction(req.txn.clone(), now)
    }

    /// Places a transaction in the ordering pipeline (primary only),
    /// skipping transactions this node has already batched.
    fn order_transaction(&mut self, txn: sbft_types::Transaction, now: SimTime) -> Vec<Action> {
        if !self.seen_txns.insert(txn.id) {
            return Vec::new(); // duplicate (client retry or forwarded ERROR)
        }
        if !self.config.batching_enabled {
            return self.submit_batch(Batch::single(txn));
        }
        match self.batcher.push(txn, now) {
            Some(batch) => self.submit_batch(batch),
            None => Vec::new(),
        }
    }

    /// Periodic tick releasing partially filled batches.
    pub fn poll_batcher(&mut self, now: SimTime) -> Vec<Action> {
        if !self.is_primary() {
            return Vec::new();
        }
        match self.batcher.poll(now) {
            Some(batch) => self.submit_batch(batch),
            None => Vec::new(),
        }
    }

    fn submit_batch(&mut self, batch: Batch) -> Vec<Action> {
        let consensus_actions = self.ordering.submit_batch(batch);
        self.translate(consensus_actions)
    }

    // ---- consensus plumbing ---------------------------------------------------

    /// Handles a consensus message from another shim node.
    pub fn on_consensus_message(&mut self, from: NodeId, msg: ConsensusMessage) -> Vec<Action> {
        let actions = self.ordering.handle_message(from, msg);
        self.translate(actions)
    }

    fn translate(&mut self, actions: Vec<ConsensusAction>) -> Vec<Action> {
        let mut out = Vec::new();
        for action in actions {
            match action {
                ConsensusAction::Broadcast(msg) => out.push(Action::send(
                    self.component(),
                    Destination::AllNodes,
                    ProtocolMessage::Consensus(msg),
                )),
                ConsensusAction::Send(to, msg) => out.push(Action::send(
                    self.component(),
                    Destination::Node(to),
                    ProtocolMessage::Consensus(msg),
                )),
                ConsensusAction::StartTimer { timer, duration } => out.push(Action::StartTimer {
                    timer: ProtocolTimer::Consensus(timer),
                    duration,
                }),
                ConsensusAction::CancelTimer(timer) => {
                    out.push(Action::CancelTimer(ProtocolTimer::Consensus(timer)));
                }
                ConsensusAction::Committed {
                    view,
                    seq,
                    batch,
                    certificate,
                } => out.extend(self.on_committed(view, seq, batch, certificate)),
                ConsensusAction::ViewInstalled { .. } => out.extend(self.on_view_installed()),
                ConsensusAction::CaughtUp { .. } => {}
            }
        }
        out
    }

    fn on_committed(
        &mut self,
        view: ViewNumber,
        seq: SeqNum,
        batch: Batch,
        certificate: Option<Arc<CommitCertificate>>,
    ) -> Vec<Action> {
        self.batches_committed += 1;
        let len = batch.len();
        // Baseline protocols (CFT / NoShim) produce no certificate; an
        // empty certificate stands in so the message flow stays identical
        // (executors and the verifier are configured with a quorum of 0).
        let certificate = certificate.unwrap_or_else(|| {
            Arc::new(CommitCertificate::new(
                view,
                seq,
                sbft_consensus::messages::batch_digest(&batch),
                vec![],
            ))
        });
        self.committed.insert(
            seq,
            CommittedBatch {
                view,
                batch,
                certificate,
                spawned: false,
            },
        );
        let mut actions = vec![Action::BatchCommitted { seq, len }];

        if !self.should_spawn() {
            return actions;
        }
        if self.planner.is_some() {
            // Known read-write sets: ask the planner which batches may be
            // dispatched without conflicting with in-flight ones.
            let footprint = {
                let entry = self.committed.get(&seq).expect("just inserted");
                let rwsets: Vec<_> = entry
                    .batch
                    .iter()
                    .map(|t| {
                        t.declared_rwset
                            .clone()
                            .unwrap_or_else(|| t.inferred_rwset())
                    })
                    .collect();
                BatchFootprint::from_rwsets(rwsets.iter())
            };
            let ready = self
                .planner
                .as_mut()
                .expect("planner present")
                .enqueue(seq, footprint);
            for ready_seq in ready {
                actions.extend(self.spawn_for(ready_seq));
            }
        } else {
            actions.extend(self.spawn_for(seq));
        }
        actions
    }

    fn should_spawn(&self) -> bool {
        match self.config.spawning {
            SpawningMode::PrimaryOnly => self.is_primary(),
            SpawningMode::Decentralized => true,
        }
    }

    /// How many executors this node spawns per committed batch.
    fn spawn_count(&self) -> usize {
        match self.config.spawning {
            SpawningMode::PrimaryOnly => self.config.executors_per_batch(),
            SpawningMode::Decentralized => self.config.fault.decentralized_spawn_count(),
        }
    }

    fn spawn_for(&mut self, seq: SeqNum) -> Vec<Action> {
        let count = self.spawn_count();
        let Some(entry) = self.committed.get_mut(&seq) else {
            return Vec::new();
        };
        if entry.spawned {
            return Vec::new();
        }
        entry.spawned = true;
        let digest = entry.certificate.batch_digest;
        let signing = ExecuteRequest::signing_digest(entry.view, seq, &digest, self.me);
        // Both clones below are refcount bumps; the per-executor clone of
        // `execute` in the loop shares them too.
        let execute = ExecuteRequest {
            view: entry.view,
            seq,
            digest,
            batch: entry.batch.clone(),
            certificate: Arc::clone(&entry.certificate),
            spawner: self.me,
            signature: self.crypto.sign(&signing),
        };
        let plan = self.invoker.plan(seq, count);
        self.executors_spawned += plan.requests.len() as u64;
        plan.requests
            .into_iter()
            .map(|request| Action::SpawnExecutor {
                request,
                execute: execute.clone(),
            })
            .collect()
    }

    /// When this node becomes the primary of a new view it re-spawns
    /// executors for every batch that committed but was never validated by
    /// the verifier (otherwise a view change could leave committed batches
    /// stranded without executors).
    fn on_view_installed(&mut self) -> Vec<Action> {
        if !self.is_primary() {
            return Vec::new();
        }
        let stranded: Vec<SeqNum> = self
            .committed
            .iter()
            .filter(|(_, e)| !e.spawned)
            .map(|(s, _)| *s)
            .collect();
        let mut actions = Vec::new();
        for seq in stranded {
            actions.extend(self.spawn_for(seq));
        }
        actions
    }

    // ---- verifier-driven recovery -----------------------------------------------

    /// Handles messages from the verifier (Figure 4, node role) and other
    /// non-consensus messages.
    pub fn on_message(&mut self, msg: &ProtocolMessage) -> Vec<Action> {
        self.on_message_at(msg, SimTime::ZERO)
    }

    /// Like [`Self::on_message`] but with the current time, needed when the
    /// message may cause the primary to batch a carried client request.
    pub fn on_message_at(&mut self, msg: &ProtocolMessage, now: SimTime) -> Vec<Action> {
        match msg {
            ProtocolMessage::Error(err) => {
                if self.is_primary() {
                    // The onus is on the primary to resolve the ERROR: order
                    // the carried request (missing transaction case) or
                    // re-spawn executors for the missing sequence number.
                    return match (&err.subject, &err.request) {
                        (RecoverySubject::Txn(_), Some(request)) => {
                            self.order_transaction(request.txn.clone(), now)
                        }
                        (RecoverySubject::Seq(seq), _) => self.respawn(*seq),
                        _ => Vec::new(),
                    };
                }
                // Start the re-transmission timer Υ and forward the ERROR to
                // the primary.
                self.retransmit_view.insert(err.subject, self.view());
                vec![
                    Action::StartTimer {
                        timer: ProtocolTimer::Retransmit(err.subject),
                        duration: self.config.timers.retransmit_timeout,
                    },
                    Action::send(
                        self.component(),
                        Destination::Node(self.primary()),
                        ProtocolMessage::Error(err.clone()),
                    ),
                ]
            }
            ProtocolMessage::Ack(ack) => {
                vec![Action::CancelTimer(ProtocolTimer::Retransmit(ack.subject))]
            }
            ProtocolMessage::Replace(_) => {
                let actions = self.ordering.request_view_change();
                self.translate(actions)
            }
            ProtocolMessage::BatchValidated(validated) => self.on_batch_validated(*validated),
            _ => Vec::new(),
        }
    }

    /// Re-spawns executors for a batch this node committed but whose
    /// execution never completed at the verifier (missing `k_max`).
    fn respawn(&mut self, seq: SeqNum) -> Vec<Action> {
        if let Some(entry) = self.committed.get_mut(&seq) {
            entry.spawned = false;
        }
        if self.should_spawn() {
            self.spawn_for(seq)
        } else {
            Vec::new()
        }
    }

    fn on_batch_validated(&mut self, validated: BatchValidated) -> Vec<Action> {
        self.committed.remove(&validated.seq);
        let ready = match &mut self.planner {
            Some(planner) => planner.complete(validated.seq),
            None => Vec::new(),
        };
        let mut actions = Vec::new();
        if self.should_spawn() {
            for seq in ready {
                actions.extend(self.spawn_for(seq));
            }
        }
        actions
    }

    /// Handles the expiry of a timer owned by this node.
    pub fn on_timer(&mut self, timer: ProtocolTimer, now: SimTime) -> Vec<Action> {
        match timer {
            ProtocolTimer::Consensus(t) => {
                let actions = self.ordering.handle_timer(t);
                self.translate(actions)
            }
            ProtocolTimer::Retransmit(subject) => {
                // The primary failed to resolve the verifier's ERROR before
                // Υ expired: it must be byzantine, replace it — unless the
                // primary has already been replaced since the ERROR arrived,
                // in which case the new primary gets a fresh chance.
                let started_in = self.retransmit_view.remove(&subject);
                if started_in == Some(self.view()) {
                    let actions = self.ordering.request_view_change();
                    self.translate(actions)
                } else {
                    Vec::new()
                }
            }
            ProtocolTimer::BatchPoll => self.poll_batcher(now),
            _ => Vec::new(),
        }
    }

    /// Read access to the recovery subject of a retransmit timer (tests).
    #[must_use]
    pub fn retransmit_subject(timer: &ProtocolTimer) -> Option<RecoverySubject> {
        match timer {
            ProtocolTimer::Retransmit(s) => Some(*s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{envelopes, ErrorMessage, ReplaceMessage};
    use sbft_consensus::{CftReplica, NoShim, PbftReplica};
    use sbft_crypto::CryptoProvider;
    use sbft_types::{ClientId, Key, Operation, Signature, Transaction, TxnId};
    use std::sync::Arc;

    struct Shim {
        nodes: Vec<ShimNode>,
        provider: Arc<CryptoProvider>,
        config: SystemConfig,
    }

    /// Default test configuration: a 4-node shim batching 2 transactions.
    fn base_config() -> SystemConfig {
        let mut config = SystemConfig::with_shim_size(4);
        config.workload.batch_size = 2;
        config
    }

    fn make_shim(config: SystemConfig) -> Shim {
        let provider = CryptoProvider::new(21);
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(PbftReplica::new(
                    NodeId(i),
                    config.fault,
                    provider.handle(ComponentId::Node(NodeId(i))),
                    config.timers.node_timeout,
                    config.timers.checkpoint_interval,
                ));
                ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                )
            })
            .collect();
        Shim {
            nodes,
            provider,
            config,
        }
    }

    fn signed_request(provider: &Arc<CryptoProvider>, client: u32, counter: u64) -> ClientRequest {
        let txn = Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::ReadModifyWrite(Key(counter), 1)],
        );
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: provider
                .handle(ComponentId::Client(ClientId(client)))
                .sign(&digest),
            txn,
        }
    }

    /// Drives consensus messages among the shim nodes until quiescence,
    /// collecting every non-consensus action per node.
    fn run_consensus(
        shim: &mut Shim,
        origin: usize,
        actions: Vec<Action>,
    ) -> Vec<(NodeId, Action)> {
        let mut external = Vec::new();
        let mut queue: std::collections::VecDeque<(usize, usize, ConsensusMessage)> =
            std::collections::VecDeque::new();
        let n = shim.nodes.len();
        let push_actions =
            |origin: usize,
             actions: Vec<Action>,
             queue: &mut std::collections::VecDeque<(usize, usize, ConsensusMessage)>,
             external: &mut Vec<(NodeId, Action)>| {
                for a in actions {
                    match &a {
                        Action::Send(env) => match (&env.to, &env.msg) {
                            (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                                for to in 0..n {
                                    if to != origin {
                                        queue.push_back((origin, to, msg.clone()));
                                    }
                                }
                            }
                            (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                                queue.push_back((origin, to.0 as usize, msg.clone()));
                            }
                            _ => external.push((NodeId(origin as u32), a.clone())),
                        },
                        _ => external.push((NodeId(origin as u32), a.clone())),
                    }
                }
            };
        push_actions(origin, actions, &mut queue, &mut external);
        while let Some((from, to, msg)) = queue.pop_front() {
            let acts = shim.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            push_actions(to, acts, &mut queue, &mut external);
        }
        external
    }

    #[test]
    fn primary_batches_requests_and_spawns_after_commit() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        // First request only fills the batcher.
        let a0 = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        assert!(a0.is_empty());
        // Second request releases a batch of 2 and starts consensus.
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        assert!(a1.iter().any(|a| a.sends_kind("PREPREPARE")));
        let external = run_consensus(&mut shim, 0, a1);
        // Only the primary spawns, and it spawns executors_per_batch of them.
        let spawns: Vec<_> = external
            .iter()
            .filter(|(n, a)| *n == NodeId(0) && matches!(a, Action::SpawnExecutor { .. }))
            .collect();
        assert_eq!(spawns.len(), shim.config.executors_per_batch());
        assert_eq!(shim.config.workload.batch_size, 2);
        let other_spawns = external
            .iter()
            .filter(|(n, a)| *n != NodeId(0) && matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(other_spawns, 0);
        // Every node observed the commit.
        let commits = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::BatchCommitted { .. }))
            .count();
        assert_eq!(commits, 4);
        assert_eq!(shim.nodes[0].executors_spawned(), 3);
    }

    #[test]
    fn execute_requests_share_batch_and_certificate_with_consensus() {
        // Zero-copy hand-off, shim layer: the batch embedded in the
        // primary's PREPREPARE and the batches carried by every spawned
        // EXECUTE message are the same Arc allocation, and all EXECUTE
        // copies share one certificate allocation.
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let proposed = a1
            .iter()
            .find_map(|a| match a.as_send().map(|e| &e.msg) {
                Some(ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::PrePrepare(
                    pp,
                ))) => Some(pp.batch.clone()),
                _ => None,
            })
            .expect("primary broadcasts a PREPREPARE");
        let external = run_consensus(&mut shim, 0, a1);
        let executes: Vec<_> = external
            .iter()
            .filter_map(|(_, a)| match a {
                Action::SpawnExecutor { execute, .. } => Some(execute.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(executes.len(), shim.config.executors_per_batch());
        for execute in &executes {
            assert!(
                execute.batch.shares_txns(&proposed),
                "EXECUTE must carry the proposed batch's storage, not a copy"
            );
            assert!(
                Arc::ptr_eq(&execute.certificate, &executes[0].certificate),
                "all EXECUTE copies share one certificate allocation"
            );
        }
        // The batch digest was computed once and is carried by the handle.
        assert_eq!(
            executes[0].batch.cached_digest(),
            Some(executes[0].certificate.batch_digest)
        );
    }

    #[test]
    fn spawned_execute_requests_verify_at_executors() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a1);
        let execute = external
            .iter()
            .find_map(|(_, a)| match a {
                Action::SpawnExecutor { execute, .. } => Some(execute.clone()),
                _ => None,
            })
            .expect("spawn action");
        // The certificate carried by the EXECUTE message verifies.
        assert!(execute
            .certificate
            .verify(shim.provider.key_store(), 3, 4)
            .is_ok());
        assert_eq!(execute.spawner, NodeId(0));
    }

    #[test]
    fn malformed_client_request_is_dropped() {
        let mut shim = make_shim(base_config());
        let mut req = signed_request(&shim.provider.clone(), 0, 0);
        req.signature = Signature::ZERO;
        assert!(shim.nodes[0]
            .on_client_request(&req, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn non_primary_forwards_requests_to_primary() {
        let mut shim = make_shim(base_config());
        let provider = Arc::clone(&shim.provider);
        let actions =
            shim.nodes[2].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let env = actions[0].as_send().unwrap();
        assert_eq!(env.to, Destination::Node(NodeId(0)));
        assert_eq!(env.msg.kind(), "CLIENT-REQUEST");
        assert_eq!(shim.nodes[2].requests_forwarded(), 1);
    }

    #[test]
    fn decentralized_spawning_makes_every_node_spawn() {
        let mut config = base_config();
        config.spawning = SpawningMode::Decentralized;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        let _ = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let a1 = shim.nodes[0].on_client_request(&signed_request(&provider, 1, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a1);
        // n_E (3) ≤ n_R (4), so every node spawns exactly one executor.
        for i in 0..4u32 {
            let spawns = external
                .iter()
                .filter(|(n, a)| *n == NodeId(i) && matches!(a, Action::SpawnExecutor { .. }))
                .count();
            assert_eq!(spawns, 1, "node {i}");
        }
    }

    #[test]
    fn error_from_verifier_starts_retransmit_timer_and_forwards() {
        let mut shim = make_shim(base_config());
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(3)),
            request: None,
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[2].on_message(&err);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::StartTimer {
                timer: ProtocolTimer::Retransmit(_),
                ..
            }
        )));
        let env = envelopes(&actions)[0];
        assert_eq!(
            env.to,
            Destination::Node(NodeId(0)),
            "forwarded to the primary"
        );
        // The matching ACK cancels the timer.
        let ack = ProtocolMessage::Ack(crate::events::AckMessage {
            subject: RecoverySubject::Seq(SeqNum(3)),
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[2].on_message(&ack);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer(ProtocolTimer::Retransmit(_)))));
    }

    #[test]
    fn replace_from_verifier_triggers_view_change() {
        let mut shim = make_shim(base_config());
        let replace = ProtocolMessage::Replace(ReplaceMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            signature: Signature::ZERO,
        });
        let actions = shim.nodes[1].on_message(&replace);
        assert!(actions.iter().any(|a| a.sends_kind("VIEWCHANGE")));
    }

    #[test]
    fn retransmit_timer_expiry_triggers_view_change() {
        let mut shim = make_shim(base_config());
        // The verifier reported a missing request; Υ is armed in view 0.
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            request: None,
            signature: Signature::ZERO,
        });
        let _ = shim.nodes[1].on_message(&err);
        // The primary never resolved it before Υ expired: view change.
        let actions = shim.nodes[1].on_timer(
            ProtocolTimer::Retransmit(RecoverySubject::Seq(SeqNum(1))),
            SimTime::ZERO,
        );
        assert!(actions.iter().any(|a| a.sends_kind("VIEWCHANGE")));
    }

    #[test]
    fn retransmit_timer_is_forgiven_after_a_view_change() {
        let mut shim = make_shim(base_config());
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            request: None,
            signature: Signature::ZERO,
        });
        let _ = shim.nodes[1].on_message(&err);
        // The primary is replaced before Υ expires (for another reason).
        let _ = shim.nodes[1].on_message(&ProtocolMessage::Replace(ReplaceMessage {
            subject: RecoverySubject::Seq(SeqNum(1)),
            signature: Signature::ZERO,
        }));
        // Υ now fires, but the view already moved on: no further escalation.
        // (The node's own view only advances once a quorum exists, so fake
        // the comparison by checking that no VIEWCHANGE for view 2 is sent.)
        let actions = shim.nodes[1].on_timer(
            ProtocolTimer::Retransmit(RecoverySubject::Seq(SeqNum(1))),
            SimTime::ZERO,
        );
        // The node already voted for view 1 when handling REPLACE, so the
        // timer expiry must not push it to vote again for a later view.
        for action in &actions {
            if let Some(env) = action.as_send() {
                if let ProtocolMessage::Consensus(sbft_consensus::ConsensusMessage::ViewChange(
                    vc,
                )) = &env.msg
                {
                    assert!(vc.new_view <= sbft_types::ViewNumber(1));
                }
            }
        }
    }

    #[test]
    fn planner_gates_spawning_for_conflicting_batches() {
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::KnownRwSets;
        config.workload.batch_size = 1;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        // Two conflicting single-transaction batches (both RMW key 7).
        let mk = |client: u32| {
            let txn = Transaction::new(
                TxnId::new(ClientId(client), 0),
                vec![Operation::ReadModifyWrite(Key(7), 1)],
            )
            .with_inferred_rwset();
            let digest = ClientRequest::signing_digest(&txn);
            ClientRequest {
                signature: provider
                    .handle(ComponentId::Client(ClientId(client)))
                    .sign(&digest),
                txn,
            }
        };
        let a1 = shim.nodes[0].on_client_request(&mk(0), SimTime::ZERO);
        let ext1 = run_consensus(&mut shim, 0, a1);
        let spawns1 = ext1
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns1, 3, "first batch spawns immediately");
        let a2 = shim.nodes[0].on_client_request(&mk(1), SimTime::ZERO);
        let ext2 = run_consensus(&mut shim, 0, a2);
        let spawns2 = ext2
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(
            spawns2, 0,
            "conflicting batch waits for the first to finish"
        );
        // The verifier validates batch 1; batch 2 is released.
        let actions = shim.nodes[0].on_message(&ProtocolMessage::BatchValidated(BatchValidated {
            seq: SeqNum(1),
            committed: 1,
            aborted: 0,
        }));
        let spawns3 = actions
            .iter()
            .filter(|a| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns3, 3, "validation releases the conflicting batch");
    }

    #[test]
    fn unknown_rwsets_spawn_three_f_plus_one_executors() {
        let mut config = SystemConfig::with_shim_size(4);
        config.conflict_handling = ConflictHandling::UnknownRwSets;
        config.workload.batch_size = 1;
        let mut shim = make_shim(config);
        let provider = Arc::clone(&shim.provider);
        let a = shim.nodes[0].on_client_request(&signed_request(&provider, 0, 0), SimTime::ZERO);
        let external = run_consensus(&mut shim, 0, a);
        let spawns = external
            .iter()
            .filter(|(_, a)| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns, 4, "3·f_E + 1 executors with f_E = 1");
    }

    #[test]
    fn cft_and_noshim_orderings_also_spawn() {
        let config = {
            let mut c = SystemConfig::with_shim_size(4);
            c.workload.batch_size = 1;
            c
        };
        let provider = CryptoProvider::new(5);
        // CFT-backed shim node (single-node degenerate cluster for the test).
        let mut cft_node = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                sbft_types::FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                config.timers.node_timeout,
            )),
        );
        let req = signed_request(&provider, 0, 0);
        let actions = cft_node.on_client_request(&req, SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SpawnExecutor { .. })));
        // NoShim node.
        let mut noshim = ShimNode::new(
            NodeId(0),
            config.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(NoShim::new(NodeId(0))),
        );
        let req = signed_request(&provider, 1, 0);
        let actions = noshim.on_client_request(&req, SimTime::ZERO);
        let spawns = actions
            .iter()
            .filter(|a| matches!(a, Action::SpawnExecutor { .. }))
            .count();
        assert_eq!(spawns, config.executors_per_batch());
        assert_eq!(noshim.protocol_name(), "NoShim");
    }
}
