//! The trusted verifier `V`.
//!
//! The verifier is a lightweight wrapper around the on-premise data-store
//! (Section IV-D). It collects well-formed `VERIFY` messages from the
//! executors, waits for `f_E + 1` matching results, enforces the sequence
//! order the shim agreed on (`k_max` and the pending list `π`), runs the
//! concurrency-control check against storage, applies the writes, and
//! replies to the clients and the shim primary. It also implements:
//!
//! * the **flooding mitigation** of Section V-C (ignore further `VERIFY`
//!   messages once a request is matched),
//! * the **request-suppression recovery** of Figure 4 (client retries are
//!   answered with a re-sent `RESPONSE`, an `ERROR(k_max)`, an
//!   `ERROR(⟨T⟩_C)` or a `REPLACE`, followed by an `ACK` once resolved),
//! * the **byzantine-abort detection** of Section VI-B for conflicting
//!   transactions with unknown read-write sets (abort timer per batch,
//!   `REPLACE` when fewer than `2f_E + 1` executors answered, abort when
//!   enough answered but results do not match).

use crate::events::{
    AbortMessage, AckMessage, Action, BatchValidated, ClientRequest, Destination, ErrorMessage,
    ProtocolMessage, ProtocolTimer, RecoverySubject, ReplaceMessage, ResponseMessage,
};
use sbft_crypto::CryptoHandle;
use sbft_serverless::VerifyMessage;
use sbft_sharding::{CommitOutcome, ShardId, ShardScheduler, ShardedCommitter};
use sbft_storage::VersionedStore;
use sbft_telemetry::{Counter, Registry};
use sbft_types::{
    ComponentId, ConflictHandling, ExecutorId, FaultParams, SeqNum, ShardPlan, ShardingConfig,
    SimDuration, TxnId, TxnOutcome,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Per-batch bookkeeping while `VERIFY` messages are being collected.
#[derive(Debug, Default)]
struct SeqState {
    verifies: BTreeMap<ExecutorId, VerifyMessage>,
    matched: Option<VerifyMessage>,
    abort_tagged: bool,
    timer_started: bool,
}

/// Protocol parameters of the verifier, fixed at deployment time.
#[derive(Clone, Copy, Debug)]
pub struct VerifierConfig {
    /// Fault-tolerance parameters.
    pub params: FaultParams,
    /// Conflict-handling mode.
    pub conflict_handling: ConflictHandling,
    /// Abort-detection timer duration (Section VI-B).
    pub abort_timeout: SimDuration,
    /// Commit-certificate quorum `VERIFY` messages must carry (0 for the
    /// CFT / NoShim baselines, which cannot produce certificates).
    pub cert_quorum: usize,
    /// Total executors the shim spawns per committed batch (depends on
    /// the spawning mode, so it is supplied by the deployment rather than
    /// re-derived from `FaultParams`). Once this many `VERIFY`s arrived
    /// without a matching quorum, the batch can never match.
    pub spawned_per_batch: usize,
    /// Sharded-execution parameters for the commit path.
    pub sharding: ShardingConfig,
    /// The shim's featherweight checkpoint interval. The verifier
    /// truncates its `responded` / `txn_location` maps in the same rhythm
    /// (keeping one closed interval of history for client retries), so
    /// long runs stop growing without bound. `0` disables the GC.
    pub checkpoint_interval: u64,
}

/// The verifier role state machine.
pub struct Verifier {
    crypto: CryptoHandle,
    /// The sharded commit path replacing the single global `ccheck`.
    /// `Arc`-held so a worker pool can drive the same engine.
    committer: Arc<ShardedCommitter>,
    /// When attached (thread runtime), matched batches apply through this
    /// worker pool with real multi-core parallelism instead of
    /// synchronously on the verifier's thread; `None` keeps the
    /// deterministic synchronous path (simulator, tests).
    apply_pool: Option<ShardScheduler>,
    config: VerifierConfig,

    /// Sequence number of the next request to be validated.
    kmax: SeqNum,
    /// The pending list `π` plus in-progress collection state.
    pending: BTreeMap<SeqNum, SeqState>,
    /// Responses already sent, kept to answer client re-transmissions.
    /// Truncated at the featherweight checkpoint interval (see
    /// [`VerifierConfig::checkpoint_interval`]).
    responded: HashMap<TxnId, ProtocolMessage>,
    /// Which batch each transaction was ordered in (learned from `VERIFY`).
    /// Truncated together with `responded`.
    txn_location: HashMap<TxnId, SeqNum>,
    /// Highest sequence number at or below which the retry maps have been
    /// garbage-collected.
    gc_floor: SeqNum,
    /// Recovery subjects we broadcast an `ERROR`/`REPLACE` for and still
    /// owe an `ACK`.
    outstanding: BTreeSet<RecoverySubject>,

    committed_txns: Counter,
    aborted_txns: Counter,
    ignored_verifies: Counter,
    validated_batches: Counter,
    divergent_aborts: Counter,
    pool_applied_txns: Counter,
    planned_batches: Counter,
    plan_mismatches: Counter,
    single_home_batches: Counter,
}

impl Verifier {
    /// Creates the verifier.
    #[must_use]
    pub fn new(crypto: CryptoHandle, store: Arc<VersionedStore>, config: VerifierConfig) -> Self {
        let committer = Arc::new(ShardedCommitter::new(store, &config.sharding));
        Verifier {
            crypto,
            committer,
            apply_pool: None,
            config,
            kmax: SeqNum(1),
            pending: BTreeMap::new(),
            responded: HashMap::new(),
            txn_location: HashMap::new(),
            gc_floor: SeqNum(0),
            outstanding: BTreeSet::new(),
            committed_txns: Counter::new(),
            aborted_txns: Counter::new(),
            ignored_verifies: Counter::new(),
            validated_batches: Counter::new(),
            divergent_aborts: Counter::new(),
            pool_applied_txns: Counter::new(),
            planned_batches: Counter::new(),
            plan_mismatches: Counter::new(),
            single_home_batches: Counter::new(),
        }
    }

    /// Re-homes the verifier's counters into `registry` under
    /// `verifier.*`. Called once by the system builder.
    pub fn register_metrics(&mut self, registry: &Registry) {
        self.committed_txns = registry.counter("verifier.committed_txns");
        self.aborted_txns = registry.counter("verifier.aborted_txns");
        self.ignored_verifies = registry.counter("verifier.ignored_verifies");
        self.validated_batches = registry.counter("verifier.validated_batches");
        self.divergent_aborts = registry.counter("verifier.divergent_aborts");
        self.pool_applied_txns = registry.counter("verifier.pool_applied_txns");
        self.planned_batches = registry.counter("verifier.planned_batches");
        self.plan_mismatches = registry.counter("verifier.plan_mismatches");
        self.single_home_batches = registry.counter("verifier.single_home_batches");
    }

    /// The attached apply pool, when one is active (the runtime registers
    /// its metrics after attaching it).
    #[must_use]
    pub fn apply_pool(&self) -> Option<&ShardScheduler> {
        self.apply_pool.as_ref()
    }

    /// Attaches a [`ShardScheduler`] worker pool as the apply stage:
    /// matched batches are handed to the pool in one shared allocation
    /// and applied with real multi-core parallelism; the verifier blocks
    /// for the batch's per-transaction outcomes before answering clients,
    /// and `k_max`-ordered submission plus per-shard FIFO draining
    /// preserve per-shard commit order. Used by the thread runtime
    /// (`sbft-runtime`); the discrete-event simulator keeps the
    /// synchronous path.
    pub fn attach_apply_pool(&mut self, workers: usize) {
        let validate_reads = self.validate_reads();
        self.apply_pool = Some(ShardScheduler::new(
            Arc::clone(&self.committer),
            workers,
            validate_reads,
        ));
    }

    /// Whether an apply pool is attached.
    #[must_use]
    pub fn apply_pool_active(&self) -> bool {
        self.apply_pool.is_some()
    }

    /// Transactions applied through the attached worker pool.
    #[must_use]
    pub fn pool_applied_txns(&self) -> u64 {
        self.pool_applied_txns.get()
    }

    /// Sequence number of the next batch the verifier will validate.
    #[must_use]
    pub fn kmax(&self) -> SeqNum {
        self.kmax
    }

    /// Transactions whose writes have been applied.
    #[must_use]
    pub fn committed_txns(&self) -> u64 {
        self.committed_txns.get()
    }

    /// Transactions aborted (stale reads or byzantine-abort detection).
    #[must_use]
    pub fn aborted_txns(&self) -> u64 {
        self.aborted_txns.get()
    }

    /// `VERIFY` messages ignored by the flooding mitigation.
    #[must_use]
    pub fn ignored_verifies(&self) -> u64 {
        self.ignored_verifies.get()
    }

    /// Batches fully validated so far.
    #[must_use]
    pub fn validated_batches(&self) -> u64 {
        self.validated_batches.get()
    }

    /// Whole batches aborted because every spawned executor answered and
    /// no `f_E + 1` of the digests matched (the Section VI-B divergence
    /// rule, both the count-triggered and the timer-triggered form).
    #[must_use]
    pub fn divergent_aborts(&self) -> u64 {
        self.divergent_aborts.get()
    }

    /// Batches applied through the verified ordering-time fast path (a
    /// `SingleHome` plan tag that survived re-derivation: one shard, no
    /// per-transaction routing, no cross-home probe).
    #[must_use]
    pub fn planned_batches(&self) -> u64 {
        self.planned_batches.get()
    }

    /// `SingleHome` plan tags that failed re-derivation against the
    /// observed read-write sets (only a byzantine primary or mis-declared
    /// read-write sets produce these); each fell back deterministically
    /// to the unplanned routing path.
    #[must_use]
    pub fn plan_mismatches(&self) -> u64 {
        self.plan_mismatches.get()
    }

    /// Validated batches whose entire footprint lived on one shard —
    /// whether pre-planned or discovered by apply-time routing. The
    /// complement (over [`Self::validated_batches`]) is the cross-shard
    /// coordination rate the ordering-time planner drives down.
    #[must_use]
    pub fn single_home_batches(&self) -> u64 {
        self.single_home_batches.get()
    }

    /// Entries currently held for client-retry answering (tests and memory
    /// accounting).
    #[must_use]
    pub fn responded_len(&self) -> usize {
        self.responded.len()
    }

    /// Entries currently held in the transaction-location map (tests and
    /// memory accounting).
    #[must_use]
    pub fn txn_location_len(&self) -> usize {
        self.txn_location.len()
    }

    /// The sharded commit engine (router, per-shard states and counters).
    #[must_use]
    pub fn committer(&self) -> &ShardedCommitter {
        &self.committer
    }

    /// Number of batches sitting in the pending list `π` (matched or
    /// still collecting votes) ahead of `k_max`.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn validate_reads(&self) -> bool {
        !matches!(
            self.config.conflict_handling,
            ConflictHandling::NonConflicting
        )
    }

    fn me(&self) -> ComponentId {
        ComponentId::Verifier
    }

    fn sign_marker(&self, label: &str, a: u64, b: u64) -> sbft_types::Signature {
        self.crypto.sign(&sbft_crypto::digest_u64s(label, &[a, b]))
    }

    // ---- VERIFY handling ---------------------------------------------------

    /// Handles a `VERIFY` message from an executor (Figure 3, lines 21–29).
    pub fn on_verify(&mut self, msg: &VerifyMessage) -> Vec<Action> {
        // Well-formedness: executor signature and certificate.
        if !self.crypto.verify(
            ComponentId::Executor(msg.executor),
            &msg.result_digest,
            &msg.signature,
        ) {
            return Vec::new();
        }
        if self.config.cert_quorum > 0
            && msg
                .certificate
                .verify(
                    self.crypto.provider().key_store(),
                    self.config.cert_quorum,
                    self.config.params.n_r,
                )
                .is_err()
        {
            return Vec::new();
        }

        // Already validated requests and already matched batches: ignore
        // (the flooding mitigation of Section V-C).
        if msg.seq < self.kmax {
            self.ignored_verifies.inc();
            return Vec::new();
        }
        let quorum = self.config.params.verify_quorum();
        let spawned_per_batch = self.config.spawned_per_batch;
        let abort_timeout = self.config.abort_timeout;
        let track_aborts = matches!(
            self.config.conflict_handling,
            ConflictHandling::UnknownRwSets
        );
        let state = self.pending.entry(msg.seq).or_default();
        if state.matched.is_some() {
            self.ignored_verifies.inc();
            return Vec::new();
        }
        if state.verifies.contains_key(&msg.executor) {
            // Duplicate VERIFY from the same executor (flooding attack).
            self.ignored_verifies.inc();
            return Vec::new();
        }
        state.verifies.insert(msg.executor, msg.clone());

        let mut actions = Vec::new();
        // Start the abort-detection timer on the first VERIFY for this
        // batch (only needed when conflicts with unknown rw-sets are
        // possible, Section VI-B).
        if track_aborts && !state.timer_started {
            state.timer_started = true;
            actions.push(Action::StartTimer {
                timer: ProtocolTimer::VerifierAbort(msg.seq),
                duration: abort_timeout,
            });
        }

        // Record where each transaction lives for client-retry handling.
        for r in msg.results.iter() {
            self.txn_location.insert(r.txn, msg.seq);
        }

        // Count matching results.
        let state = self.pending.get_mut(&msg.seq).expect("state exists");
        let matching = state
            .verifies
            .values()
            .filter(|v| v.result_digest == msg.result_digest)
            .count();
        if matching >= quorum {
            state.matched = Some(msg.clone());
            if state.timer_started {
                actions.push(Action::CancelTimer(ProtocolTimer::VerifierAbort(msg.seq)));
            }
            actions.extend(self.advance_kmax());
        } else if state.verifies.len() >= spawned_per_batch {
            // Every spawned executor has answered and no digest reached
            // the f_E + 1 quorum: the batch can never match (executors of
            // one batch observed interleaved storage states, or byzantine
            // executors diverged). Abort it deterministically — the
            // count-triggered form of the Section VI-B divergence rule —
            // so k_max never blocks behind an unmatchable batch.
            let best = state
                .verifies
                .values()
                .map(|candidate| {
                    state
                        .verifies
                        .values()
                        .filter(|v| v.result_digest == candidate.result_digest)
                        .count()
                })
                .max()
                .unwrap_or(0);
            if best < quorum {
                state.abort_tagged = true;
                if state.timer_started {
                    actions.push(Action::CancelTimer(ProtocolTimer::VerifierAbort(msg.seq)));
                }
                actions.extend(self.advance_kmax());
            }
        }
        actions
    }

    /// Validates every batch at the head of the order that is matched (or
    /// abort-tagged), advancing `k_max` (Figure 3, lines 24–29).
    fn advance_kmax(&mut self) -> Vec<Action> {
        let mut actions = Vec::new();
        while let Some(state) = self.pending.get(&self.kmax) {
            if state.matched.is_none() && !state.abort_tagged {
                break;
            }
            let seq = self.kmax;
            let state = self.pending.remove(&seq).expect("present");
            if let Some(matched) = state.matched {
                actions.extend(self.apply_batch(seq, &matched));
            } else {
                actions.extend(self.abort_batch(seq, &state));
            }
            self.kmax = self.kmax.next();
        }
        self.gc_retry_maps();
        actions
    }

    /// Whether the worker pool's per-home-shard FIFO ordering is exact
    /// for this batch: true iff no key is shared — with at least one
    /// writer — by transactions whose home shards differ. Transactions
    /// with the same home shard are applied in batch order by a single
    /// worker, and read-only sharing is order independent, so everything
    /// else commutes.
    fn pool_order_exact(results: &[sbft_types::TxnResult], routes: &[BTreeSet<ShardId>]) -> bool {
        /// Per-key summary: the first home shard that touched it, whether
        /// any *other* home touched it since, and whether anyone wrote it.
        struct Touch {
            first_home: ShardId,
            multi_home: bool,
            any_write: bool,
        }
        let mut touched: HashMap<sbft_types::Key, Touch> = HashMap::new();
        for (result, involved) in results.iter().zip(routes) {
            let Some(home) = involved.iter().next().copied() else {
                continue; // touches no data
            };
            let reads = result.rwset.reads.iter().map(|(key, _)| (*key, false));
            let writes = result.rwset.writes.iter().map(|(key, _)| (*key, true));
            for (key, writes_key) in reads.chain(writes) {
                match touched.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut entry) => {
                        let touch = entry.get_mut();
                        let differs = touch.first_home != home;
                        // Unsafe as soon as the key has (or now gains) a
                        // writer while being touched by two distinct
                        // homes — in either order.
                        if (touch.any_write || writes_key) && (touch.multi_home || differs) {
                            return false;
                        }
                        touch.multi_home |= differs;
                        touch.any_write |= writes_key;
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(Touch {
                            first_home: home,
                            multi_home: false,
                            any_write: writes_key,
                        });
                    }
                }
            }
        }
        true
    }

    /// Truncates the client-retry maps in the rhythm of the shim's
    /// featherweight checkpoints. Entries for batches at or below the
    /// previous checkpoint (one closed interval behind the latest one
    /// `k_max` passed) are dropped: late duplicate requests inside the
    /// retained window are still answered with the stored `RESPONSE`,
    /// while anything older falls back to the `ERROR(⟨T⟩_C)` path — the
    /// primary recognises the duplicate and drops it.
    fn gc_retry_maps(&mut self) {
        let interval = self.config.checkpoint_interval;
        if interval == 0 {
            return;
        }
        let validated = self.kmax.0.saturating_sub(1);
        let stable = (validated / interval) * interval;
        let cutoff = SeqNum(stable.saturating_sub(interval));
        if cutoff <= self.gc_floor {
            return;
        }
        self.gc_floor = cutoff;
        let mut dropped = Vec::new();
        self.txn_location.retain(|txn, seq| {
            if *seq <= cutoff {
                dropped.push(*txn);
                false
            } else {
                true
            }
        });
        for txn in &dropped {
            self.responded.remove(txn);
        }
    }

    /// Applies a matched batch: per-transaction concurrency check through
    /// the shard router, storage update, client responses, primary
    /// notification, ACKs. The per-shard `ccheck` work is announced first
    /// (as [`Action::ShardCcheck`]) so CPU-modelling runtimes can charge
    /// it to the shard stations before the responses leave.
    ///
    /// With an [`Self::attach_apply_pool`]ed worker pool the OCC
    /// validation and writes run on the pool (one shared allocation per
    /// batch, per-transaction outcomes collected through the ticket);
    /// otherwise they run synchronously on the caller. Both paths produce
    /// identical outcomes — the pool drives the very same
    /// [`ShardedCommitter`].
    fn apply_batch(&mut self, seq: SeqNum, matched: &VerifyMessage) -> Vec<Action> {
        let mut actions = Vec::new();
        let validate_reads = self.validate_reads();
        let router = *self.committer.router();
        // Trust-but-verify the ordering-time plan tag: a `SingleHome`
        // claim is honoured only after re-deriving it from the read-write
        // sets the executors actually observed (a cheap single pass over
        // the keys — no sets, no allocation). Only a byzantine primary or
        // a mis-declared read-write set can fail this check; the failure
        // falls back deterministically to the unplanned routing path, so
        // a lying tag costs the fast path but can never corrupt state.
        let verified_home = match matched.plan {
            ShardPlan::SingleHome(home) => {
                let in_range = (home.0 as usize) < router.num_shards();
                let all_home = in_range
                    && matched.results.iter().all(|result| {
                        router.all_on(
                            home,
                            result
                                .rwset
                                .reads
                                .iter()
                                .map(|(k, _)| *k)
                                .chain(result.rwset.writes.iter().map(|(k, _)| *k)),
                        )
                    });
                if all_home {
                    Some(home)
                } else {
                    // Out-of-range homes are lies too: count them so the
                    // detection telemetry sees every forged tag.
                    self.plan_mismatches.inc();
                    None
                }
            }
            _ => None,
        };
        let (outcomes, via_pool): (Vec<CommitOutcome>, bool) = if let Some(home) = verified_home {
            // Verified single-home fast path: the whole batch's ccheck
            // lands on one shard, per-transaction routing and the
            // cross-home fallback probe are skipped, and the pool (when
            // attached) receives the VERIFY message's own allocation.
            self.planned_batches.inc();
            self.single_home_batches.inc();
            let txns = matched.results.len() as u32;
            let accesses: u32 = matched
                .results
                .iter()
                .map(|result| result.rwset.len() as u32)
                .sum();
            actions.push(Action::ShardCcheck {
                shard: home,
                txns,
                accesses,
                planned: true,
                chained: false,
            });
            if let Some(pool) = self.apply_pool.as_ref() {
                let homes: Vec<Option<ShardId>> = matched
                    .results
                    .iter()
                    .map(|result| (!result.rwset.is_empty()).then_some(home))
                    .collect();
                (
                    pool.submit_tracked_homed(seq.0, Arc::clone(&matched.results), &homes)
                        .wait(),
                    true,
                )
            } else {
                let home_set: BTreeSet<ShardId> = std::iter::once(home).collect();
                (
                    matched
                        .results
                        .iter()
                        .map(|result| {
                            if result.rwset.is_empty() {
                                CommitOutcome::Applied
                            } else {
                                self.committer.commit_routed(
                                    &result.rwset,
                                    validate_reads,
                                    &home_set,
                                )
                            }
                        })
                        .collect(),
                    false,
                )
            }
        } else {
            // Unplanned (or mis-tagged / cross-home) path: route every
            // transaction once; the sets drive both the ShardCcheck
            // accounting and the commit calls below.
            let routes: Vec<BTreeSet<ShardId>> = matched
                .results
                .iter()
                .map(|result| self.committer.shards_of(&result.rwset))
                .collect();
            // Split the announced ccheck work: single-home transactions
            // charge their one shard and run in parallel across stations,
            // while cross-shard transactions hold every involved shard's
            // execution lock in ascending shard order — their slices are
            // `chained`, so CPU-modelling runtimes serialise them (shard
            // i+1 starts only after shard i grants).
            let mut solo_work: BTreeMap<ShardId, (u32, u32)> = BTreeMap::new();
            let mut cross_work: BTreeMap<ShardId, (u32, u32)> = BTreeMap::new();
            let mut all_shards: BTreeSet<ShardId> = BTreeSet::new();
            for (result, involved) in matched.results.iter().zip(&routes) {
                all_shards.extend(involved.iter().copied());
                let work = if involved.len() > 1 {
                    &mut cross_work
                } else {
                    &mut solo_work
                };
                for shard in involved {
                    let entry = work.entry(*shard).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += result.rwset.len() as u32;
                }
            }
            if all_shards.len() <= 1 {
                // Discovered-late single-home batch (the planner would
                // have tagged it; without lanes this is the baseline
                // measurement the `planner_points` experiment compares).
                self.single_home_batches.inc();
            }
            for (shard, (txns, accesses)) in solo_work {
                actions.push(Action::ShardCcheck {
                    shard,
                    txns,
                    accesses,
                    planned: false,
                    chained: false,
                });
            }
            for (shard, (txns, accesses)) in cross_work {
                actions.push(Action::ShardCcheck {
                    shard,
                    txns,
                    accesses,
                    planned: false,
                    chained: true,
                });
            }
            // The pool preserves commit order *within* a home shard (FIFO
            // queues, one worker per shard at a time), which is exact for
            // batches whose key overlaps all live on one home shard. A batch
            // where the same key is touched by transactions with different
            // home shards would apply those transactions in nondeterministic
            // relative order, so such (rare, cross-shard-conflicting) batches
            // fall back to the synchronous in-order path.
            let use_pool =
                self.apply_pool.is_some() && Self::pool_order_exact(&matched.results, &routes);
            if use_pool {
                let pool = self.apply_pool.as_ref().expect("checked above");
                // The VERIFY message's own result allocation is shared with
                // the pool (refcount bump — no per-transaction read-write
                // set is cloned); this thread waits for the per-transaction
                // outcomes. Batches reach this point in k_max order, so
                // per-shard commit order is submission order.
                let homes: Vec<Option<ShardId>> = routes
                    .iter()
                    .map(|involved| involved.iter().next().copied())
                    .collect();
                (
                    pool.submit_tracked_homed(seq.0, Arc::clone(&matched.results), &homes)
                        .wait(),
                    true,
                )
            } else {
                (
                    matched
                        .results
                        .iter()
                        .zip(&routes)
                        .map(|(result, involved)| {
                            self.committer
                                .commit_routed(&result.rwset, validate_reads, involved)
                        })
                        .collect(),
                    false,
                )
            }
        };
        if via_pool {
            self.pool_applied_txns.add(outcomes.len() as u64);
        }
        let mut committed = 0u32;
        let mut aborted = 0u32;
        for (result, outcome) in matched.results.iter().zip(&outcomes) {
            let (msg, txn_outcome) = if outcome.is_applied() {
                committed += 1;
                self.committed_txns.inc();
                (
                    ProtocolMessage::Response(ResponseMessage {
                        txn: result.txn,
                        seq,
                        outcome: TxnOutcome::Committed,
                        output: result.output,
                        signature: self.sign_marker("response", seq.0, result.output),
                    }),
                    TxnOutcome::Committed,
                )
            } else {
                aborted += 1;
                self.aborted_txns.inc();
                (
                    ProtocolMessage::Abort(AbortMessage {
                        txn: result.txn,
                        seq,
                        signature: self.sign_marker("abort", seq.0, result.txn.counter),
                    }),
                    TxnOutcome::Aborted,
                )
            };
            let _ = txn_outcome;
            self.responded.insert(result.txn, msg.clone());
            actions.push(Action::send(
                self.me(),
                Destination::Client(result.txn.client),
                msg,
            ));
            actions.extend(self.resolve_subject(RecoverySubject::Txn(result.txn)));
        }
        self.validated_batches.inc();
        actions.push(Action::send(
            self.me(),
            Destination::AllNodes,
            ProtocolMessage::BatchValidated(BatchValidated {
                seq,
                committed,
                aborted,
            }),
        ));
        actions.extend(self.resolve_subject(RecoverySubject::Seq(seq)));
        actions
    }

    /// Aborts a whole batch (byzantine-abort detection, Section VI-B).
    fn abort_batch(&mut self, seq: SeqNum, state: &SeqState) -> Vec<Action> {
        let mut actions = Vec::new();
        // Any received VERIFY tells us which transactions (and clients) the
        // batch contains.
        let Some(sample) = state.verifies.values().next() else {
            return actions;
        };
        self.divergent_aborts.inc();
        let mut aborted = 0u32;
        for result in sample.results.iter() {
            aborted += 1;
            self.aborted_txns.inc();
            let msg = ProtocolMessage::Abort(AbortMessage {
                txn: result.txn,
                seq,
                signature: self.sign_marker("abort", seq.0, result.txn.counter),
            });
            self.responded.insert(result.txn, msg.clone());
            actions.push(Action::send(
                self.me(),
                Destination::Client(result.txn.client),
                msg,
            ));
            actions.extend(self.resolve_subject(RecoverySubject::Txn(result.txn)));
        }
        self.validated_batches.inc();
        actions.push(Action::send(
            self.me(),
            Destination::AllNodes,
            ProtocolMessage::BatchValidated(BatchValidated {
                seq,
                committed: 0,
                aborted,
            }),
        ));
        actions.extend(self.resolve_subject(RecoverySubject::Seq(seq)));
        actions
    }

    /// Broadcasts an `ACK` if the subject had an outstanding `ERROR`.
    fn resolve_subject(&mut self, subject: RecoverySubject) -> Vec<Action> {
        if !self.outstanding.remove(&subject) {
            return Vec::new();
        }
        vec![Action::send(
            self.me(),
            Destination::AllNodes,
            ProtocolMessage::Ack(AckMessage {
                subject,
                signature: self.sign_marker("ack", 0, 0),
            }),
        )]
    }

    // ---- abort-detection timer ----------------------------------------------

    /// Handles the expiry of the abort-detection timer for `seq`
    /// (Section VI-B, *Verifier Abort Detection*).
    pub fn on_abort_timeout(&mut self, seq: SeqNum) -> Vec<Action> {
        let blame_threshold = self.config.params.verify_blame_threshold();
        let Some(state) = self.pending.get_mut(&seq) else {
            return Vec::new(); // already validated
        };
        if state.matched.is_some() {
            return Vec::new();
        }
        if state.verifies.len() < blame_threshold {
            // Fewer than 2f_E + 1 executors answered: conservatively blame
            // the primary and ask the shim to replace it.
            let subject = RecoverySubject::Seq(seq);
            self.outstanding.insert(subject);
            return vec![Action::send(
                self.me(),
                Destination::AllNodes,
                ProtocolMessage::Replace(ReplaceMessage {
                    subject,
                    signature: self.sign_marker("replace", seq.0, 0),
                }),
            )];
        }
        // Enough executors answered but their results conflict: the
        // transaction(s) must be aborted. If this is the next batch in
        // order we abort immediately, otherwise we tag it in π.
        state.abort_tagged = true;
        self.advance_kmax()
    }

    // ---- client re-transmissions ----------------------------------------------

    /// Handles a client request re-transmitted directly to the verifier
    /// (Figure 4, verifier role).
    pub fn on_client_request(&mut self, req: &ClientRequest) -> Vec<Action> {
        let digest = ClientRequest::signing_digest(&req.txn);
        if !self.crypto.verify(
            ComponentId::Client(req.txn.id.client),
            &digest,
            &req.signature,
        ) {
            return Vec::new();
        }
        let txn = req.txn.id;
        // (i) Already answered: re-send the response.
        if let Some(msg) = self.responded.get(&txn) {
            return vec![Action::send(
                self.me(),
                Destination::Client(txn.client),
                msg.clone(),
            )];
        }
        match self.txn_location.get(&txn) {
            Some(seq) => {
                let matched = self
                    .pending
                    .get(seq)
                    .is_some_and(|state| state.matched.is_some());
                if matched {
                    // (ii) The request sits in π waiting for k_max: tell the
                    // shim which sequence number is missing.
                    let subject = RecoverySubject::Seq(self.kmax);
                    self.outstanding.insert(subject);
                    vec![Action::send(
                        self.me(),
                        Destination::AllNodes,
                        ProtocolMessage::Error(ErrorMessage {
                            subject,
                            request: None,
                            signature: self.sign_marker("error", self.kmax.0, 0),
                        }),
                    )]
                } else {
                    // (iii) Some VERIFY messages arrived but not f_E + 1
                    // matching ones: only a byzantine primary can cause
                    // this, ask for its replacement.
                    let subject = RecoverySubject::Txn(txn);
                    self.outstanding.insert(subject);
                    vec![Action::send(
                        self.me(),
                        Destination::AllNodes,
                        ProtocolMessage::Replace(ReplaceMessage {
                            subject,
                            signature: self.sign_marker("replace", txn.counter, 1),
                        }),
                    )]
                }
            }
            None => {
                // No VERIFY message mentions this transaction: the shim may
                // never have ordered it. The ERROR carries ⟨T⟩_C so the
                // primary can order it (Figure 4, line 12).
                let subject = RecoverySubject::Txn(txn);
                self.outstanding.insert(subject);
                vec![Action::send(
                    self.me(),
                    Destination::AllNodes,
                    ProtocolMessage::Error(ErrorMessage {
                        subject,
                        request: Some(req.clone()),
                        signature: self.sign_marker("error", txn.counter, 1),
                    }),
                )]
            }
        }
    }

    /// Entry point for all messages addressed to the verifier.
    pub fn on_message(&mut self, msg: &ProtocolMessage) -> Vec<Action> {
        match msg {
            ProtocolMessage::Verify(v) => self.on_verify(v),
            ProtocolMessage::ClientRequest(r) => self.on_client_request(r),
            _ => Vec::new(),
        }
    }

    /// Entry point for verifier timers.
    pub fn on_timer(&mut self, timer: ProtocolTimer) -> Vec<Action> {
        match timer {
            ProtocolTimer::VerifierAbort(seq) => self.on_abort_timeout(seq),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_crypto::certificate::commit_digest;
    use sbft_crypto::{CommitCertificate, CryptoProvider, SimSigner};
    use sbft_storage::YcsbTable;
    use sbft_types::{
        Batch, ClientId, Digest, Key, NodeId, Operation, ReadWriteSet, Transaction, TxnResult,
        Value, Version, ViewNumber,
    };

    struct Fixture {
        provider: Arc<CryptoProvider>,
        store: Arc<VersionedStore>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                provider: CryptoProvider::new(5),
                store: YcsbTable::populate(100).store().clone(),
            }
        }

        fn verifier(&self, conflict: ConflictHandling) -> Verifier {
            self.verifier_sharded(conflict, ShardingConfig::default())
        }

        fn verifier_sharded(
            &self,
            conflict: ConflictHandling,
            sharding: ShardingConfig,
        ) -> Verifier {
            // Primary-only spawning: n_e executors per batch, or 3f_E + 1
            // when conflicting transactions have unknown rw-sets.
            let params = FaultParams::for_shim_size(4);
            let spawned = match conflict {
                ConflictHandling::UnknownRwSets => params.n_e.max(params.executors_for_conflicts()),
                _ => params.n_e,
            };
            Verifier::new(
                self.provider.handle(ComponentId::Verifier),
                Arc::clone(&self.store),
                VerifierConfig {
                    params,
                    conflict_handling: conflict,
                    abort_timeout: SimDuration::from_millis(100),
                    cert_quorum: 3,
                    spawned_per_batch: spawned,
                    sharding,
                    checkpoint_interval: 4,
                },
            )
        }

        fn certificate(&self, seq: u64, digest: Digest) -> std::sync::Arc<CommitCertificate> {
            let cd = commit_digest(ViewNumber(0), SeqNum(seq), &digest);
            let entries = (0..3u32)
                .map(|n| {
                    let kp = self
                        .provider
                        .key_store()
                        .keypair_for(ComponentId::Node(NodeId(n)));
                    (NodeId(n), SimSigner::sign(&kp, &cd))
                })
                .collect();
            std::sync::Arc::new(CommitCertificate::new(
                ViewNumber(0),
                SeqNum(seq),
                digest,
                entries,
            ))
        }

        /// Builds a VERIFY message from executor `executor` for batch `seq`
        /// containing a single committed write of `value` to key 1 read at
        /// `read_version`.
        fn verify_msg(
            &self,
            executor: u64,
            seq: u64,
            client: u32,
            value: u64,
            read_version: u64,
        ) -> VerifyMessage {
            let txn_id = TxnId::new(ClientId(client), seq);
            let mut rwset = ReadWriteSet::new();
            rwset.record_read(Key(1), Version(read_version));
            rwset.record_write(Key(2), Value::new(value));
            let results = vec![TxnResult {
                txn: txn_id,
                output: value,
                rwset,
            }];
            self.verify_msg_with_results(executor, seq, results)
        }

        /// Builds a VERIFY message carrying an arbitrary result list.
        fn verify_msg_with_results(
            &self,
            executor: u64,
            seq: u64,
            results: Vec<TxnResult>,
        ) -> VerifyMessage {
            let digest = Digest::from_bytes([seq as u8; 32]);
            let result_digest = VerifyMessage::digest_of_results(SeqNum(seq), &results);
            let handle = self
                .provider
                .handle(ComponentId::Executor(ExecutorId(executor)));
            let batch = Batch::single(Transaction::new(
                results[0].txn,
                vec![Operation::Read(Key(1))],
            ));
            VerifyMessage {
                executor: ExecutorId(executor),
                view: ViewNumber(0),
                seq: SeqNum(seq),
                batch_id: batch.id(),
                batch_digest: digest,
                results: results.into(),
                result_digest,
                certificate: self.certificate(seq, digest),
                plan: ShardPlan::Unplanned,
                signature: handle.sign(&result_digest),
            }
        }

        /// Like [`Self::verify_msg_with_results`], with an ordering-time
        /// plan tag attached (honest or lying — the verifier must not
        /// care for correctness).
        fn verify_msg_planned(
            &self,
            executor: u64,
            seq: u64,
            results: Vec<TxnResult>,
            plan: ShardPlan,
        ) -> VerifyMessage {
            let mut msg = self.verify_msg_with_results(executor, seq, results);
            msg.plan = plan;
            msg
        }
    }

    fn response_kinds(actions: &[Action]) -> Vec<&'static str> {
        crate::events::envelopes(actions)
            .iter()
            .map(|e| e.msg.kind())
            .collect()
    }

    #[test]
    fn two_matching_verifies_validate_and_respond() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let m1 = fx.verify_msg(1, 1, 0, 42, 1);
        let m2 = fx.verify_msg(2, 1, 0, 42, 1);
        assert!(v.on_verify(&m1).is_empty(), "one VERIFY is not enough");
        let actions = v.on_verify(&m2);
        let kinds = response_kinds(&actions);
        assert!(kinds.contains(&"RESPONSE"));
        assert!(kinds.contains(&"BATCH-VALIDATED"));
        assert_eq!(v.committed_txns(), 1);
        assert_eq!(v.kmax(), SeqNum(2));
        // The write was applied to storage.
        assert_eq!(fx.store.get(Key(2)).unwrap().value, Value::new(42));
    }

    #[test]
    fn mismatching_results_do_not_reach_quorum() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let honest = fx.verify_msg(1, 1, 0, 42, 1);
        let lying = fx.verify_msg(2, 1, 0, 999, 1);
        assert!(v.on_verify(&honest).is_empty());
        assert!(v.on_verify(&lying).is_empty());
        assert_eq!(v.committed_txns(), 0);
        // A third executor agreeing with the honest one resolves it.
        let honest2 = fx.verify_msg(3, 1, 0, 42, 1);
        let actions = v.on_verify(&honest2);
        assert!(response_kinds(&actions).contains(&"RESPONSE"));
        assert_eq!(fx.store.get(Key(2)).unwrap().value, Value::new(42));
    }

    #[test]
    fn out_of_order_batches_wait_in_pi() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        // Batch 2 matches first but must wait for batch 1.
        let _ = v.on_verify(&fx.verify_msg(1, 2, 1, 7, 1));
        let actions = v.on_verify(&fx.verify_msg(2, 2, 1, 7, 1));
        assert!(
            response_kinds(&actions).is_empty(),
            "batch 2 must wait for batch 1"
        );
        assert_eq!(v.kmax(), SeqNum(1));
        assert_eq!(v.pending_len(), 1);
        // Batch 1 arrives and both validate in order.
        let _ = v.on_verify(&fx.verify_msg(3, 1, 0, 5, 1));
        let actions = v.on_verify(&fx.verify_msg(4, 1, 0, 5, 1));
        assert_eq!(v.kmax(), SeqNum(3));
        let kinds = response_kinds(&actions);
        assert_eq!(kinds.iter().filter(|k| **k == "RESPONSE").count(), 2);
        assert_eq!(v.validated_batches(), 2);
    }

    #[test]
    fn flooding_duplicates_are_ignored() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let m1 = fx.verify_msg(1, 1, 0, 42, 1);
        let _ = v.on_verify(&m1);
        // The same executor floods the verifier with copies.
        let _ = v.on_verify(&m1);
        let _ = v.on_verify(&m1);
        assert_eq!(v.ignored_verifies(), 2);
        // Match the batch; further VERIFY messages for it are ignored too.
        let _ = v.on_verify(&fx.verify_msg(2, 1, 0, 42, 1));
        let _ = v.on_verify(&fx.verify_msg(3, 1, 0, 42, 1));
        assert!(v.ignored_verifies() >= 3);
        assert_eq!(
            v.committed_txns(),
            1,
            "flooding does not double-apply writes"
        );
    }

    #[test]
    fn forged_executor_signature_rejected() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let mut m = fx.verify_msg(1, 1, 0, 42, 1);
        m.signature = sbft_types::Signature::ZERO;
        assert!(v.on_verify(&m).is_empty());
        assert_eq!(v.pending_len(), 0, "rejected messages are not stored");
    }

    #[test]
    fn bad_certificate_rejected() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let mut m = fx.verify_msg(1, 1, 0, 42, 1);
        std::sync::Arc::make_mut(&mut m.certificate)
            .entries
            .truncate(1);
        assert!(v.on_verify(&m).is_empty());
    }

    #[test]
    fn stale_reads_abort_the_transaction_when_conflicts_tracked() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::UnknownRwSets);
        // The executors read key 1 at version 1, but storage has moved on.
        fx.store.put(Key(1), Value::new(123));
        let m1 = fx.verify_msg(1, 1, 0, 42, 1);
        let _ = v.on_verify(&m1);
        let actions = v.on_verify(&fx.verify_msg(2, 1, 0, 42, 1));
        let kinds = response_kinds(&actions);
        assert!(kinds.contains(&"ABORT"));
        assert_eq!(v.aborted_txns(), 1);
        assert_eq!(v.committed_txns(), 0);
        // Key 2 was not written.
        assert_ne!(fx.store.get(Key(2)).unwrap().value, Value::new(42));
    }

    #[test]
    fn abort_timer_starts_only_in_unknown_rwset_mode() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::UnknownRwSets);
        let actions = v.on_verify(&fx.verify_msg(1, 1, 0, 42, 1));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::StartTimer {
                timer: ProtocolTimer::VerifierAbort(_),
                ..
            }
        )));
        let mut v2 = fx.verifier(ConflictHandling::NonConflicting);
        let actions = v2.on_verify(&fx.verify_msg(1, 1, 0, 42, 1));
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::StartTimer {
                timer: ProtocolTimer::VerifierAbort(_),
                ..
            }
        )));
    }

    #[test]
    fn abort_timeout_with_few_verifies_blames_the_primary() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::UnknownRwSets);
        // Only one executor answered (< 2f_E + 1 = 3).
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 42, 1));
        let actions = v.on_abort_timeout(SeqNum(1));
        assert!(actions.iter().any(|a| a.sends_kind("REPLACE")));
        assert_eq!(
            v.aborted_txns(),
            0,
            "blaming the primary does not abort yet"
        );
    }

    #[test]
    fn abort_timeout_with_enough_but_divergent_verifies_aborts() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::UnknownRwSets);
        // 3 executors answered (≥ 2f_E + 1) but no two match.
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 1, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 0, 2, 1));
        let _ = v.on_verify(&fx.verify_msg(3, 1, 0, 3, 1));
        let actions = v.on_abort_timeout(SeqNum(1));
        assert!(actions.iter().any(|a| a.sends_kind("ABORT")));
        assert_eq!(v.aborted_txns(), 1);
        assert_eq!(v.divergent_aborts(), 1);
        assert_eq!(
            v.kmax(),
            SeqNum(2),
            "the aborted batch no longer blocks the order"
        );
    }

    #[test]
    fn client_retry_resends_existing_response() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let _ = v.on_verify(&fx.verify_msg(1, 1, 3, 42, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 3, 42, 1));
        // The client re-transmits its request to the verifier.
        let txn = Transaction::new(TxnId::new(ClientId(3), 1), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&txn);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(3)))
                .sign(&digest),
            txn,
        };
        let actions = v.on_client_request(&req);
        let env = actions[0].as_send().unwrap();
        assert_eq!(env.to, Destination::Client(ClientId(3)));
        assert_eq!(env.msg.kind(), "RESPONSE");
    }

    #[test]
    fn client_retry_for_unknown_txn_raises_error() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let txn = Transaction::new(TxnId::new(ClientId(5), 0), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&txn);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(5)))
                .sign(&digest),
            txn,
        };
        let actions = v.on_client_request(&req);
        assert!(actions.iter().any(|a| a.sends_kind("ERROR")));
    }

    #[test]
    fn client_retry_with_forged_signature_ignored() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let txn = Transaction::new(TxnId::new(ClientId(5), 0), vec![Operation::Read(Key(1))]);
        let req = ClientRequest {
            txn,
            signature: sbft_types::Signature::ZERO,
        };
        assert!(v.on_client_request(&req).is_empty());
    }

    #[test]
    fn client_retry_while_waiting_in_pi_reports_kmax_and_acks_later() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        // Batch 2 is matched but batch 1 has not arrived.
        let _ = v.on_verify(&fx.verify_msg(1, 2, 4, 9, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 2, 4, 9, 1));
        let txn = Transaction::new(TxnId::new(ClientId(4), 2), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&txn);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(4)))
                .sign(&digest),
            txn,
        };
        let actions = v.on_client_request(&req);
        let error = crate::events::envelopes(&actions)
            .into_iter()
            .find(|e| e.msg.kind() == "ERROR")
            .expect("error broadcast");
        match &error.msg {
            ProtocolMessage::Error(e) => {
                assert_eq!(
                    e.subject,
                    RecoverySubject::Seq(SeqNum(1)),
                    "reports the missing k_max"
                );
            }
            _ => unreachable!(),
        }
        // Batch 1 finally validates: the verifier ACKs the resolved subject.
        let _ = v.on_verify(&fx.verify_msg(3, 1, 0, 5, 1));
        let actions = v.on_verify(&fx.verify_msg(4, 1, 0, 5, 1));
        assert!(actions.iter().any(|a| a.sends_kind("ACK")));
    }

    #[test]
    fn client_retry_with_divergent_verifies_requests_replacement() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::UnknownRwSets);
        // Verifies exist for the transaction but they do not match.
        let _ = v.on_verify(&fx.verify_msg(1, 1, 6, 1, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 6, 2, 1));
        let txn = Transaction::new(TxnId::new(ClientId(6), 1), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&txn);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(6)))
                .sign(&digest),
            txn,
        };
        let actions = v.on_client_request(&req);
        assert!(actions.iter().any(|a| a.sends_kind("REPLACE")));
    }

    #[test]
    fn fully_divergent_verifies_abort_deterministically() {
        // All three spawned executors answered with three different
        // digests: no f_E + 1 quorum is possible, so the batch must abort
        // immediately instead of blocking k_max forever.
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 1, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 0, 2, 1));
        let actions = v.on_verify(&fx.verify_msg(3, 1, 0, 3, 1));
        assert!(actions.iter().any(|a| a.sends_kind("ABORT")));
        assert_eq!(v.aborted_txns(), 1);
        assert_eq!(v.divergent_aborts(), 1);
        assert_eq!(
            v.kmax(),
            SeqNum(2),
            "the unmatchable batch no longer blocks"
        );
    }

    #[test]
    fn divergence_abort_waits_for_every_decentralized_spawn() {
        // Decentralized spawning over-spawns: 4 nodes × 1 executor = 4
        // per batch. Three divergent VERIFYs must NOT abort the batch,
        // because the fourth may still complete an f_E + 1 quorum.
        let fx = Fixture::new();
        let mut v = Verifier::new(
            fx.provider.handle(ComponentId::Verifier),
            Arc::clone(&fx.store),
            VerifierConfig {
                params: FaultParams::for_shim_size(4),
                conflict_handling: ConflictHandling::NonConflicting,
                abort_timeout: SimDuration::from_millis(100),
                cert_quorum: 3,
                // decentralized: n_r × decentralized_spawn_count()
                spawned_per_batch: 4,
                sharding: ShardingConfig::default(),
                checkpoint_interval: 4,
            },
        );
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 1, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 0, 2, 1));
        let actions = v.on_verify(&fx.verify_msg(3, 1, 0, 3, 1));
        assert!(
            !actions.iter().any(|a| a.sends_kind("ABORT")),
            "three of four verifies must not trigger the divergence abort"
        );
        assert_eq!(v.aborted_txns(), 0);
        // The fourth executor agrees with one of them: quorum, commit.
        let actions = v.on_verify(&fx.verify_msg(4, 1, 0, 2, 1));
        assert!(actions.iter().any(|a| a.sends_kind("RESPONSE")));
        assert_eq!(v.committed_txns(), 1);
    }

    #[test]
    fn sharded_verifier_announces_ccheck_work_before_responses() {
        let fx = Fixture::new();
        let mut v = fx.verifier_sharded(
            ConflictHandling::NonConflicting,
            sbft_types::ShardingConfig::with_shards(8),
        );
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 42, 1));
        let actions = v.on_verify(&fx.verify_msg(2, 1, 0, 42, 1));
        let ccheck_positions: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Action::ShardCcheck { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(!ccheck_positions.is_empty(), "shard work must be announced");
        let first_send = actions
            .iter()
            .position(|a| a.as_send().is_some())
            .expect("responses follow");
        assert!(
            ccheck_positions.iter().all(|p| *p < first_send),
            "shard work precedes the responses it gates"
        );
        // Every transaction of the batch is accounted to some shard.
        let total_txns: u32 = actions
            .iter()
            .filter_map(|a| match a {
                Action::ShardCcheck { txns, .. } => Some(*txns),
                _ => None,
            })
            .sum();
        assert!(total_txns >= 1);
        assert_eq!(v.committed_txns(), 1);
        assert_eq!(fx.store.get(Key(2)).unwrap().value, Value::new(42));
    }

    #[test]
    fn pool_apply_stage_matches_the_synchronous_path() {
        // The same VERIFY sequence (including a stale-read abort) through
        // the synchronous apply stage and through an attached
        // ShardScheduler pool must produce identical counters, responses
        // and storage state.
        let run = |attach_pool: bool| {
            let fx = Fixture::new();
            let mut v = fx.verifier_sharded(
                ConflictHandling::UnknownRwSets,
                sbft_types::ShardingConfig::with_shards(8),
            );
            if attach_pool {
                v.attach_apply_pool(4);
                assert!(v.apply_pool_active());
            }
            let mut kinds = Vec::new();
            for seq in 1..=6u64 {
                // Batch 4 reads a stale version and must abort.
                let read_version = if seq == 4 { 99 } else { 1 };
                let _ = v.on_verify(&fx.verify_msg(1, seq, 0, seq, read_version));
                let actions = v.on_verify(&fx.verify_msg(2, seq, 0, seq, read_version));
                kinds.extend(
                    crate::events::envelopes(&actions)
                        .iter()
                        .map(|e| e.msg.kind().to_string()),
                );
            }
            let state = fx.store.get(Key(2)).unwrap().value;
            (
                v.committed_txns(),
                v.aborted_txns(),
                v.validated_batches(),
                kinds,
                state,
                v.pool_applied_txns(),
            )
        };
        let sync = run(false);
        let pooled = run(true);
        assert_eq!(sync.0, pooled.0, "committed");
        assert_eq!(sync.1, pooled.1, "aborted");
        assert_eq!(sync.2, pooled.2, "validated batches");
        assert_eq!(sync.3, pooled.3, "response kinds");
        assert_eq!(sync.4, pooled.4, "final storage state");
        assert_eq!(sync.5, 0, "synchronous path never touches the pool");
        assert_eq!(pooled.5, 6, "every applied txn went through the pool");
    }

    #[test]
    fn pool_order_exactness_is_order_insensitive_to_the_writer_position() {
        // Key shared by (home-2 reader, home-0 reader, home-2 WRITER):
        // the writer arriving last, from the same home as the first
        // toucher, must still force the fallback because the home-0
        // reader races against it.
        let shared = Key(1);
        let result = |reads: Vec<Key>, writes: Vec<Key>, n: u64| {
            let mut rwset = ReadWriteSet::new();
            for k in reads {
                rwset.record_read(k, Version(1));
            }
            for k in writes {
                rwset.record_write(k, Value::new(n));
            }
            TxnResult {
                txn: TxnId::new(ClientId(n as u32), 1),
                output: n,
                rwset,
            }
        };
        use sbft_sharding::ShardId;
        let home = |ids: &[u32]| ids.iter().map(|i| ShardId(*i)).collect::<BTreeSet<_>>();
        let results = vec![
            result(vec![shared], vec![], 0),
            result(vec![shared], vec![Key(9)], 1),
            result(vec![], vec![shared], 2),
        ];
        let routes = vec![home(&[2]), home(&[0, 2]), home(&[2])];
        assert!(!Verifier::pool_order_exact(&results, &routes));
        // All on one home shard: exact, whatever the write pattern.
        let routes = vec![home(&[2]), home(&[2]), home(&[2])];
        assert!(Verifier::pool_order_exact(&results, &routes));
        // Read-only sharing across homes: order independent, exact.
        let read_only = vec![
            result(vec![shared], vec![], 0),
            result(vec![shared], vec![Key(9)], 1),
        ];
        let routes = vec![home(&[2]), home(&[0, 2])];
        assert!(Verifier::pool_order_exact(&read_only, &routes));
    }

    #[test]
    fn pool_falls_back_to_in_order_apply_for_cross_home_key_conflicts() {
        // Two transactions of one batch write/read the same key while
        // living on different home shards: the pool's per-shard FIFOs
        // could not order them, so the verifier must apply that batch
        // synchronously (in batch order) — txn B's read of the key txn A
        // just wrote is stale, deterministically.
        let fx = Fixture::new();
        // A conflict-tracking mode, so read validation is on and the
        // apply order is observable.
        let mut v = fx.verifier_sharded(
            ConflictHandling::UnknownRwSets,
            sbft_types::ShardingConfig::with_shards(8),
        );
        v.attach_apply_pool(4);
        let router = *v.committer().router();
        let k1 = Key(1);
        // A key on a *higher-numbered* shard than k1's, so txn A (which
        // touches both) homes on k1's shard while txn B homes on k2's.
        let k2 = (2..)
            .map(Key)
            .find(|k| router.shard_of(*k).0 > router.shard_of(k1).0)
            .expect("8 shards have a higher-numbered one");
        let mut rw_a = ReadWriteSet::new();
        rw_a.record_read(k1, Version(1));
        rw_a.record_write(k2, Value::new(77));
        let mut rw_b = ReadWriteSet::new();
        rw_b.record_read(k2, fx.store.version_of(k2));
        rw_b.record_write(k2, Value::new(88));
        let results = vec![
            TxnResult {
                txn: TxnId::new(ClientId(0), 1),
                output: 77,
                rwset: rw_a,
            },
            TxnResult {
                txn: TxnId::new(ClientId(1), 1),
                output: 88,
                rwset: rw_b,
            },
        ];
        let _ = v.on_verify(&fx.verify_msg_with_results(1, 1, results.clone()));
        let actions = v.on_verify(&fx.verify_msg_with_results(2, 1, results));
        let kinds = response_kinds(&actions);
        assert!(kinds.contains(&"RESPONSE"), "txn A commits");
        assert!(kinds.contains(&"ABORT"), "txn B reads A's write stale");
        assert_eq!(v.committed_txns(), 1);
        assert_eq!(v.aborted_txns(), 1);
        assert_eq!(
            v.pool_applied_txns(),
            0,
            "the conflicting batch must bypass the pool"
        );
        assert_eq!(fx.store.get(k2).unwrap().value, Value::new(77));
        // A conflict-free follow-up batch flows through the pool again.
        let _ = v.on_verify(&fx.verify_msg(1, 2, 2, 5, 1));
        let actions = v.on_verify(&fx.verify_msg(2, 2, 2, 5, 1));
        assert!(response_kinds(&actions).contains(&"RESPONSE"));
        assert_eq!(v.pool_applied_txns(), 1);
    }

    #[test]
    fn verifier_commits_identically_across_shard_counts() {
        for shards in [1usize, 4, 16] {
            let fx = Fixture::new();
            let mut v = fx.verifier_sharded(
                ConflictHandling::NonConflicting,
                sbft_types::ShardingConfig::with_shards(shards),
            );
            for seq in 1..=5u64 {
                let _ = v.on_verify(&fx.verify_msg(1, seq, 0, seq, 1));
                let _ = v.on_verify(&fx.verify_msg(2, seq, 0, seq, 1));
            }
            assert_eq!(v.committed_txns(), 5, "{shards} shards");
            assert_eq!(v.kmax(), SeqNum(6));
            assert_eq!(fx.store.get(Key(2)).unwrap().value, Value::new(5));
        }
    }

    #[test]
    fn cross_shard_abort_policy_rejects_spanning_transactions() {
        let fx = Fixture::new();
        let sharding = sbft_types::ShardingConfig {
            num_shards: 1024,
            workers: 1,
            cross_shard_policy: sbft_types::CrossShardPolicy::Abort,
            ..sbft_types::ShardingConfig::default()
        };
        let mut v = fx.verifier_sharded(ConflictHandling::NonConflicting, sharding);
        // The fixture transaction reads key 1 and writes key 2; with 1024
        // shards those keys land on different shards.
        assert_ne!(
            v.committer().router().shard_of(Key(1)),
            v.committer().router().shard_of(Key(2)),
        );
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 42, 1));
        let actions = v.on_verify(&fx.verify_msg(2, 1, 0, 42, 1));
        assert!(response_kinds(&actions).contains(&"ABORT"));
        assert_eq!(v.aborted_txns(), 1);
        assert_eq!(v.committer().cross_shard_rejections(), 1);
        assert_ne!(fx.store.get(Key(2)).unwrap().value, Value::new(42));
    }

    #[test]
    fn retry_maps_truncate_at_the_checkpoint_interval() {
        // Fixture checkpoint interval is 4. Validate 9 batches: the last
        // stable checkpoint k_max passed is 8, so everything at or below
        // checkpoint 4 is dropped while the last closed interval (5..=8)
        // plus batch 9 is retained for client retries.
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        for seq in 1..=9u64 {
            let _ = v.on_verify(&fx.verify_msg(1, seq, 0, seq, 1));
            let _ = v.on_verify(&fx.verify_msg(2, seq, 0, seq, 1));
        }
        assert_eq!(v.kmax(), SeqNum(10));
        assert_eq!(v.responded_len(), 5, "seqs 5..=9 retained");
        assert_eq!(v.txn_location_len(), 5);

        // A late duplicate request inside the retained window is still
        // answered with the stored RESPONSE.
        let txn = Transaction::new(TxnId::new(ClientId(0), 7), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&txn);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(0)))
                .sign(&digest),
            txn,
        };
        let actions = v.on_client_request(&req);
        let env = actions[0].as_send().unwrap();
        assert_eq!(env.msg.kind(), "RESPONSE");

        // A duplicate older than the GC floor falls back to the
        // ERROR(⟨T⟩_C) recovery path (the primary recognises it as a
        // duplicate and drops it).
        let old = Transaction::new(TxnId::new(ClientId(0), 2), vec![Operation::Read(Key(1))]);
        let digest = ClientRequest::signing_digest(&old);
        let req = ClientRequest {
            signature: fx
                .provider
                .handle(ComponentId::Client(ClientId(0)))
                .sign(&digest),
            txn: old,
        };
        let actions = v.on_client_request(&req);
        assert!(actions.iter().any(|a| a.sends_kind("ERROR")));
    }

    #[test]
    fn retry_maps_do_not_grow_without_bound() {
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        for seq in 1..=100u64 {
            let _ = v.on_verify(&fx.verify_msg(1, seq, 0, seq, 1));
            let _ = v.on_verify(&fx.verify_msg(2, seq, 0, seq, 1));
        }
        // One interval of history plus the open interval: never more than
        // two intervals' worth of entries with one transaction per batch.
        assert!(
            v.responded_len() <= 8,
            "responded holds {} entries",
            v.responded_len()
        );
        assert!(v.txn_location_len() <= 8);
        assert_eq!(v.committed_txns(), 100);
    }

    #[test]
    fn divergent_abort_counter_tracks_whole_batch_divergence() {
        // Count-triggered divergence (all spawned executors answered, no
        // quorum) increments the counter ...
        let fx = Fixture::new();
        let mut v = fx.verifier(ConflictHandling::NonConflicting);
        let _ = v.on_verify(&fx.verify_msg(1, 1, 0, 1, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 1, 0, 2, 1));
        let _ = v.on_verify(&fx.verify_msg(3, 1, 0, 3, 1));
        assert_eq!(v.divergent_aborts(), 1);
        // ... and a matched batch does not.
        let _ = v.on_verify(&fx.verify_msg(1, 2, 0, 5, 1));
        let _ = v.on_verify(&fx.verify_msg(2, 2, 0, 5, 1));
        assert_eq!(v.divergent_aborts(), 1);
        assert_eq!(v.committed_txns(), 1);
    }

    #[test]
    fn cert_quorum_zero_accepts_baseline_verifies() {
        let fx = Fixture::new();
        let mut v = Verifier::new(
            fx.provider.handle(ComponentId::Verifier),
            Arc::clone(&fx.store),
            VerifierConfig {
                params: FaultParams::for_shim_size(4),
                conflict_handling: ConflictHandling::NonConflicting,
                abort_timeout: SimDuration::from_millis(100),
                cert_quorum: 0,
                spawned_per_batch: 3,
                sharding: ShardingConfig::default(),
                checkpoint_interval: 4,
            },
        );
        let mut m = fx.verify_msg(1, 1, 0, 42, 1);
        std::sync::Arc::make_mut(&mut m.certificate).entries.clear();
        let mut m2 = fx.verify_msg(2, 1, 0, 42, 1);
        std::sync::Arc::make_mut(&mut m2.certificate)
            .entries
            .clear();
        let _ = v.on_verify(&m);
        let actions = v.on_verify(&m2);
        assert!(response_kinds(&actions).contains(&"RESPONSE"));
    }

    /// A result writing `key` after reading it at version 1.
    fn rmw_result(client: u32, key: Key, value: u64) -> TxnResult {
        let mut rwset = ReadWriteSet::new();
        rwset.record_read(key, Version(1));
        rwset.record_write(key, Value::new(value));
        TxnResult {
            txn: TxnId::new(ClientId(client), 1),
            output: value,
            rwset,
        }
    }

    /// `n` distinct keys all living on one shard of the verifier's router.
    fn keys_on_one_shard(v: &Verifier, n: usize) -> (sbft_sharding::ShardId, Vec<Key>) {
        let router = *v.committer().router();
        let home = router.shard_of(Key(1));
        let keys: Vec<Key> = (1..)
            .map(Key)
            .filter(|k| router.shard_of(*k) == home)
            .take(n)
            .collect();
        (home, keys)
    }

    #[test]
    fn verified_single_home_plan_takes_the_fast_path() {
        let fx = Fixture::new();
        let mut v = fx.verifier_sharded(
            ConflictHandling::KnownRwSets,
            sbft_types::ShardingConfig::with_shards(8),
        );
        let (home, keys) = keys_on_one_shard(&v, 3);
        let results: Vec<TxnResult> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| rmw_result(i as u32, *k, 10 + i as u64))
            .collect();
        let plan = ShardPlan::SingleHome(home);
        let _ = v.on_verify(&fx.verify_msg_planned(1, 1, results.clone(), plan));
        let actions = v.on_verify(&fx.verify_msg_planned(2, 1, results, plan));
        // Exactly one ShardCcheck, on the verified home shard.
        let cchecks: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::ShardCcheck { shard, txns, .. } => Some((*shard, *txns)),
                _ => None,
            })
            .collect();
        assert_eq!(cchecks, vec![(home, 3)]);
        assert_eq!(v.planned_batches(), 1);
        assert_eq!(v.plan_mismatches(), 0);
        assert_eq!(v.single_home_batches(), 1);
        assert_eq!(v.committed_txns(), 3);
        assert_eq!(fx.store.get(keys[0]).unwrap().value, Value::new(10));
    }

    #[test]
    fn lying_single_home_plan_falls_back_without_corrupting_state() {
        // A byzantine primary tags a genuinely cross-home batch as
        // SingleHome(0). The verifier must detect the mismatch and apply
        // the batch exactly as an untagged verifier would.
        let run = |plan: ShardPlan| {
            let fx = Fixture::new();
            let mut v = fx.verifier_sharded(
                ConflictHandling::KnownRwSets,
                sbft_types::ShardingConfig::with_shards(8),
            );
            let router = *v.committer().router();
            let k1 = Key(1);
            let k2 = (2..)
                .map(Key)
                .find(|k| router.shard_of(*k) != router.shard_of(k1))
                .expect("8 shards split the keys");
            let results = vec![rmw_result(0, k1, 5), rmw_result(1, k2, 6)];
            let _ = v.on_verify(&fx.verify_msg_planned(1, 1, results.clone(), plan));
            let actions = v.on_verify(&fx.verify_msg_planned(2, 1, results, plan));
            let kinds = response_kinds(&actions);
            (
                v.committed_txns(),
                v.aborted_txns(),
                v.plan_mismatches(),
                v.planned_batches(),
                kinds,
                fx.store.get(k1).unwrap().value,
                fx.store.get(k2).unwrap().value,
            )
        };
        let lied = run(ShardPlan::SingleHome(sbft_sharding::ShardId(0)));
        let honest = run(ShardPlan::Unplanned);
        assert_eq!(lied.2, 1, "the lie must be detected");
        assert_eq!(lied.3, 0, "a lying tag never earns the fast path");
        assert_eq!(honest.2, 0);
        // Outcomes, responses and state are identical either way.
        assert_eq!(lied.0, honest.0);
        assert_eq!(lied.1, honest.1);
        assert_eq!(lied.4, honest.4);
        assert_eq!(lied.5, honest.5);
        assert_eq!(lied.6, honest.6);
    }

    #[test]
    fn fast_path_drives_the_apply_pool_with_the_verify_allocation() {
        let fx = Fixture::new();
        let mut v = fx.verifier_sharded(
            ConflictHandling::KnownRwSets,
            sbft_types::ShardingConfig::with_shards(8),
        );
        v.attach_apply_pool(4);
        let (home, keys) = keys_on_one_shard(&v, 4);
        let results: Vec<TxnResult> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| rmw_result(i as u32, *k, 50 + i as u64))
            .collect();
        let plan = ShardPlan::SingleHome(home);
        let _ = v.on_verify(&fx.verify_msg_planned(1, 1, results.clone(), plan));
        let actions = v.on_verify(&fx.verify_msg_planned(2, 1, results, plan));
        assert!(response_kinds(&actions).contains(&"RESPONSE"));
        assert_eq!(v.planned_batches(), 1);
        assert_eq!(v.pool_applied_txns(), 4, "the pool applied the batch");
        assert_eq!(v.committed_txns(), 4);
        assert_eq!(fx.store.get(keys[3]).unwrap().value, Value::new(53));
    }

    #[test]
    fn out_of_range_home_tag_is_ignored_not_honoured() {
        // SingleHome(99) on an 8-shard verifier: neither a panic nor a
        // fast path — the batch routes like an unplanned one.
        let fx = Fixture::new();
        let mut v = fx.verifier_sharded(
            ConflictHandling::NonConflicting,
            sbft_types::ShardingConfig::with_shards(8),
        );
        let plan = ShardPlan::SingleHome(sbft_sharding::ShardId(99));
        let results = vec![rmw_result(0, Key(1), 7)];
        let _ = v.on_verify(&fx.verify_msg_planned(1, 1, results.clone(), plan));
        let actions = v.on_verify(&fx.verify_msg_planned(2, 1, results, plan));
        assert!(response_kinds(&actions).contains(&"RESPONSE"));
        assert_eq!(v.planned_batches(), 0);
        assert_eq!(v.plan_mismatches(), 1, "an impossible home is a lie too");
        assert_eq!(v.committed_txns(), 1);
    }

    #[test]
    fn verify_message_clones_share_the_result_allocation() {
        // The verifier stores every VERIFY twice (vote map + matched
        // slot); with `results` behind `Arc` those clones are refcount
        // bumps of the executor's allocation, never per-transaction
        // read-write set copies.
        let fx = Fixture::new();
        let msg = fx.verify_msg(1, 1, 0, 42, 1);
        let clone = msg.clone();
        assert!(std::sync::Arc::ptr_eq(&msg.results, &clone.results));
    }
}
