//! Attack injection for byzantine shim nodes.
//!
//! The honest role state machines never misbehave; byzantine behaviour is
//! injected by perturbing the *actions* a compromised node emits before
//! they reach the network. This keeps the attack surface explicit and lets
//! the tests and experiments turn each attack of Section V on and off
//! independently:
//!
//! * **Request ignorance** (Section V-A): the primary drops the
//!   `PREPREPARE` messages for client requests, so consensus never starts.
//! * **Unsuccessful consensus / nodes in dark** (Section V-A, V-B): the
//!   primary excludes chosen victims from its broadcasts, so they never see
//!   the normal-case messages.
//! * **Fewer executors** (Section V-A): the primary spawns fewer than `n_E`
//!   executors, so the verifier cannot collect `f_E + 1` matching results.
//! * **Duplicate spawning** (Section V-C): a node spawns extra executors to
//!   flood the verifier (self-penalising, because the spawner pays).
//! * **Delayed spawning** (Section VI-B): the primary delays spawning for
//!   chosen batches, trying to force conflicting transactions to abort.

use crate::events::{Action, Destination, Envelope, ProtocolMessage};
use sbft_consensus::ConsensusMessage;
use sbft_types::{NodeId, ShardId, ShardPlan, SimDuration};
use std::collections::{BTreeMap, BTreeSet};

/// A byzantine behaviour assigned to one shim node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShimAttack {
    /// Drop every `PREPREPARE` this node would send as primary (request
    /// ignorance / suppression).
    SuppressRequests,
    /// Exclude the listed victims from all consensus broadcasts, keeping up
    /// to `f_R` honest nodes in the dark.
    KeepInDark {
        /// The nodes to exclude.
        victims: Vec<NodeId>,
    },
    /// Spawn only `count` executors per committed batch instead of `n_E`.
    SpawnFewer {
        /// The reduced number of executors.
        count: usize,
    },
    /// Spawn `extra` additional executors per batch (verifier flooding).
    SpawnDuplicates {
        /// Number of extra executors.
        extra: usize,
    },
    /// Delay every spawn this node performs by `delay` (byzantine-abort
    /// attack against conflicting transactions).
    DelaySpawning {
        /// The added delay.
        delay: SimDuration,
    },
    /// Lie about the ordering-time shard plan: every outgoing
    /// `PREPREPARE` and `EXECUTE` claims the batch is single-home on
    /// shard 0, whatever its footprint. The tag is trust-but-verify, so
    /// replicas relay it untouched and the verifier must detect the
    /// mismatch at apply time, fall back to the unplanned path, and
    /// stay correct and live.
    MisplanBatches,
}

/// Assigns attacks to shim nodes and rewrites their outgoing actions.
#[derive(Debug, Default)]
pub struct AttackInjector {
    attacks: BTreeMap<NodeId, ShimAttack>,
    n_r: usize,
    /// Messages dropped so far (per attack accounting for the tests).
    dropped: u64,
    spawns_suppressed: u64,
    spawns_added: u64,
    plans_forged: u64,
}

impl AttackInjector {
    /// An injector for a shim of `n_r` nodes with no attacks configured.
    #[must_use]
    pub fn new(n_r: usize) -> Self {
        AttackInjector {
            attacks: BTreeMap::new(),
            n_r,
            dropped: 0,
            spawns_suppressed: 0,
            spawns_added: 0,
            plans_forged: 0,
        }
    }

    /// Assigns an attack to a node.
    pub fn compromise(&mut self, node: NodeId, attack: ShimAttack) {
        self.attacks.insert(node, attack);
    }

    /// Removes any attack from a node (it behaves honestly again).
    pub fn heal(&mut self, node: NodeId) {
        self.attacks.remove(&node);
    }

    /// The attack assigned to a node, if any.
    #[must_use]
    pub fn attack_of(&self, node: NodeId) -> Option<&ShimAttack> {
        self.attacks.get(&node)
    }

    /// Number of byzantine nodes currently configured.
    #[must_use]
    pub fn compromised(&self) -> usize {
        self.attacks.len()
    }

    /// Messages dropped by injected attacks so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Plan tags forged by the mis-planning attack so far.
    #[must_use]
    pub fn plans_forged(&self) -> u64 {
        self.plans_forged
    }

    /// Spawn actions removed by the fewer-executors attack so far.
    #[must_use]
    pub fn spawns_suppressed(&self) -> u64 {
        self.spawns_suppressed
    }

    /// Spawn actions added by the duplicate-spawning attack so far.
    #[must_use]
    pub fn spawns_added(&self) -> u64 {
        self.spawns_added
    }

    /// Extra delay applied to executor spawns performed by `node` (used by
    /// the runtimes when scheduling the spawn).
    #[must_use]
    pub fn spawn_delay(&self, node: NodeId) -> SimDuration {
        match self.attacks.get(&node) {
            Some(ShimAttack::DelaySpawning { delay }) => *delay,
            _ => SimDuration::ZERO,
        }
    }

    /// Rewrites the actions emitted by `node` according to its attack.
    /// Honest nodes' actions pass through untouched.
    pub fn apply(&mut self, node: NodeId, actions: Vec<Action>) -> Vec<Action> {
        let Some(attack) = self.attacks.get(&node).cloned() else {
            return actions;
        };
        match attack {
            ShimAttack::SuppressRequests => {
                let before = actions.len();
                let kept: Vec<Action> = actions
                    .into_iter()
                    .filter(|a| !a.sends_kind("PREPREPARE"))
                    .collect();
                self.dropped += (before - kept.len()) as u64;
                kept
            }
            ShimAttack::KeepInDark { victims } => {
                let victim_set: BTreeSet<NodeId> = victims.into_iter().collect();
                let mut out = Vec::new();
                for action in actions {
                    match action {
                        Action::Send(Envelope {
                            from,
                            to: Destination::AllNodes,
                            msg: msg @ ProtocolMessage::Consensus(_),
                        }) => {
                            // Expand the broadcast, skipping the victims.
                            for i in 0..self.n_r as u32 {
                                let target = NodeId(i);
                                if target == node {
                                    continue;
                                }
                                if victim_set.contains(&target) {
                                    self.dropped += 1;
                                    continue;
                                }
                                out.push(Action::Send(Envelope {
                                    from,
                                    to: Destination::Node(target),
                                    msg: msg.clone(),
                                }));
                            }
                        }
                        Action::Send(Envelope {
                            to: Destination::Node(target),
                            ..
                        }) if victim_set.contains(&target) => {
                            self.dropped += 1;
                        }
                        other => out.push(other),
                    }
                }
                out
            }
            ShimAttack::SpawnFewer { count } => {
                let mut spawned = 0usize;
                let mut out = Vec::new();
                for action in actions {
                    match action {
                        Action::SpawnExecutor { .. } if spawned >= count => {
                            self.spawns_suppressed += 1;
                        }
                        Action::SpawnExecutor { .. } => {
                            spawned += 1;
                            out.push(action);
                        }
                        other => out.push(other),
                    }
                }
                out
            }
            ShimAttack::SpawnDuplicates { extra } => {
                let mut out = Vec::new();
                for action in actions {
                    if let Action::SpawnExecutor { .. } = &action {
                        let clone = action.clone();
                        out.push(action);
                        for _ in 0..extra {
                            self.spawns_added += 1;
                            out.push(clone.clone());
                        }
                    } else {
                        out.push(action);
                    }
                }
                out
            }
            ShimAttack::DelaySpawning { .. } => actions,
            ShimAttack::MisplanBatches => {
                let lie = ShardPlan::SingleHome(ShardId(0));
                actions
                    .into_iter()
                    .map(|action| match action {
                        Action::Send(Envelope {
                            from,
                            to,
                            msg: ProtocolMessage::Consensus(ConsensusMessage::PrePrepare(mut pp)),
                        }) => {
                            if pp.plan != lie {
                                self.plans_forged += 1;
                                pp.plan = lie;
                            }
                            Action::Send(Envelope {
                                from,
                                to,
                                msg: ProtocolMessage::Consensus(ConsensusMessage::PrePrepare(pp)),
                            })
                        }
                        Action::SpawnExecutor {
                            request,
                            mut execute,
                        } => {
                            if execute.plan != lie {
                                self.plans_forged += 1;
                                execute.plan = lie;
                            }
                            Action::SpawnExecutor { request, execute }
                        }
                        other => other,
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_consensus::messages::{batch_digest, PrePrepare};
    use sbft_consensus::ConsensusMessage;
    use sbft_types::{
        Batch, ClientId, ComponentId, Key, MacTag, Operation, SeqNum, Transaction, TxnId,
        ViewNumber,
    };

    fn preprepare_broadcast(from: u32) -> Action {
        let batch = Batch::single(Transaction::new(
            TxnId::new(ClientId(0), 0),
            vec![Operation::Read(Key(1))],
        ));
        let digest = batch_digest(&batch);
        Action::send(
            ComponentId::Node(NodeId(from)),
            Destination::AllNodes,
            ProtocolMessage::Consensus(ConsensusMessage::PrePrepare(PrePrepare {
                view: ViewNumber(0),
                seq: SeqNum(1),
                digest,
                batch,
                plan: ShardPlan::Unplanned,
                mac: MacTag::ZERO,
            })),
        )
    }

    fn spawn_action() -> Action {
        use sbft_crypto::CommitCertificate;
        use sbft_serverless::{ExecuteRequest, SpawnRequest};
        let batch = Batch::single(Transaction::new(
            TxnId::new(ClientId(0), 0),
            vec![Operation::Read(Key(1))],
        ));
        let digest = batch_digest(&batch);
        Action::SpawnExecutor {
            request: SpawnRequest {
                spawner: NodeId(0),
                region: sbft_types::Region::Oregon,
                seq: SeqNum(1),
            },
            execute: ExecuteRequest {
                view: ViewNumber(0),
                seq: SeqNum(1),
                digest,
                batch,
                certificate: std::sync::Arc::new(CommitCertificate::new(
                    ViewNumber(0),
                    SeqNum(1),
                    digest,
                    vec![],
                )),
                plan: ShardPlan::CrossHome,
                spawner: NodeId(0),
                signature: sbft_types::Signature::ZERO,
            },
        }
    }

    #[test]
    fn honest_nodes_pass_through() {
        let mut injector = AttackInjector::new(4);
        let actions = vec![preprepare_broadcast(0), spawn_action()];
        let out = injector.apply(NodeId(0), actions.clone());
        assert_eq!(out, actions);
        assert_eq!(injector.compromised(), 0);
    }

    #[test]
    fn suppress_requests_drops_pre_prepares_only() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(NodeId(0), ShimAttack::SuppressRequests);
        let out = injector.apply(NodeId(0), vec![preprepare_broadcast(0), spawn_action()]);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Action::SpawnExecutor { .. }));
        assert_eq!(injector.dropped(), 1);
    }

    #[test]
    fn keep_in_dark_excludes_victims_from_broadcasts() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(
            NodeId(0),
            ShimAttack::KeepInDark {
                victims: vec![NodeId(3)],
            },
        );
        let out = injector.apply(NodeId(0), vec![preprepare_broadcast(0)]);
        // The broadcast became directed sends to nodes 1 and 2 only.
        let targets: Vec<_> = out
            .iter()
            .filter_map(Action::as_send)
            .map(|e| e.to)
            .collect();
        assert_eq!(targets.len(), 2);
        assert!(targets.contains(&Destination::Node(NodeId(1))));
        assert!(targets.contains(&Destination::Node(NodeId(2))));
        assert!(!targets.contains(&Destination::Node(NodeId(3))));
        assert_eq!(injector.dropped(), 1);
    }

    #[test]
    fn keep_in_dark_leaves_other_nodes_untouched() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(
            NodeId(0),
            ShimAttack::KeepInDark {
                victims: vec![NodeId(3)],
            },
        );
        // Node 1 is honest; its broadcast is untouched.
        let actions = vec![preprepare_broadcast(1)];
        let out = injector.apply(NodeId(1), actions.clone());
        assert_eq!(out, actions);
    }

    #[test]
    fn spawn_fewer_truncates_spawns() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(NodeId(0), ShimAttack::SpawnFewer { count: 1 });
        let out = injector.apply(
            NodeId(0),
            vec![spawn_action(), spawn_action(), spawn_action()],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(injector.spawns_suppressed(), 2);
    }

    #[test]
    fn spawn_duplicates_adds_spawns() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(NodeId(2), ShimAttack::SpawnDuplicates { extra: 2 });
        let out = injector.apply(NodeId(2), vec![spawn_action()]);
        assert_eq!(out.len(), 3);
        assert_eq!(injector.spawns_added(), 2);
    }

    #[test]
    fn delay_spawning_reports_delay_but_keeps_actions() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(
            NodeId(0),
            ShimAttack::DelaySpawning {
                delay: SimDuration::from_millis(500),
            },
        );
        let actions = vec![spawn_action()];
        assert_eq!(injector.apply(NodeId(0), actions.clone()), actions);
        assert_eq!(
            injector.spawn_delay(NodeId(0)),
            SimDuration::from_millis(500)
        );
        assert_eq!(injector.spawn_delay(NodeId(1)), SimDuration::ZERO);
    }

    #[test]
    fn misplan_forges_pre_prepare_and_execute_tags_only() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(NodeId(0), ShimAttack::MisplanBatches);
        let out = injector.apply(NodeId(0), vec![preprepare_broadcast(0), spawn_action()]);
        assert_eq!(out.len(), 2, "nothing is dropped, only rewritten");
        let lie = ShardPlan::SingleHome(ShardId(0));
        match &out[0] {
            Action::Send(env) => match &env.msg {
                ProtocolMessage::Consensus(ConsensusMessage::PrePrepare(pp)) => {
                    assert_eq!(pp.plan, lie);
                }
                other => panic!("unexpected message {other:?}"),
            },
            other => panic!("unexpected action {other:?}"),
        }
        match &out[1] {
            Action::SpawnExecutor { execute, .. } => assert_eq!(execute.plan, lie),
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(injector.plans_forged(), 2);
        // An honest node's tags pass through untouched.
        let honest = vec![spawn_action()];
        assert_eq!(injector.apply(NodeId(1), honest.clone()), honest);
    }

    #[test]
    fn heal_restores_honesty() {
        let mut injector = AttackInjector::new(4);
        injector.compromise(NodeId(0), ShimAttack::SuppressRequests);
        assert!(injector.attack_of(NodeId(0)).is_some());
        injector.heal(NodeId(0));
        assert!(injector.attack_of(NodeId(0)).is_none());
        let actions = vec![preprepare_broadcast(0)];
        assert_eq!(injector.apply(NodeId(0), actions.clone()), actions);
    }
}
