//! Best-effort conflict avoidance (Section VI-C) and the ordering-time
//! shard planner.
//!
//! When read-write sets are known before execution, the primary borrows the
//! queueing strategy of deterministic databases (Calvin, QueCC, Q-Store):
//! it keeps a *logical* lock map over data items (no values, just who holds
//! them), only spawns executors for a batch once it has logically locked
//! every item the batch writes, dispatches non-conflicting batches in
//! parallel, and releases the locks when the verifier confirms the batch.
//! This avoids the aborts that plague the unknown-read-write-set case.
//!
//! # Ordering-time vs. apply-time planning
//!
//! The [`BestEffortPlanner`] above acts *after commit* (it gates executor
//! spawning); the **shard planner** acts *before consensus*: the shim
//! classifies each transaction's declared read-write set against the
//! shard map ([`home_shard`]) and assembles per-shard ordering lanes
//! (katana-style per-shard mempools), so whole batches arrive at the
//! verifier's apply stage already conflict-free per shard — cross-home
//! work is detected at batching time and tagged
//! [`ShardPlan::CrossHome`] for the lock-ordered committer path instead
//! of being discovered late by the apply-time fallback probe. The
//! resulting [`ShardPlan`] is replicated with the batch but only ever
//! consumed **trust-but-verify**: the verifier re-derives the claim
//! from the observed read-write sets before honouring it and falls back
//! deterministically on mismatch, so a lying primary can waste its own
//! fast path but cannot corrupt state (see `sbft_types::plan`).

use sbft_sharding::ShardRouter;
use sbft_types::{Key, RwSetKeys, SeqNum, ShardPlan, Transaction};
use std::collections::{BTreeMap, BTreeSet};

/// Classifies one transaction at ordering time: the lane it assembles
/// in is the home shard of its declared (or, failing that, inferred)
/// read-write set. Exact for YCSB-style transactions whose keys are
/// literal; a mis-declared set costs the batch the verifier's fast
/// path, never correctness.
#[must_use]
pub fn home_shard(txn: &Transaction, router: &ShardRouter) -> ShardPlan {
    match &txn.declared_rwset {
        Some(declared) => plan_rwset_keys(declared, router),
        None => plan_rwset_keys(&txn.inferred_rwset(), router),
    }
}

/// Classifies a declared key set against the shard map.
#[must_use]
pub fn plan_rwset_keys(keys: &RwSetKeys, router: &ShardRouter) -> ShardPlan {
    router.plan_keys(keys.read_keys.iter().chain(keys.write_keys.iter()).copied())
}

/// Lock footprint of one batch: every key read and written by any of its
/// transactions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchFootprint {
    /// Keys read by the batch.
    pub reads: BTreeSet<Key>,
    /// Keys written by the batch.
    pub writes: BTreeSet<Key>,
}

impl BatchFootprint {
    /// Builds the footprint from the declared read-write sets of a batch's
    /// transactions.
    #[must_use]
    pub fn from_rwsets<'a, I: IntoIterator<Item = &'a RwSetKeys>>(rwsets: I) -> Self {
        let mut fp = BatchFootprint::default();
        for rw in rwsets {
            fp.reads.extend(rw.read_keys.iter().copied());
            fp.writes.extend(rw.write_keys.iter().copied());
        }
        fp
    }

    /// Classifies the whole footprint against the shard map — the
    /// batch-level ordering-time plan ([`ShardPlan::SingleHome`] iff
    /// every read and written key lives on one shard).
    #[must_use]
    pub fn classify(&self, router: &ShardRouter) -> ShardPlan {
        router.plan_keys(self.reads.iter().chain(self.writes.iter()).copied())
    }

    /// Whether two footprints conflict (shared item with at least one
    /// writer).
    #[must_use]
    pub fn conflicts_with(&self, other: &BatchFootprint) -> bool {
        self.writes.intersection(&other.writes).next().is_some()
            || self.writes.intersection(&other.reads).next().is_some()
            || self.reads.intersection(&other.writes).next().is_some()
    }
}

/// The primary's conflict-avoidance planner.
#[derive(Debug, Default)]
pub struct BestEffortPlanner {
    /// Batches whose executors have been spawned and whose locks are held.
    in_flight: BTreeMap<SeqNum, BatchFootprint>,
    /// Committed batches waiting for their conflicts to clear, in sequence
    /// order.
    waiting: BTreeMap<SeqNum, BatchFootprint>,
    /// Completed batches (for idempotence checks).
    completed: BTreeSet<SeqNum>,
}

impl BestEffortPlanner {
    /// Creates an empty planner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of batches currently executing (locks held).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of batches queued behind conflicts.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    fn dispatchable(&self, seq: SeqNum, fp: &BatchFootprint) -> bool {
        // Must not conflict with anything currently holding locks …
        if self.in_flight.values().any(|held| held.conflicts_with(fp)) {
            return false;
        }
        // … nor overtake an earlier *waiting* batch it conflicts with
        // (that would violate the shim's commit order for those items).
        if self
            .waiting
            .range(..seq)
            .any(|(_, earlier)| earlier.conflicts_with(fp))
        {
            return false;
        }
        true
    }

    /// Registers a newly committed batch and returns every batch (in
    /// sequence order) that may be dispatched now.
    pub fn enqueue(&mut self, seq: SeqNum, footprint: BatchFootprint) -> Vec<SeqNum> {
        if self.completed.contains(&seq) || self.in_flight.contains_key(&seq) {
            return Vec::new();
        }
        self.waiting.insert(seq, footprint);
        self.release_ready()
    }

    /// Marks a batch as validated by the verifier, releasing its logical
    /// locks, and returns every batch that may be dispatched now.
    pub fn complete(&mut self, seq: SeqNum) -> Vec<SeqNum> {
        if self.in_flight.remove(&seq).is_some() {
            self.completed.insert(seq);
        }
        self.release_ready()
    }

    /// Moves every currently dispatchable waiting batch to in-flight.
    fn release_ready(&mut self) -> Vec<SeqNum> {
        let mut released = Vec::new();
        loop {
            let next = self
                .waiting
                .iter()
                .find(|(seq, fp)| self.dispatchable(**seq, fp))
                .map(|(seq, _)| *seq);
            match next {
                Some(seq) => {
                    let fp = self.waiting.remove(&seq).expect("present");
                    self.in_flight.insert(seq, fp);
                    released.push(seq);
                }
                None => break,
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(reads: &[u64], writes: &[u64]) -> BatchFootprint {
        BatchFootprint {
            reads: reads.iter().copied().map(Key).collect(),
            writes: writes.iter().copied().map(Key).collect(),
        }
    }

    #[test]
    fn non_conflicting_batches_dispatch_immediately_and_in_parallel() {
        let mut p = BestEffortPlanner::new();
        assert_eq!(p.enqueue(SeqNum(1), fp(&[1], &[2])), vec![SeqNum(1)]);
        assert_eq!(p.enqueue(SeqNum(2), fp(&[3], &[4])), vec![SeqNum(2)]);
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.waiting(), 0);
    }

    #[test]
    fn conflicting_batch_waits_for_completion() {
        let mut p = BestEffortPlanner::new();
        assert_eq!(p.enqueue(SeqNum(1), fp(&[], &[10])), vec![SeqNum(1)]);
        // Batch 2 reads what batch 1 writes.
        assert!(p.enqueue(SeqNum(2), fp(&[10], &[])).is_empty());
        assert_eq!(p.waiting(), 1);
        // Completion of batch 1 releases batch 2.
        assert_eq!(p.complete(SeqNum(1)), vec![SeqNum(2)]);
        assert_eq!(p.in_flight(), 1);
    }

    #[test]
    fn later_batch_cannot_overtake_earlier_conflicting_waiter() {
        let mut p = BestEffortPlanner::new();
        let _ = p.enqueue(SeqNum(1), fp(&[], &[5]));
        // Batch 2 conflicts with 1 (waits). Batch 3 conflicts with 2 but
        // not with 1 — it must still wait behind 2 to preserve order.
        assert!(p.enqueue(SeqNum(2), fp(&[5], &[6])).is_empty());
        assert!(p.enqueue(SeqNum(3), fp(&[6], &[])).is_empty());
        let released = p.complete(SeqNum(1));
        assert_eq!(released, vec![SeqNum(2)], "3 stays blocked behind 2");
        assert_eq!(p.complete(SeqNum(2)), vec![SeqNum(3)]);
    }

    #[test]
    fn independent_batch_overtakes_blocked_ones() {
        let mut p = BestEffortPlanner::new();
        let _ = p.enqueue(SeqNum(1), fp(&[], &[5]));
        assert!(p.enqueue(SeqNum(2), fp(&[5], &[])).is_empty());
        // Batch 3 touches completely different keys: it can run now.
        assert_eq!(p.enqueue(SeqNum(3), fp(&[7], &[8])), vec![SeqNum(3)]);
    }

    #[test]
    fn write_write_conflicts_serialize() {
        let mut p = BestEffortPlanner::new();
        let _ = p.enqueue(SeqNum(1), fp(&[], &[9]));
        assert!(p.enqueue(SeqNum(2), fp(&[], &[9])).is_empty());
        assert_eq!(p.complete(SeqNum(1)), vec![SeqNum(2)]);
    }

    #[test]
    fn read_read_sharing_is_not_a_conflict() {
        let mut p = BestEffortPlanner::new();
        let _ = p.enqueue(SeqNum(1), fp(&[3], &[]));
        assert_eq!(p.enqueue(SeqNum(2), fp(&[3], &[])), vec![SeqNum(2)]);
    }

    #[test]
    fn duplicate_enqueue_and_complete_are_idempotent() {
        let mut p = BestEffortPlanner::new();
        assert_eq!(p.enqueue(SeqNum(1), fp(&[], &[1])), vec![SeqNum(1)]);
        assert!(p.enqueue(SeqNum(1), fp(&[], &[1])).is_empty());
        assert_eq!(p.complete(SeqNum(1)), Vec::<SeqNum>::new());
        assert!(p.complete(SeqNum(1)).is_empty());
        assert!(
            p.enqueue(SeqNum(1), fp(&[], &[1])).is_empty(),
            "completed batches never re-dispatch"
        );
    }

    #[test]
    fn footprint_classification_matches_router_plan() {
        use sbft_types::ShardPlan;
        let router = ShardRouter::new(8);
        let k = Key(5);
        let home = router.shard_of(k);
        let same = (6..)
            .map(Key)
            .find(|x| router.shard_of(*x) == home)
            .unwrap();
        let other = (6..)
            .map(Key)
            .find(|x| router.shard_of(*x) != home)
            .unwrap();
        let single = fp(&[k.0], &[same.0]);
        assert_eq!(single.classify(&router), ShardPlan::SingleHome(home));
        let cross = fp(&[k.0], &[other.0]);
        assert_eq!(cross.classify(&router), ShardPlan::CrossHome);
        assert_eq!(fp(&[], &[]).classify(&router), ShardPlan::Unplanned);
    }

    #[test]
    fn home_shard_uses_declared_then_inferred_rwsets() {
        use sbft_types::{ClientId, Operation, ShardPlan, TxnId};
        let router = ShardRouter::new(8);
        let k = Key(9);
        let home = router.shard_of(k);
        // Inferred: a literal single-key RMW is single-home.
        let txn = Transaction::new(
            TxnId::new(ClientId(0), 0),
            vec![Operation::ReadModifyWrite(k, 1)],
        );
        assert_eq!(home_shard(&txn, &router), ShardPlan::SingleHome(home));
        // Declared sets win over the operation list.
        let other = (10..)
            .map(Key)
            .find(|x| router.shard_of(*x) != home)
            .unwrap();
        let declared = txn.with_declared_rwset(RwSetKeys::new([k], [other]));
        assert_eq!(home_shard(&declared, &router), ShardPlan::CrossHome);
    }

    #[test]
    fn footprint_built_from_rwsets() {
        use sbft_types::RwSetKeys;
        let a = RwSetKeys::new([Key(1)], [Key(2)]);
        let b = RwSetKeys::new([Key(3)], [Key(2)]);
        let fp = BatchFootprint::from_rwsets([&a, &b]);
        assert_eq!(fp.reads.len(), 2);
        assert_eq!(fp.writes.len(), 1);
    }
}
