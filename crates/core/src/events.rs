//! The architecture-wide message and action vocabulary.
//!
//! Every role state machine in this crate consumes [`ProtocolMessage`]s and
//! timer expirations and produces [`Action`]s. The discrete-event simulator
//! and the thread runtime are interchangeable interpreters of these
//! actions; neither the roles nor the attacks ever touch a clock or a
//! socket directly.

use sbft_consensus::{ConsensusMessage, ConsensusTimer};
use sbft_serverless::{ExecuteRequest, SpawnRequest, VerifyMessage};
use sbft_sharding::ShardId;
use sbft_types::{
    ClientId, ComponentId, ExecutorId, NodeId, Region, SeqNum, Signature, SimDuration, Transaction,
    TxnId, TxnOutcome,
};
use serde::{Deserialize, Serialize};

/// A signed client request `⟨T⟩_C`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClientRequest {
    /// The transaction being submitted.
    pub txn: Transaction,
    /// The client's signature over the transaction digest.
    pub signature: Signature,
}

impl ClientRequest {
    /// The digest a client signs for its request.
    ///
    /// Memoized on the transaction: the digest is computed at most once
    /// per transaction per run — the client fills the cache when it signs,
    /// and the primary's and verifier's checks (including every retry)
    /// reuse the cached value carried by the transaction's clones.
    #[must_use]
    pub fn signing_digest(txn: &Transaction) -> sbft_types::Digest {
        txn.signing_digest_memo(|| Self::compute_signing_digest(txn))
    }

    /// Computes the signing digest from scratch, bypassing the memo (the
    /// cache regression tests compare this against [`Self::signing_digest`]).
    #[must_use]
    pub fn compute_signing_digest(txn: &Transaction) -> sbft_types::Digest {
        let mut h = sbft_crypto::U64Hasher::new("sbft-client-request");
        h.push(u64::from(txn.id.client.0));
        h.push(txn.id.counter);
        h.push(txn.ops.len() as u64);
        for op in &txn.ops {
            h.push(op.key().0);
            h.push(u64::from(op.is_write()));
        }
        h.finish()
    }
}

/// `RESPONSE(Δ, r)` from the verifier to a client (and, as a batch-level
/// notification, to the shim primary).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResponseMessage {
    /// The transaction this response answers.
    pub txn: TxnId,
    /// The sequence number of the batch containing it.
    pub seq: SeqNum,
    /// Whether the transaction committed or was aborted.
    pub outcome: TxnOutcome,
    /// The execution output (meaningful only when committed).
    pub output: u64,
    /// The verifier's signature over the response.
    pub signature: Signature,
}

/// Notification from the verifier to the shim primary that a whole batch
/// has been validated (used by the conflict-avoidance planner to release
/// logical locks, Section VI-C step 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BatchValidated {
    /// The validated batch.
    pub seq: SeqNum,
    /// Transactions whose writes were applied.
    pub committed: u32,
    /// Transactions aborted by the concurrency-control check.
    pub aborted: u32,
}

/// What a recovery message (ERROR / REPLACE / ACK) is about.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RecoverySubject {
    /// The verifier is waiting for the request ordered at this sequence
    /// number (`ERROR(k_max)`).
    Seq(SeqNum),
    /// The verifier has seen no `VERIFY` message for this transaction
    /// (`ERROR(⟨T⟩_C)`).
    Txn(TxnId),
}

/// `ERROR` broadcast by the verifier to the shim nodes (Figure 4).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ErrorMessage {
    /// What is missing.
    pub subject: RecoverySubject,
    /// For the missing-transaction case (`ERROR(⟨T⟩_C)`), the verifier
    /// includes the client's signed request so the (possibly new) primary
    /// can order it — matching Figure 4 line 12, where the `ERROR` message
    /// carries `⟨T⟩_C` itself.
    pub request: Option<ClientRequest>,
    /// The verifier's signature.
    pub signature: Signature,
}

/// `REPLACE` broadcast by the verifier: the primary is provably misbehaving
/// and must be replaced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReplaceMessage {
    /// The transaction whose handling exposed the primary.
    pub subject: RecoverySubject,
    /// The verifier's signature.
    pub signature: Signature,
}

/// `ACK` broadcast by the verifier once the previously reported subject has
/// been validated, releasing the nodes' re-transmission timers `Υ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AckMessage {
    /// The subject that is now resolved.
    pub subject: RecoverySubject,
    /// The verifier's signature.
    pub signature: Signature,
}

/// `ABORT(T)` from the verifier to a client (Section VI-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AbortMessage {
    /// The aborted transaction.
    pub txn: TxnId,
    /// The sequence number it was ordered at.
    pub seq: SeqNum,
    /// The verifier's signature.
    pub signature: Signature,
}

/// Every message that travels between components of the architecture.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtocolMessage {
    /// A signed client request (client → primary, or client → verifier on
    /// re-transmission).
    ClientRequest(ClientRequest),
    /// A shim-internal consensus message.
    Consensus(ConsensusMessage),
    /// `EXECUTE` from a spawning shim node to an executor.
    Execute(ExecuteRequest),
    /// `VERIFY` from an executor to the verifier.
    Verify(VerifyMessage),
    /// `RESPONSE` from the verifier to a client.
    Response(ResponseMessage),
    /// `ABORT` from the verifier to a client.
    Abort(AbortMessage),
    /// Batch-level validation notice from the verifier to the primary.
    BatchValidated(BatchValidated),
    /// `ERROR` from the verifier to the shim nodes.
    Error(ErrorMessage),
    /// `REPLACE` from the verifier to the shim nodes.
    Replace(ReplaceMessage),
    /// `ACK` from the verifier to the shim nodes.
    Ack(AckMessage),
}

impl ProtocolMessage {
    /// Short message-kind label for traces and the CPU cost model.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolMessage::ClientRequest(_) => "CLIENT-REQUEST",
            ProtocolMessage::Consensus(c) => c.kind(),
            ProtocolMessage::Execute(_) => "EXECUTE",
            ProtocolMessage::Verify(_) => "VERIFY",
            ProtocolMessage::Response(_) => "RESPONSE",
            ProtocolMessage::Abort(_) => "ABORT",
            ProtocolMessage::BatchValidated(_) => "BATCH-VALIDATED",
            ProtocolMessage::Error(_) => "ERROR",
            ProtocolMessage::Replace(_) => "REPLACE",
            ProtocolMessage::Ack(_) => "ACK",
        }
    }

    /// Modeled wire size in bytes.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            ProtocolMessage::ClientRequest(r) => 120 + r.txn.wire_size(),
            ProtocolMessage::Consensus(c) => c.wire_size(),
            ProtocolMessage::Execute(e) => e.wire_size(),
            ProtocolMessage::Verify(v) => v.wire_size(),
            // The paper reports 2270 B responses (these carry the result
            // payload back to the client).
            ProtocolMessage::Response(_) => 2_270,
            ProtocolMessage::Abort(_) => 160,
            ProtocolMessage::BatchValidated(_) => 140,
            ProtocolMessage::Error(e) => 180 + e.request.as_ref().map_or(0, |r| r.txn.wire_size()),
            ProtocolMessage::Replace(_) | ProtocolMessage::Ack(_) => 180,
        }
    }
}

/// Where an envelope is headed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Destination {
    /// One specific shim node.
    Node(NodeId),
    /// Every shim node (including byzantine ones).
    AllNodes,
    /// One client.
    Client(ClientId),
    /// One executor.
    Executor(ExecutorId),
    /// The verifier.
    Verifier,
}

/// A message in flight between two components.
#[derive(Clone, PartialEq, Debug)]
pub struct Envelope {
    /// The sender.
    pub from: ComponentId,
    /// The receiver(s).
    pub to: Destination,
    /// The payload.
    pub msg: ProtocolMessage,
}

/// Timers owned by the protocol roles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolTimer {
    /// The client timer `τ_m` for one outstanding request.
    ClientRequest(TxnId),
    /// A timer owned by the shim node's ordering protocol.
    Consensus(ConsensusTimer),
    /// The node re-transmission timer `Υ` tracking an `ERROR` it forwarded.
    Retransmit(RecoverySubject),
    /// The verifier's abort-detection timer for a batch (Section VI-B).
    VerifierAbort(SeqNum),
    /// The primary's periodic batch-release tick.
    BatchPoll,
    /// Probation on a region an invoker reactively marked down after a
    /// `SpawnRejected` answer: on expiry the region is tried again.
    RegionProbation(Region),
}

/// An action requested by a role state machine, interpreted by the runtime.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Send a message.
    Send(Envelope),
    /// Start (or restart) a timer owned by the emitting component.
    StartTimer {
        /// Which timer.
        timer: ProtocolTimer,
        /// How long until it fires.
        duration: SimDuration,
    },
    /// Cancel a timer owned by the emitting component.
    CancelTimer(ProtocolTimer),
    /// Ask the serverless cloud to spawn an executor and hand it the
    /// `EXECUTE` message once it is up.
    SpawnExecutor {
        /// The spawn request (spawner, region, batch).
        request: SpawnRequest,
        /// The `EXECUTE` message the new executor will process.
        execute: ExecuteRequest,
    },
    /// A client observed the final outcome of one of its transactions
    /// (terminal event used for latency/throughput accounting).
    TxnCompleted {
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        outcome: TxnOutcome,
    },
    /// A shim node observed a batch commit locally (metrics hook).
    BatchCommitted {
        /// The committed sequence number.
        seq: SeqNum,
        /// Number of transactions in the batch.
        len: usize,
    },
    /// The verifier ran the concurrency-control check of a validated batch
    /// slice on an execution shard. Runtimes that model CPU (the
    /// simulator) charge this work to the shard's service station and
    /// delay the batch's outgoing responses until it completes; the
    /// thread runtime executes the work eagerly and ignores the hint.
    ShardCcheck {
        /// The shard the work ran on.
        shard: ShardId,
        /// Transactions checked on this shard.
        txns: u32,
        /// Total read/write-set entries validated and applied.
        accesses: u32,
        /// Whether the work ran on the verified ordering-time fast path
        /// (a `SingleHome` tag that survived re-derivation): no
        /// per-transaction route sets, no probe key map — charged
        /// cheaper than probed work by the CPU model.
        planned: bool,
        /// Whether this slice is cross-shard work acquiring execution
        /// locks in ascending shard order: a chained slice starts only
        /// after the previous chained slice of the same action list has
        /// granted (the lock-ordered staircase), while unchained slices
        /// run in parallel across shard stations.
        chained: bool,
    },
    /// The emitting component wrote to its durable write-ahead log.
    /// Runtimes that model CPU/disk charge the write (and the fsync, when
    /// set) to the component's station *before* any later action in the
    /// same list takes effect — that ordering is what makes a synced
    /// `Vote` record durable before the `COMMIT` message leaves the node.
    Persist {
        /// Encoded bytes appended to the log.
        bytes: u64,
        /// Whether the write ends with an fsync.
        fsync: bool,
    },
}

impl Action {
    /// Convenience constructor for a directed send.
    #[must_use]
    pub fn send(from: ComponentId, to: Destination, msg: ProtocolMessage) -> Self {
        Action::Send(Envelope { from, to, msg })
    }

    /// The envelope if this action is a send.
    #[must_use]
    pub fn as_send(&self) -> Option<&Envelope> {
        match self {
            Action::Send(e) => Some(e),
            _ => None,
        }
    }

    /// Whether this action sends a message of the given kind.
    #[must_use]
    pub fn sends_kind(&self, kind: &str) -> bool {
        self.as_send().is_some_and(|e| e.msg.kind() == kind)
    }
}

/// Test/metrics helper: all envelopes among a list of actions.
#[must_use]
pub fn envelopes(actions: &[Action]) -> Vec<&Envelope> {
    actions.iter().filter_map(Action::as_send).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Key, Operation};

    fn txn() -> Transaction {
        Transaction::new(TxnId::new(ClientId(1), 2), vec![Operation::Read(Key(3))])
    }

    #[test]
    fn cached_signing_digest_equals_fresh_computation() {
        let t = txn();
        let memoized = ClientRequest::signing_digest(&t);
        assert_eq!(memoized, ClientRequest::compute_signing_digest(&t));
        assert_eq!(t.cached_signing_digest(), Some(memoized));
        // Clones carry the cache, so downstream components never re-hash.
        assert_eq!(t.clone().cached_signing_digest(), Some(memoized));
    }

    #[test]
    fn client_request_digest_binds_id_and_ops() {
        let a = ClientRequest::signing_digest(&txn());
        let other = Transaction::new(TxnId::new(ClientId(1), 3), vec![Operation::Read(Key(3))]);
        assert_ne!(a, ClientRequest::signing_digest(&other));
        let write = Transaction::new(
            TxnId::new(ClientId(1), 2),
            vec![Operation::Write(Key(3), sbft_types::Value::new(0))],
        );
        assert_ne!(a, ClientRequest::signing_digest(&write));
        assert_eq!(a, ClientRequest::signing_digest(&txn()));
    }

    #[test]
    fn message_kinds_and_sizes() {
        let req = ProtocolMessage::ClientRequest(ClientRequest {
            txn: txn(),
            signature: Signature::ZERO,
        });
        assert_eq!(req.kind(), "CLIENT-REQUEST");
        assert!(req.wire_size() > 120);
        let resp = ProtocolMessage::Response(ResponseMessage {
            txn: TxnId::new(ClientId(1), 2),
            seq: SeqNum(1),
            outcome: TxnOutcome::Committed,
            output: 0,
            signature: Signature::ZERO,
        });
        assert_eq!(resp.wire_size(), 2_270);
        let err = ProtocolMessage::Error(ErrorMessage {
            subject: RecoverySubject::Seq(SeqNum(4)),
            request: None,
            signature: Signature::ZERO,
        });
        assert_eq!(err.kind(), "ERROR");
        assert!(err.wire_size() < resp.wire_size());
    }

    #[test]
    fn action_send_helpers() {
        let action = Action::send(
            ComponentId::Client(ClientId(0)),
            Destination::Node(NodeId(0)),
            ProtocolMessage::ClientRequest(ClientRequest {
                txn: txn(),
                signature: Signature::ZERO,
            }),
        );
        assert!(action.sends_kind("CLIENT-REQUEST"));
        assert!(!action.sends_kind("VERIFY"));
        assert_eq!(envelopes(std::slice::from_ref(&action)).len(), 1);
        let timer = Action::StartTimer {
            timer: ProtocolTimer::BatchPoll,
            duration: SimDuration::from_millis(1),
        };
        assert!(timer.as_send().is_none());
        assert_eq!(envelopes(&[timer]).len(), 0);
    }

    #[test]
    fn recovery_subjects_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(RecoverySubject::Seq(SeqNum(1)));
        set.insert(RecoverySubject::Txn(TxnId::new(ClientId(0), 0)));
        set.insert(RecoverySubject::Seq(SeqNum(1)));
        assert_eq!(set.len(), 2);
    }
}
