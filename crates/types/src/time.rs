//! Virtual time used by the protocol timers and the discrete-event simulator.
//!
//! All protocol components express timers (client timer `τ_m`, node timer
//! `τ_m`, re-transmission timer `Υ`, verifier abort timer) in terms of
//! [`SimDuration`]; the simulator advances a [`SimTime`] clock in
//! microseconds while the thread runtime maps these onto wall-clock
//! `std::time::Duration`s.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time point from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time point from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs a time point from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time point expressed in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time point expressed in (truncated) milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time point expressed in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds (rounded to µs).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "durations cannot be negative");
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The duration in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (used for backoff and jitter).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Converts into a wall-clock duration (used by the thread runtime).
    #[must_use]
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(10) + SimDuration(5);
        assert_eq!(t, SimTime(15));
        assert_eq!(SimTime(5) - SimTime(10), SimDuration::ZERO);
        assert_eq!(SimDuration(3) - SimDuration(10), SimDuration::ZERO);
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn since_measures_elapsed() {
        let start = SimTime::from_millis(10);
        let end = SimTime::from_millis(35);
        assert_eq!(end.since(start), SimDuration::from_millis(25));
        assert_eq!(start.since(end), SimDuration::ZERO);
    }

    #[test]
    fn float_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(250_000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration(250_000));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "500µs");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn to_std_matches_micros() {
        assert_eq!(
            SimDuration::from_millis(7).to_std(),
            std::time::Duration::from_millis(7)
        );
    }
}
