//! The common error type used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience result alias.
pub type SbftResult<T> = Result<T, SbftError>;

/// Errors surfaced by the ServerlessBFT crates.
///
/// Protocol-level misbehaviour (byzantine messages, stale reads, timeouts)
/// is *not* an error: state machines handle it as part of their transition
/// logic. `SbftError` covers programming and configuration mistakes plus
/// malformed inputs that well-formedness checks reject.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SbftError {
    /// A configuration violated an invariant (e.g. `n_R < 3f_R + 1`).
    InvalidConfig(String),
    /// A message failed a cryptographic or structural well-formedness check.
    MalformedMessage(String),
    /// A signature or MAC failed verification.
    BadSignature(String),
    /// A certificate did not contain enough distinct valid signatures.
    BadCertificate(String),
    /// A component was addressed that does not exist in the deployment.
    UnknownComponent(String),
    /// A key was requested that is not present in the data-store.
    KeyNotFound(u64),
    /// An operation was attempted in a state where it is not allowed.
    InvalidState(String),
    /// The serverless cloud rejected a spawn request (e.g. concurrency
    /// limit, as the paper hit with 21 parallel executors).
    SpawnRejected(String),
    /// An I/O-like failure in the thread runtime (channel closed, etc.).
    Runtime(String),
}

impl fmt::Display for SbftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbftError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SbftError::MalformedMessage(msg) => write!(f, "malformed message: {msg}"),
            SbftError::BadSignature(msg) => write!(f, "signature verification failed: {msg}"),
            SbftError::BadCertificate(msg) => write!(f, "certificate invalid: {msg}"),
            SbftError::UnknownComponent(msg) => write!(f, "unknown component: {msg}"),
            SbftError::KeyNotFound(k) => write!(f, "key k{k} not found in the data-store"),
            SbftError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            SbftError::SpawnRejected(msg) => write!(f, "spawn rejected by the cloud: {msg}"),
            SbftError::Runtime(msg) => write!(f, "runtime failure: {msg}"),
        }
    }
}

impl std::error::Error for SbftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_details() {
        let e = SbftError::InvalidConfig("n_R too small".into());
        assert!(e.to_string().contains("n_R too small"));
        let e = SbftError::KeyNotFound(42);
        assert!(e.to_string().contains("k42"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SbftError::Runtime("channel closed".into()));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(SbftError::KeyNotFound(1), SbftError::KeyNotFound(1));
        assert_ne!(SbftError::KeyNotFound(1), SbftError::KeyNotFound(2));
    }
}
