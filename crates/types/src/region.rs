//! The cloud regions used in the evaluation.
//!
//! The paper spawns AWS Lambda executors in up to eleven regions, in the
//! order: North California, Oregon, Ohio, Canada, Frankfurt, Ireland,
//! London, Paris, Stockholm, Seoul and Singapore (Section IX, *Setup*). The
//! verifier and shim are deployed in North California, so regions further
//! down the list have a larger round-trip time to the verifier.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eleven cloud regions of the evaluation setup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Region {
    NorthCalifornia,
    Oregon,
    Ohio,
    Canada,
    Frankfurt,
    Ireland,
    London,
    Paris,
    Stockholm,
    Seoul,
    Singapore,
}

/// An ordered set of regions used for a particular experiment.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl Region {
    /// All eleven regions in the order the paper enables them.
    pub const ALL: [Region; 11] = [
        Region::NorthCalifornia,
        Region::Oregon,
        Region::Ohio,
        Region::Canada,
        Region::Frankfurt,
        Region::Ireland,
        Region::London,
        Region::Paris,
        Region::Stockholm,
        Region::Seoul,
        Region::Singapore,
    ];

    /// A stable small integer index for this region (its position in the
    /// paper's ordering).
    #[must_use]
    pub fn index(self) -> usize {
        Region::ALL
            .iter()
            .position(|r| *r == self)
            .expect("region in ALL")
    }

    /// Approximate one-way network latency from the verifier/shim site
    /// (North California) to this region, in milliseconds. Values follow
    /// public inter-region RTT measurements; only their relative ordering
    /// matters for reproducing Figure 6(vii)–(viii).
    #[must_use]
    pub fn one_way_latency_ms_from_home(self) -> f64 {
        match self {
            Region::NorthCalifornia => 1.0,
            Region::Oregon => 11.0,
            Region::Ohio => 25.0,
            Region::Canada => 38.0,
            Region::Frankfurt => 73.0,
            Region::Ireland => 68.0,
            Region::London => 66.0,
            Region::Paris => 70.0,
            Region::Stockholm => 82.0,
            Region::Seoul => 67.0,
            Region::Singapore => 88.0,
        }
    }

    /// Human-readable region name matching the paper's text.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthCalifornia => "North California",
            Region::Oregon => "Oregon",
            Region::Ohio => "Ohio",
            Region::Canada => "Canada",
            Region::Frankfurt => "Frankfurt",
            Region::Ireland => "Ireland",
            Region::London => "London",
            Region::Paris => "Paris",
            Region::Stockholm => "Stockholm",
            Region::Seoul => "Seoul",
            Region::Singapore => "Singapore",
        }
    }
}

impl RegionSet {
    /// The first `n` regions in the paper's enablement order.
    ///
    /// # Panics
    /// Panics if `n` is zero or greater than eleven.
    #[must_use]
    pub fn first_n(n: usize) -> Self {
        assert!(n >= 1 && n <= Region::ALL.len(), "1..=11 regions supported");
        RegionSet {
            regions: Region::ALL[..n].to_vec(),
        }
    }

    /// A set containing only the home region (used for latency-free tests).
    #[must_use]
    pub fn home_only() -> Self {
        RegionSet {
            regions: vec![Region::NorthCalifornia],
        }
    }

    /// Builds a set from an explicit list.
    ///
    /// # Panics
    /// Panics if the list is empty.
    #[must_use]
    pub fn from_regions(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "a region set cannot be empty");
        RegionSet { regions }
    }

    /// Number of regions in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions in order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Round-robin assignment of the `i`-th spawned executor to a region,
    /// matching the primary's round-robin spawning policy (Section IX-E).
    #[must_use]
    pub fn round_robin(&self, i: usize) -> Region {
        self.regions[i % self.regions.len()]
    }

    /// Evenly splits `n_executors` across the regions and reports how many
    /// land in each region (the executor-scaling experiments "try to evenly
    /// split executors across regions").
    #[must_use]
    pub fn even_split(&self, n_executors: usize) -> Vec<(Region, usize)> {
        let mut counts = vec![0usize; self.regions.len()];
        for i in 0..n_executors {
            counts[i % self.regions.len()] += 1;
        }
        self.regions
            .iter()
            .copied()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .collect()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_regions_in_paper_order() {
        assert_eq!(Region::ALL.len(), 11);
        assert_eq!(Region::ALL[0], Region::NorthCalifornia);
        assert_eq!(Region::ALL[10], Region::Singapore);
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn home_region_is_closest() {
        let home = Region::NorthCalifornia.one_way_latency_ms_from_home();
        for r in Region::ALL.iter().skip(1) {
            assert!(
                r.one_way_latency_ms_from_home() > home,
                "{r} should be farther"
            );
        }
    }

    #[test]
    fn first_n_takes_prefix() {
        let set = RegionSet::first_n(5);
        assert_eq!(set.len(), 5);
        assert_eq!(set.regions()[4], Region::Frankfurt);
    }

    #[test]
    #[should_panic(expected = "1..=11")]
    fn first_n_rejects_zero() {
        let _ = RegionSet::first_n(0);
    }

    #[test]
    #[should_panic(expected = "1..=11")]
    fn first_n_rejects_more_than_eleven() {
        let _ = RegionSet::first_n(12);
    }

    #[test]
    fn round_robin_cycles() {
        let set = RegionSet::first_n(3);
        assert_eq!(set.round_robin(0), Region::NorthCalifornia);
        assert_eq!(set.round_robin(1), Region::Oregon);
        assert_eq!(set.round_robin(2), Region::Ohio);
        assert_eq!(set.round_robin(3), Region::NorthCalifornia);
    }

    #[test]
    fn even_split_distributes_executors() {
        let set = RegionSet::first_n(7);
        let split = set.even_split(11);
        let total: usize = split.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 11);
        let max = split.iter().map(|(_, c)| *c).max().unwrap();
        let min = split.iter().map(|(_, c)| *c).min().unwrap();
        assert!(max - min <= 1, "split must be even: {split:?}");
    }

    #[test]
    fn even_split_omits_unused_regions() {
        let set = RegionSet::first_n(7);
        let split = set.even_split(3);
        assert_eq!(split.len(), 3);
    }

    #[test]
    fn names_are_human_readable() {
        assert_eq!(Region::NorthCalifornia.name(), "North California");
        assert_eq!(format!("{}", Region::Seoul), "Seoul");
    }
}
