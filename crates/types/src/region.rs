//! The cloud regions used in the evaluation.
//!
//! The paper spawns AWS Lambda executors in up to eleven regions, in the
//! order: North California, Oregon, Ohio, Canada, Frankfurt, Ireland,
//! London, Paris, Stockholm, Seoul and Singapore (Section IX, *Setup*). The
//! verifier and shim are deployed in North California, so regions further
//! down the list have a larger round-trip time to the verifier.

use crate::ids::ShardId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eleven cloud regions of the evaluation setup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Region {
    NorthCalifornia,
    Oregon,
    Ohio,
    Canada,
    Frankfurt,
    Ireland,
    London,
    Paris,
    Stockholm,
    Seoul,
    Singapore,
}

/// An ordered set of regions used for a particular experiment.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl Region {
    /// All eleven regions in the order the paper enables them.
    pub const ALL: [Region; 11] = [
        Region::NorthCalifornia,
        Region::Oregon,
        Region::Ohio,
        Region::Canada,
        Region::Frankfurt,
        Region::Ireland,
        Region::London,
        Region::Paris,
        Region::Stockholm,
        Region::Seoul,
        Region::Singapore,
    ];

    /// A stable small integer index for this region (its position in the
    /// paper's ordering).
    #[must_use]
    pub fn index(self) -> usize {
        Region::ALL
            .iter()
            .position(|r| *r == self)
            .expect("region in ALL")
    }

    /// Approximate one-way network latency from the verifier/shim site
    /// (North California) to this region, in milliseconds. Values follow
    /// public inter-region RTT measurements; only their relative ordering
    /// matters for reproducing Figure 6(vii)–(viii).
    #[must_use]
    pub fn one_way_latency_ms_from_home(self) -> f64 {
        match self {
            Region::NorthCalifornia => 1.0,
            Region::Oregon => 11.0,
            Region::Ohio => 25.0,
            Region::Canada => 38.0,
            Region::Frankfurt => 73.0,
            Region::Ireland => 68.0,
            Region::London => 66.0,
            Region::Paris => 70.0,
            Region::Stockholm => 82.0,
            Region::Seoul => 67.0,
            Region::Singapore => 88.0,
        }
    }

    /// Human-readable region name matching the paper's text.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthCalifornia => "North California",
            Region::Oregon => "Oregon",
            Region::Ohio => "Ohio",
            Region::Canada => "Canada",
            Region::Frankfurt => "Frankfurt",
            Region::Ireland => "Ireland",
            Region::London => "London",
            Region::Paris => "Paris",
            Region::Stockholm => "Stockholm",
            Region::Seoul => "Seoul",
            Region::Singapore => "Singapore",
        }
    }
}

impl RegionSet {
    /// The first `n` regions in the paper's enablement order.
    ///
    /// # Panics
    /// Panics if `n` is zero or greater than eleven.
    #[must_use]
    pub fn first_n(n: usize) -> Self {
        assert!(n >= 1 && n <= Region::ALL.len(), "1..=11 regions supported");
        RegionSet {
            regions: Region::ALL[..n].to_vec(),
        }
    }

    /// A set containing only the home region (used for latency-free tests).
    #[must_use]
    pub fn home_only() -> Self {
        RegionSet {
            regions: vec![Region::NorthCalifornia],
        }
    }

    /// Builds a set from an explicit list.
    ///
    /// # Panics
    /// Panics if the list is empty.
    #[must_use]
    pub fn from_regions(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "a region set cannot be empty");
        RegionSet { regions }
    }

    /// Number of regions in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions in order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Round-robin assignment of the `i`-th spawned executor to a region,
    /// matching the primary's round-robin spawning policy (Section IX-E).
    #[must_use]
    pub fn round_robin(&self, i: usize) -> Region {
        self.regions[i % self.regions.len()]
    }

    /// Whether the set contains `region`.
    #[must_use]
    pub fn contains(&self, region: Region) -> bool {
        self.regions.contains(&region)
    }

    /// Evenly splits `n_executors` across the regions and reports how many
    /// land in each region (the executor-scaling experiments "try to evenly
    /// split executors across regions").
    #[must_use]
    pub fn even_split(&self, n_executors: usize) -> Vec<(Region, usize)> {
        let mut counts = vec![0usize; self.regions.len()];
        for i in 0..n_executors {
            counts[i % self.regions.len()] += 1;
        }
        self.regions
            .iter()
            .copied()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .collect()
    }
}

/// The geo-partitioning of the execution shards across regions: every
/// shard has exactly one *home region* where its storage partition lives.
///
/// The map is a pure function of `(region set, shard count)` — shard `s`
/// is homed in `regions[s mod |regions|]` — so the shim's invoker, the
/// verifier's runtime, the simulator and the experiment binaries all
/// derive the identical placement without ever exchanging it. This is the
/// geo analogue of [`crate::ShardPlan`]'s trust-but-verify rule: because
/// everyone can re-derive the map, no component ever has to believe
/// another's claim about where a shard lives.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegionPartition {
    regions: RegionSet,
    num_shards: usize,
}

impl RegionPartition {
    /// Builds the partition of `num_shards` shards over a region set.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    #[must_use]
    pub fn new(regions: RegionSet, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "a partition needs at least one shard");
        RegionPartition {
            regions,
            num_shards,
        }
    }

    /// Number of shards being partitioned.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The regions the shards are spread over.
    #[must_use]
    pub fn regions(&self) -> &RegionSet {
        &self.regions
    }

    /// The home region of a shard. Deterministic round-robin over the
    /// region set; shards outside `0..num_shards` wrap the same way so a
    /// forged [`ShardId`] still maps somewhere stable.
    #[must_use]
    pub fn home_of(&self, shard: ShardId) -> Region {
        self.regions.round_robin(shard.0 as usize)
    }

    /// The home region of the partition holding `key` — the one place
    /// the key → shard → region composition lives, so the storage view,
    /// the invoker and the simulator can never drift apart.
    #[must_use]
    pub fn home_of_key(&self, key: crate::rwset::Key) -> Region {
        self.home_of(ShardId::of_key(key, self.num_shards))
    }

    /// The shards whose storage partition lives in `region`.
    #[must_use]
    pub fn shards_homed_in(&self, region: Region) -> Vec<ShardId> {
        (0..self.num_shards as u32)
            .map(ShardId)
            .filter(|s| self.home_of(*s) == region)
            .collect()
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_regions_in_paper_order() {
        assert_eq!(Region::ALL.len(), 11);
        assert_eq!(Region::ALL[0], Region::NorthCalifornia);
        assert_eq!(Region::ALL[10], Region::Singapore);
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn home_region_is_closest() {
        let home = Region::NorthCalifornia.one_way_latency_ms_from_home();
        for r in Region::ALL.iter().skip(1) {
            assert!(
                r.one_way_latency_ms_from_home() > home,
                "{r} should be farther"
            );
        }
    }

    #[test]
    fn first_n_takes_prefix() {
        let set = RegionSet::first_n(5);
        assert_eq!(set.len(), 5);
        assert_eq!(set.regions()[4], Region::Frankfurt);
    }

    #[test]
    #[should_panic(expected = "1..=11")]
    fn first_n_rejects_zero() {
        let _ = RegionSet::first_n(0);
    }

    #[test]
    #[should_panic(expected = "1..=11")]
    fn first_n_rejects_more_than_eleven() {
        let _ = RegionSet::first_n(12);
    }

    #[test]
    fn round_robin_cycles() {
        let set = RegionSet::first_n(3);
        assert_eq!(set.round_robin(0), Region::NorthCalifornia);
        assert_eq!(set.round_robin(1), Region::Oregon);
        assert_eq!(set.round_robin(2), Region::Ohio);
        assert_eq!(set.round_robin(3), Region::NorthCalifornia);
    }

    #[test]
    fn even_split_distributes_executors() {
        let set = RegionSet::first_n(7);
        let split = set.even_split(11);
        let total: usize = split.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 11);
        let max = split.iter().map(|(_, c)| *c).max().unwrap();
        let min = split.iter().map(|(_, c)| *c).min().unwrap();
        assert!(max - min <= 1, "split must be even: {split:?}");
    }

    #[test]
    fn even_split_omits_unused_regions() {
        let set = RegionSet::first_n(7);
        let split = set.even_split(3);
        assert_eq!(split.len(), 3);
    }

    #[test]
    fn names_are_human_readable() {
        assert_eq!(Region::NorthCalifornia.name(), "North California");
        assert_eq!(format!("{}", Region::Seoul), "Seoul");
    }

    #[test]
    fn contains_reports_membership() {
        let set = RegionSet::first_n(2);
        assert!(set.contains(Region::NorthCalifornia));
        assert!(set.contains(Region::Oregon));
        assert!(!set.contains(Region::Singapore));
    }

    #[test]
    fn partition_homes_every_shard_round_robin() {
        let part = RegionPartition::new(RegionSet::first_n(3), 8);
        assert_eq!(part.num_shards(), 8);
        assert_eq!(part.home_of(ShardId(0)), Region::NorthCalifornia);
        assert_eq!(part.home_of(ShardId(1)), Region::Oregon);
        assert_eq!(part.home_of(ShardId(2)), Region::Ohio);
        assert_eq!(part.home_of(ShardId(3)), Region::NorthCalifornia);
        // Out-of-range shards (a forged tag) still map deterministically.
        assert_eq!(part.home_of(ShardId(100)), part.home_of(ShardId(1)));
    }

    #[test]
    fn partition_is_a_pure_function_of_its_inputs() {
        let a = RegionPartition::new(RegionSet::first_n(4), 16);
        let b = RegionPartition::new(RegionSet::first_n(4), 16);
        for s in 0..16u32 {
            assert_eq!(a.home_of(ShardId(s)), b.home_of(ShardId(s)));
        }
    }

    #[test]
    fn home_of_key_composes_the_canonical_shard_map() {
        use crate::rwset::Key;
        let part = RegionPartition::new(RegionSet::first_n(3), 8);
        for k in 0..1_000u64 {
            assert_eq!(
                part.home_of_key(Key(k)),
                part.home_of(ShardId::of_key(Key(k), 8))
            );
        }
    }

    #[test]
    fn shards_homed_in_inverts_home_of() {
        let part = RegionPartition::new(RegionSet::first_n(3), 8);
        let mut total = 0;
        for region in RegionSet::first_n(3).regions() {
            let shards = part.shards_homed_in(*region);
            total += shards.len();
            for s in shards {
                assert_eq!(part.home_of(s), *region);
            }
        }
        assert_eq!(total, 8, "every shard is homed exactly once");
    }

    #[test]
    fn more_regions_than_shards_leaves_some_regions_empty() {
        let part = RegionPartition::new(RegionSet::first_n(5), 2);
        assert!(part.shards_homed_in(Region::Frankfurt).is_empty());
        assert_eq!(part.shards_homed_in(Region::NorthCalifornia).len(), 1);
    }
}
