//! Client transactions, their operations, results and outcomes.
//!
//! A client packages its request as a transaction `⟨T⟩_C` (Section IV-A).
//! In the evaluation these are YCSB key-value transactions over a store of
//! 600 k records; each transaction carries a list of read/write/modify
//! operations, an (optional) declared read-write set, and a model of its
//! execution cost so that the "expensive execution" experiments
//! (Figure 6(v)–(vi), Figure 8) can be reproduced.

//! # Digest memoization
//!
//! The client-request signing digest `Δ = H(⟨T⟩_C)` is needed at several
//! points of a transaction's life: the client signs it, the primary
//! verifies it, and the verifier re-verifies it on client retries. The
//! transaction therefore carries an `Arc<OnceLock>` cache slot
//! ([`Transaction::signing_digest_memo`]): the digest is computed at most
//! once per transaction, and — because every clone shares the same slot,
//! whether the clone was taken before or after the first computation —
//! every copy reuses the value instead of re-hashing. The digest function
//! itself lives in
//! `sbft-core` (it defines the signing format); this module only stores
//! the result.

use crate::digest::Digest;
use crate::ids::TxnId;
use crate::rwset::{Key, ReadWriteSet, RwSetKeys, Value};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A single key-value operation inside a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Operation {
    /// Read the current value of a key.
    Read(Key),
    /// Overwrite the value of a key.
    Write(Key, Value),
    /// Read a key and write back a value derived from what was read
    /// (the YCSB read-modify-write operation). The `u64` is mixed into the
    /// stored payload so different transactions produce different values.
    ReadModifyWrite(Key, u64),
}

impl Operation {
    /// The key this operation touches.
    #[must_use]
    pub fn key(&self) -> Key {
        match *self {
            Operation::Read(k) | Operation::Write(k, _) | Operation::ReadModifyWrite(k, _) => k,
        }
    }

    /// Whether the operation writes to its key.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Read(_))
    }
}

/// A client transaction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Transaction {
    /// The transaction identifier (client + client-local counter).
    ///
    /// Invariant: `id` and `ops` must not be mutated after the signing
    /// digest has been memoized (they are its inputs); build a new
    /// [`Transaction`] instead of editing one in place.
    pub id: TxnId,
    /// The key-value operations the transaction performs. Same mutation
    /// invariant as `id`.
    pub ops: Vec<Operation>,
    /// Read-write sets declared ahead of execution, if the application knows
    /// them (enables the best-effort conflict-avoidance planner of
    /// Section VI-C). `None` models the *unknown read-write set* case of
    /// Section VI-B.
    pub declared_rwset: Option<RwSetKeys>,
    /// Modeled compute cost of executing this transaction on one executor
    /// core (beyond the storage accesses). The expensive-execution
    /// experiments sweep this from microseconds to 8 seconds.
    pub execution_cost: SimDuration,
    /// Logical payload size in bytes carried by the request (affects the
    /// wire size of `PREPREPARE` and `EXECUTE` messages).
    pub payload_len: u32,
    /// Memoized client-request signing digest (see the module docs). The
    /// slot is behind its own `Arc` so all clones share one cache, even
    /// clones taken before the first fill. Derived state: excluded from
    /// equality.
    signing_digest: Arc<OnceLock<Digest>>,
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.ops == other.ops
            && self.declared_rwset == other.declared_rwset
            && self.execution_cost == other.execution_cost
            && self.payload_len == other.payload_len
    }
}

impl Eq for Transaction {}

/// The outcome of executing or attempting to execute a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// The transaction executed and its writes were applied by the verifier.
    Committed,
    /// The verifier aborted the transaction (stale reads or insufficient
    /// matching `VERIFY` messages under conflicts, Section VI-B).
    Aborted,
}

/// The result of executing a transaction, as computed by an executor and
/// reported to the verifier inside a `VERIFY` message.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TxnResult {
    /// Which transaction this result belongs to.
    pub txn: TxnId,
    /// A deterministic digest-like summary of the computed outputs; honest
    /// executors executing the same transaction over the same storage state
    /// produce identical values.
    pub output: u64,
    /// The read-write set observed during execution.
    pub rwset: ReadWriteSet,
}

impl Transaction {
    /// Creates a transaction with default (negligible) execution cost.
    #[must_use]
    pub fn new(id: TxnId, ops: Vec<Operation>) -> Self {
        let payload_len = (ops.len() as u32) * 16 + 8;
        Transaction {
            id,
            ops,
            declared_rwset: None,
            execution_cost: SimDuration::ZERO,
            payload_len,
            signing_digest: Arc::new(OnceLock::new()),
        }
    }

    /// Returns the memoized signing digest, computing it with `compute` on
    /// first use. Clones made after the first computation carry the cached
    /// value, so a transaction is hashed at most once per run however many
    /// components handle it.
    ///
    /// The cache assumes `id` and `ops` are frozen once the first digest
    /// is taken (see the field docs): mutating them afterwards would make
    /// every later call return a digest of the old contents.
    pub fn signing_digest_memo(&self, compute: impl FnOnce() -> Digest) -> Digest {
        *self.signing_digest.get_or_init(compute)
    }

    /// The cached signing digest, if one has been computed on this value.
    #[must_use]
    pub fn cached_signing_digest(&self) -> Option<Digest> {
        self.signing_digest.get().copied()
    }

    /// Attaches a declared read-write set (known read-write set mode).
    #[must_use]
    pub fn with_declared_rwset(mut self, rwset: RwSetKeys) -> Self {
        self.declared_rwset = Some(rwset);
        self
    }

    /// Declares the read-write set by inspecting the operation list. This is
    /// exact for YCSB-style transactions whose keys are literal.
    #[must_use]
    pub fn with_inferred_rwset(mut self) -> Self {
        self.declared_rwset = Some(self.inferred_rwset());
        self
    }

    /// Sets the modeled execution cost.
    #[must_use]
    pub fn with_execution_cost(mut self, cost: SimDuration) -> Self {
        self.execution_cost = cost;
        self
    }

    /// The read-write set implied by the literal operation list.
    #[must_use]
    pub fn inferred_rwset(&self) -> RwSetKeys {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for op in &self.ops {
            match op {
                Operation::Read(k) => reads.push(*k),
                Operation::Write(k, _) => writes.push(*k),
                Operation::ReadModifyWrite(k, _) => {
                    reads.push(*k);
                    writes.push(*k);
                }
            }
        }
        RwSetKeys::new(reads, writes)
    }

    /// Whether the shim knows this transaction's read-write set in advance.
    #[must_use]
    pub fn rwset_known(&self) -> bool {
        self.declared_rwset.is_some()
    }

    /// Whether this transaction conflicts with `other` based on declared
    /// (or, if absent, inferred) read-write sets. Used by tests and by the
    /// conflict-avoidance planner; the protocol itself only relies on
    /// declared sets.
    #[must_use]
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        let a = self
            .declared_rwset
            .clone()
            .unwrap_or_else(|| self.inferred_rwset());
        let b = other
            .declared_rwset
            .clone()
            .unwrap_or_else(|| other.inferred_rwset());
        a.conflicts_with(&b)
    }

    /// Number of operations in the transaction.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Wire size of the signed client request carrying this transaction.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        // txn id + per-op encoding + payload + client signature
        16 + self.ops.len() * 17 + self.payload_len as usize + 64
    }
}

impl TxnOutcome {
    /// Whether the outcome is a commit.
    #[must_use]
    pub fn is_committed(self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn txn(ops: Vec<Operation>) -> Transaction {
        Transaction::new(TxnId::new(ClientId(0), 0), ops)
    }

    #[test]
    fn operation_key_and_write_flags() {
        assert_eq!(Operation::Read(Key(3)).key(), Key(3));
        assert!(!Operation::Read(Key(3)).is_write());
        assert!(Operation::Write(Key(1), Value::new(0)).is_write());
        assert!(Operation::ReadModifyWrite(Key(9), 1).is_write());
    }

    #[test]
    fn inferred_rwset_covers_all_ops() {
        let t = txn(vec![
            Operation::Read(Key(1)),
            Operation::Write(Key(2), Value::new(5)),
            Operation::ReadModifyWrite(Key(3), 7),
        ]);
        let rw = t.inferred_rwset();
        assert!(rw.read_keys.contains(&Key(1)));
        assert!(rw.read_keys.contains(&Key(3)));
        assert!(rw.write_keys.contains(&Key(2)));
        assert!(rw.write_keys.contains(&Key(3)));
        assert!(!rw.write_keys.contains(&Key(1)));
    }

    #[test]
    fn rwset_known_only_when_declared() {
        let t = txn(vec![Operation::Read(Key(1))]);
        assert!(!t.rwset_known());
        assert!(t.clone().with_inferred_rwset().rwset_known());
        assert!(t.with_declared_rwset(RwSetKeys::default()).rwset_known());
    }

    #[test]
    fn conflict_detection_between_transactions() {
        let a = txn(vec![Operation::Write(Key(10), Value::new(1))]);
        let b = Transaction::new(TxnId::new(ClientId(1), 0), vec![Operation::Read(Key(10))]);
        let c = Transaction::new(TxnId::new(ClientId(2), 0), vec![Operation::Read(Key(11))]);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
        assert!(!b.conflicts_with(&c), "read-read never conflicts");
    }

    #[test]
    fn wire_size_grows_with_ops() {
        let small = txn(vec![Operation::Read(Key(1))]);
        let big = txn(vec![
            Operation::Read(Key(1)),
            Operation::Read(Key(2)),
            Operation::Read(Key(3)),
        ]);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn builder_sets_execution_cost() {
        let t = txn(vec![]).with_execution_cost(SimDuration::from_millis(5));
        assert_eq!(t.execution_cost, SimDuration::from_millis(5));
    }

    #[test]
    fn signing_digest_memo_computes_once_and_survives_clones() {
        let t = txn(vec![Operation::Read(Key(1))]);
        assert_eq!(t.cached_signing_digest(), None);
        let mut computed = 0;
        let d = t.signing_digest_memo(|| {
            computed += 1;
            Digest::from_bytes([9; 32])
        });
        let again = t.signing_digest_memo(|| {
            computed += 1;
            Digest::from_bytes([1; 32])
        });
        assert_eq!(d, again);
        assert_eq!(computed, 1);
        let clone = t.clone();
        assert_eq!(clone.cached_signing_digest(), Some(d));
        // The cache never participates in equality.
        let fresh = txn(vec![Operation::Read(Key(1))]);
        assert_eq!(t, fresh);
    }

    #[test]
    fn clone_taken_before_fill_shares_a_later_fill() {
        // Regression: a clone used to copy the (empty) `OnceLock` slot and
        // would never see a digest computed on the original afterwards. The
        // slot is shared through an `Arc` now.
        let t = txn(vec![Operation::Read(Key(1))]);
        let early_clone = t.clone();
        assert_eq!(early_clone.cached_signing_digest(), None);
        let d = t.signing_digest_memo(|| Digest::from_bytes([2; 32]));
        assert_eq!(early_clone.cached_signing_digest(), Some(d));
        let mut computed = 0;
        let again = early_clone.signing_digest_memo(|| {
            computed += 1;
            Digest::from_bytes([5; 32])
        });
        assert_eq!(again, d);
        assert_eq!(computed, 0, "the shared memo must prevent a re-hash");
    }

    #[test]
    fn outcome_predicates() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Aborted.is_committed());
    }
}
