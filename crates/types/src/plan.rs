//! The ordering-time shard plan tag.
//!
//! The shard-aware planner classifies every batch against the shard
//! router's `key → shard` map *at ordering time* — before consensus —
//! and the resulting [`ShardPlan`] travels with the batch through the
//! whole pipeline: the batcher stamps it on the released batch, the
//! `PREPREPARE` (and the CFT accept) replicate it, the spawner copies it
//! into every `EXECUTE`, the executors echo it inside `VERIFY`, and the
//! verifier's apply stage finally consumes it.
//!
//! # Trust-but-verify
//!
//! The tag is an *optimisation hint*, not an authenticated claim: it is
//! covered by neither the batch digest nor any signature (a byzantine
//! primary holds the signing key, so signing it would prove nothing).
//! Every component that would change behaviour based on the tag must
//! **re-derive** it from data it already holds before relying on it, and
//! fall back deterministically to the unplanned path on mismatch. The
//! verifier does exactly that: a `SingleHome(s)` tag is only honoured
//! after checking that every observed read/write key of the batch maps
//! to shard `s`; a lying tag costs the liar the fast path but can never
//! corrupt state or break the equivalence with unrouted execution.

use crate::ids::ShardId;
use serde::{Deserialize, Serialize};

/// The ordering-time classification of a batch (or one transaction)
/// against the shard map.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ShardPlan {
    /// No plan was computed at ordering time: unknown read-write sets,
    /// a deployment without ordering lanes, or a batch that touches no
    /// data at all. The apply stage routes from scratch.
    #[default]
    Unplanned,
    /// Every key the batch touches maps to this one shard. The apply
    /// stage may, after re-deriving the claim, skip per-transaction
    /// routing and the cross-home fallback probe entirely.
    SingleHome(ShardId),
    /// The batch spans shards (or contains a transaction that does):
    /// it was tagged at batching time for the lock-ordered cross-shard
    /// committer path instead of being discovered late.
    CrossHome,
}

impl ShardPlan {
    /// The claimed home shard, if the plan is single-home.
    #[must_use]
    pub fn home(&self) -> Option<ShardId> {
        match self {
            ShardPlan::SingleHome(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether the plan claims the batch lives on one shard.
    #[must_use]
    pub fn is_single_home(&self) -> bool {
        matches!(self, ShardPlan::SingleHome(_))
    }

    /// Folds a further key's shard into a running plan: the first shard
    /// makes an unplanned accumulator single-home, a second distinct
    /// shard makes it cross-home, and cross-home absorbs everything.
    #[must_use]
    pub fn merge_shard(self, shard: ShardId) -> ShardPlan {
        match self {
            ShardPlan::Unplanned => ShardPlan::SingleHome(shard),
            ShardPlan::SingleHome(s) if s == shard => self,
            _ => ShardPlan::CrossHome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unplanned() {
        assert_eq!(ShardPlan::default(), ShardPlan::Unplanned);
        assert!(!ShardPlan::Unplanned.is_single_home());
        assert_eq!(ShardPlan::Unplanned.home(), None);
    }

    #[test]
    fn single_home_exposes_its_shard() {
        let p = ShardPlan::SingleHome(ShardId(3));
        assert!(p.is_single_home());
        assert_eq!(p.home(), Some(ShardId(3)));
        assert_eq!(ShardPlan::CrossHome.home(), None);
    }

    #[test]
    fn merge_walks_unplanned_to_single_to_cross() {
        let p = ShardPlan::Unplanned.merge_shard(ShardId(2));
        assert_eq!(p, ShardPlan::SingleHome(ShardId(2)));
        assert_eq!(p.merge_shard(ShardId(2)), p, "same shard keeps the home");
        assert_eq!(p.merge_shard(ShardId(5)), ShardPlan::CrossHome);
        assert_eq!(
            ShardPlan::CrossHome.merge_shard(ShardId(2)),
            ShardPlan::CrossHome,
            "cross-home absorbs everything"
        );
    }
}
